"""Process supervision for a local Aurora cluster.

``repro serve`` runs here: the supervisor spawns one namenode process
and N datanode processes (each a ``python -m repro serve --role ...``
child), discovers their ephemeral ports through announce files, and
tears the fleet down gracefully (``POST /admin/shutdown``, then
SIGTERM, then SIGKILL).

The same module hosts the child entrypoints (:func:`run_namenode`,
:func:`run_datanode`) and the two scripted flows the CLI exposes:

* :func:`serve_check` — boot a small cluster on ephemeral ports, wait
  for safe-mode exit, hit ``/healthz``, shut down; exit 0/1.  The CI
  smoke that proves the service layer boots at all.
* :func:`serve_demo` — boot, write and read a file through the SDK,
  SIGKILL a datanode mid-flight, watch re-replication repair the loss,
  and report a wire-level fsck.  The chaos drill, over real sockets.
"""

from __future__ import annotations

import logging
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import DfsError
from repro.serve.httpd import HttpCallError, http_call

__all__ = [
    "ServeConfig",
    "ClusterSupervisor",
    "run_namenode",
    "run_datanode",
    "serve_check",
    "serve_demo",
]

_LOG = logging.getLogger(__name__)


@dataclass
class ServeConfig:
    """Topology and timing of one supervised cluster."""

    num_racks: int = 2
    datanodes_per_rack: int = 2
    capacity_blocks: int = 128
    port: int = 0  # 0 = ephemeral
    host: str = "127.0.0.1"
    heartbeat_interval: float = 1.0
    heartbeat_expiry: float = 4.0
    default_replication: int = 2
    aurora_period: float = 30.0
    boot_timeout: float = 20.0

    @property
    def num_datanodes(self) -> int:
        return self.num_racks * self.datanodes_per_rack


def _write_announce(path: str, address: str) -> None:
    """Atomically publish a bound address for the supervisor to read."""
    target = Path(path)
    tmp = target.with_suffix(".tmp")
    tmp.write_text(address + "\n", encoding="utf-8")
    tmp.replace(target)


def _read_announce(path: Path, deadline: float) -> str:
    while time.monotonic() < deadline:
        if path.exists():
            address = path.read_text(encoding="utf-8").strip()
            if address:
                return address
        time.sleep(0.05)
    raise DfsError(f"no address announced at {path} before the deadline")


# -- child entrypoints -------------------------------------------------------


def _install_sigterm(server) -> None:
    """SIGTERM → graceful stop (the supervisor's second escalation)."""

    def handler(_signum, _frame) -> None:
        server.request_stop()

    signal.signal(signal.SIGTERM, handler)
    signal.signal(signal.SIGINT, handler)


def run_namenode(args) -> int:
    """Child entrypoint for ``repro serve --role namenode``."""
    import asyncio

    from repro.serve.namenode_service import NamenodeConfig, NamenodeServer

    config = NamenodeConfig(
        num_racks=args.racks,
        datanodes_per_rack=args.datanodes_per_rack,
        capacity_blocks=args.capacity,
        host=args.host,
        port=args.port,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_expiry=args.heartbeat_expiry,
        default_replication=args.replication,
        aurora_period=args.aurora_period,
        leader_address=args.leader or None,
    )
    server = NamenodeServer(config)
    _install_sigterm(server)
    announce = None
    if args.announce:
        announce = lambda address: _write_announce(args.announce, address)
    asyncio.run(server.run(announce=announce))
    return 0


def run_datanode(args) -> int:
    """Child entrypoint for ``repro serve --role datanode``."""
    import asyncio

    from repro.serve.datanode_service import DatanodeServer

    server = DatanodeServer(
        node_id=args.node_id,
        capacity_blocks=args.capacity,
        namenode_address=args.namenode,
        host=args.host,
        port=args.port,
        heartbeat_interval=args.heartbeat_interval,
    )
    _install_sigterm(server)
    announce = None
    if args.announce:
        announce = lambda address: _write_announce(args.announce, address)
    asyncio.run(server.run(announce=announce))
    return 0


# -- the supervisor ----------------------------------------------------------


class ClusterSupervisor:
    """Spawns and tears down one namenode + N datanode processes."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.namenode_address: Optional[str] = None
        self.namenode_proc: Optional[subprocess.Popen] = None
        self.datanode_procs: Dict[int, subprocess.Popen] = {}
        self.datanode_addresses: Dict[int, str] = {}
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None

    # -- boot --------------------------------------------------------------

    def _spawn(self, role_args: List[str]) -> subprocess.Popen:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *role_args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def start(self) -> str:
        """Boot the fleet; returns the namenode's address."""
        config = self.config
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
        tmp = Path(self._tmpdir.name)
        deadline = time.monotonic() + config.boot_timeout

        nn_announce = tmp / "namenode.addr"
        self.namenode_proc = self._spawn([
            "--role", "namenode",
            "--racks", str(config.num_racks),
            "--datanodes-per-rack", str(config.datanodes_per_rack),
            "--capacity", str(config.capacity_blocks),
            "--host", config.host,
            "--port", str(config.port),
            "--heartbeat-interval", str(config.heartbeat_interval),
            "--heartbeat-expiry", str(config.heartbeat_expiry),
            "--replication", str(config.default_replication),
            "--aurora-period", str(config.aurora_period),
            "--announce", str(nn_announce),
        ])
        try:
            self.namenode_address = _read_announce(nn_announce, deadline)
        except DfsError:
            self.stop()
            raise
        for node in range(config.num_datanodes):
            dn_announce = tmp / f"datanode-{node}.addr"
            self.datanode_procs[node] = self._spawn([
                "--role", "datanode",
                "--node-id", str(node),
                "--capacity", str(config.capacity_blocks),
                "--namenode", self.namenode_address,
                "--host", config.host,
                "--heartbeat-interval", str(config.heartbeat_interval),
                "--announce", str(dn_announce),
            ])
        for node in range(config.num_datanodes):
            dn_announce = tmp / f"datanode-{node}.addr"
            try:
                self.datanode_addresses[node] = _read_announce(
                    dn_announce, deadline
                )
            except DfsError:
                self.stop()
                raise
        return self.namenode_address

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until the namenode has left safe mode."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.boot_timeout
        )
        assert self.namenode_address is not None
        while time.monotonic() < deadline:
            try:
                status, body, _ = http_call(
                    self.namenode_address, "GET", "/healthz", timeout=2.0
                )
            except HttpCallError:
                time.sleep(0.1)
                continue
            if status == 200 and isinstance(body, dict):
                if not body.get("safe_mode", True):
                    return
            time.sleep(0.1)
        raise DfsError(
            "cluster did not leave safe mode before the deadline"
        )

    # -- chaos / teardown --------------------------------------------------

    def kill_datanode(self, node: int) -> None:
        """SIGKILL one datanode process — the wire-level crash fault."""
        proc = self.datanode_procs.get(node)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    def _stop_proc(
        self, proc: subprocess.Popen, address: Optional[str]
    ) -> None:
        if proc.poll() is not None:
            return
        if address is not None:
            try:
                http_call(address, "POST", "/admin/shutdown", timeout=2.0)
            except HttpCallError:
                pass
        try:
            proc.wait(timeout=3)
            return
        except subprocess.TimeoutExpired:
            pass
        proc.terminate()
        try:
            proc.wait(timeout=3)
            return
        except subprocess.TimeoutExpired:
            pass
        proc.kill()
        proc.wait(timeout=10)

    def stop(self) -> None:
        """Graceful teardown: HTTP shutdown, SIGTERM, then SIGKILL."""
        for node, proc in self.datanode_procs.items():
            self._stop_proc(proc, self.datanode_addresses.get(node))
        if self.namenode_proc is not None:
            self._stop_proc(self.namenode_proc, self.namenode_address)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- scripted flows ----------------------------------------------------------


def serve_check(config: ServeConfig) -> Dict[str, object]:
    """Boot on ephemeral ports, verify health, shut down.

    Returns a result dict with ``ok`` plus the observed health; the CLI
    maps ``ok`` onto the 0/1 exit code.
    """
    supervisor = ClusterSupervisor(config)
    try:
        address = supervisor.start()
        supervisor.wait_ready()
        status, health, _ = http_call(address, "GET", "/healthz")
        _status, metrics, _ = http_call(address, "GET", "/metrics")
        metrics_text = (
            metrics.decode("utf-8", "replace")
            if isinstance(metrics, bytes) else str(metrics)
        )
        ok = (
            status == 200
            and isinstance(health, dict)
            and health.get("ok") is True
            and not health.get("safe_mode", True)
            and len(health.get("live_datanodes", []))
            == config.num_datanodes
        )
        return {
            "ok": bool(ok),
            "namenode": address,
            "health": health if isinstance(health, dict) else {},
            "metrics_families": sum(
                1 for line in metrics_text.splitlines()
                if line.startswith("# TYPE repro_")
            ),
        }
    except DfsError as exc:
        return {"ok": False, "error": str(exc)}
    finally:
        supervisor.stop()


def serve_demo(
    config: ServeConfig, seed: int = 0
) -> Dict[str, object]:
    """The end-to-end drill: write, read, kill a node, recover, fsck."""
    import random

    from repro.faults.retry import RetryPolicy
    from repro.serve.client import ServeClient

    rng = random.Random(seed)
    supervisor = ClusterSupervisor(config)
    result: Dict[str, object] = {"ok": False}
    try:
        address = supervisor.start()
        supervisor.wait_ready()
        client = ServeClient(
            address,
            retry_policy=RetryPolicy(
                max_attempts=8, base_delay=0.2, max_delay=2.0, jitter=0.1
            ),
            rng=rng,
        )
        payloads = [
            bytes(rng.getrandbits(8) for _ in range(4096))
            for _ in range(3)
        ]
        info = client.write_file("/demo/data", payloads)
        reads = client.read_file("/demo/data")
        intact = all(
            read.data == payload
            for read, payload in zip(reads, payloads)
        )
        # The chaos beat: SIGKILL the node serving the first block, then
        # read through the SDK again — failover should mask the loss
        # while the namenode re-replicates behind the scenes.
        victim = reads[0].source
        supervisor.kill_datanode(victim)
        survivor_reads = client.read_file("/demo/data")
        survived = all(
            read.data == payload and read.source != victim
            for read, payload in zip(survivor_reads, payloads)
        )
        # Wait for repair.  Right after the SIGKILL the namenode's
        # belief still lists the victim (fsck would pass vacuously), so
        # first wait for the heartbeat expiry to detect the death, then
        # for every block to return to target replication.
        deadline = time.monotonic() + 3 * config.heartbeat_expiry + 30
        detected = False
        while time.monotonic() < deadline:
            if victim not in client.status()["live_datanodes"]:
                detected = True
                break
            time.sleep(0.25)
        healthy = False
        while detected and time.monotonic() < deadline:
            report = client.fsck()
            if report.get("healthy"):
                healthy = True
                break
            time.sleep(0.5)
        result = {
            "ok": bool(intact and survived and healthy),
            "namenode": address,
            "blocks_written": len(info.blocks),
            "reads_intact": intact,
            "victim": victim,
            "reads_after_kill_intact": survived,
            "failovers": client.read_failovers,
            "fsck_healthy_after_repair": healthy,
            "status": client.status(),
        }
    except DfsError as exc:
        result = {"ok": False, "error": str(exc)}
    finally:
        supervisor.stop()
    return result
