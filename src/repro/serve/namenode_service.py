"""The namenode process: the real metadata brain behind an HTTP surface.

The server hosts an actual :class:`~repro.dfs.namenode.Namenode` — the
same namespace, block map, placement policies, replication queue,
quarantine, and fsck machinery every simulation PR built — re-based from
the simulation clock onto a :class:`WallClock`, with two surgical
overrides that swap simulated data movement for real sockets:

* :class:`NetworkNamenode` allocates write targets without moving bytes
  (the *client* pushes them through the datanode write pipeline), and
  stamps a write grace so block-report reconciliation doesn't mistake an
  in-flight push for a lost replica;
* :class:`NetworkTransferService` turns every replication transfer the
  namenode's existing recovery machinery issues into a real
  ``POST /admin/pull`` on the target datanode process — so heartbeat
  expiry, the prioritized re-replication queue, retry-on-alternate-
  source, and corrupt-source quarantine all run unmodified, just over
  TCP.

Belief vs. reality: the in-process ``Datanode`` objects are the
namenode's *belief* of the cluster, updated by registrations, block
reports, and pull completions; the authoritative bytes live in the
datanode processes.  Reconciliation is bidirectional — reality missing
a believed replica (post-grace) retracts the location and queues
repair; reality holding an unbelieved replica (lazy eviction, purge,
file delete) gets a real ``DELETE`` pushed to the node.

The Aurora loop runs here too: client access reports feed a
:class:`~repro.monitor.usage.UsageMonitor`, and a periodic tick runs
Algorithm 3 (:func:`~repro.core.rep_factor.compute_replication_factors`)
over the observed popularity, applying factor changes through
``set_replication`` — increases become real replication pulls.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.cluster.topology import ClusterTopology
from repro.core.rep_factor import compute_replication_factors
from repro.dfs.block import DEFAULT_MAX_BLOCK_SIZE, BlockMeta, FileMeta
from repro.dfs.fsck import run_fsck
from repro.dfs.namenode import Namenode
from repro.dfs.replication import TransferService
from repro.errors import (
    DatanodeUnavailableError,
    DfsError,
    InvalidProblemError,
    NoLeaderError,
)
from repro.monitor.usage import UsageMonitor
from repro.obs.registry import get_registry
from repro.serve.httpd import (
    HttpCallError,
    HttpRequest,
    HttpServer,
    Response,
    http_call,
)
from repro.serve.wire import (
    AccessReport,
    BlockInfo,
    BlockReportRequest,
    CorruptReport,
    CreateFileRequest,
    FileInfo,
    HeartbeatRequest,
    LocateResponse,
    PullRequest,
    ReplicaLocation,
    ScrubSummary,
    encode_error,
)

__all__ = [
    "WallClock",
    "NetworkTransferService",
    "NetworkNamenode",
    "NamenodeConfig",
    "NamenodeServer",
]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_HEARTBEATS = _REG.counter(
    "repro_serve_heartbeats_total",
    "Datanode heartbeats received by the namenode process",
)
_EXPIRIES = _REG.counter(
    "repro_serve_heartbeat_expiries_total",
    "Datanodes declared dead after missing their heartbeat window",
)
_PULLS_ISSUED = _REG.counter(
    "repro_serve_pulls_issued_total",
    "Replication pulls issued to datanode processes, by outcome",
    ["outcome"],
)
_AURORA_TICKS = _REG.counter(
    "repro_serve_aurora_ticks_total",
    "Aurora optimizer periods executed by the namenode process",
)
_FACTOR_CHANGES = _REG.counter(
    "repro_serve_aurora_factor_changes_total",
    "Replication-factor changes applied by the Aurora ticker",
    ["direction"],
)


class _ClockToken:
    """Cancellable handle for a :class:`WallClock` timer."""

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class WallClock:
    """The :class:`~repro.simulation.engine.Simulation` surface the
    namenode needs (``now`` + ``schedule``), driven by wall time.

    ``schedule`` maps onto the running asyncio loop, so the namenode's
    retry backoffs (:meth:`Namenode._defer`) fire as real timers.
    """

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    def schedule(self, delay: float, action: Callable[[], None]) -> _ClockToken:
        if self._loop is None:
            raise DfsError("WallClock.schedule before bind()")
        return _ClockToken(self._loop.call_later(max(0.0, delay), action))


class NetworkTransferService(TransferService):
    """Replication transfers as real datanode-to-datanode pulls.

    The namenode's recovery machinery calls
    ``transfer(size, src, dst, on_complete, on_failure=...)`` knowing
    only node ids and sizes; which *block* is moving lives one frame up
    in :meth:`Namenode._start_replica_copy`.  :class:`NetworkNamenode`
    stages the block id immediately before delegating, and this
    service pops it — the calls are back-to-back in a single-threaded
    event loop, so the hand-off cannot interleave.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        pull_fn: Callable[..., None],
    ) -> None:
        super().__init__(topology, sim=None, jitter=0.0)
        # fn(block_id, src, dst, done) where done(outcome: str).
        self._pull_fn = pull_fn
        self._staged_block: Optional[int] = None

    def stage_block(self, block_id: int) -> None:
        self._staged_block = block_id

    def transfer(
        self,
        size: int,
        src: int,
        dst: int,
        on_complete: Callable[[], None],
        compression_ratio: Optional[float] = None,
        on_failure: Optional[Callable[[], None]] = None,
        kind: str = "write",
        parent=None,
    ) -> float:
        block_id, self._staged_block = self._staged_block, None
        if block_id is None:
            raise DfsError(
                "network transfer issued without a staged block "
                f"(kind={kind}) — only replication pulls are supported"
            )
        self.transfers_started += 1
        self._active[src] = self._active.get(src, 0) + 1
        self._active[dst] = self._active.get(dst, 0) + 1
        started = time.monotonic()

        def done(outcome: str) -> None:
            self._active[src] -= 1
            self._active[dst] -= 1
            if outcome == "ok":
                elapsed = time.monotonic() - started
                self.durations.record(elapsed)
                self.bytes_transferred += size
                self.bytes_by_kind[kind] = (
                    self.bytes_by_kind.get(kind, 0) + size
                )
                on_complete()
            else:
                self.transfers_failed += 1
                if on_failure is not None:
                    on_failure()

        self._pull_fn(block_id, src, dst, done)
        return 0.0


class NetworkNamenode(Namenode):
    """A :class:`Namenode` whose data plane lives in other processes."""

    # Seconds a freshly allocated replica may stay absent from a block
    # report before reconciliation treats it as lost: the client is
    # still pushing the bytes.
    write_grace = 15.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # (block_id, node) -> allocation wall time, pruned by the tick.
        self.pending_writes: Dict[Tuple[int, int], float] = {}

    def _write_replica(
        self, meta: BlockMeta, node: int, source: Optional[int]
    ) -> None:
        # Allocation only — the client pushes the bytes through the
        # datanode write pipeline; no simulated transfer is issued.
        dn = self.datanodes[node]
        if not dn.alive:
            raise DatanodeUnavailableError(f"datanode {node} is down")
        self._ensure_space(node)
        dn.store(meta.block_id, meta.size)
        self.blockmap.add_location(meta.block_id, node)
        self.pending_writes[(meta.block_id, node)] = self.now

    def _start_replica_copy(
        self, block_id: int, source: int, target: int, on_done,
        attempt: int, tried: Set[int], waited: float,
    ) -> None:
        transfers = self.transfers
        if isinstance(transfers, NetworkTransferService):
            transfers.stage_block(block_id)
        super()._start_replica_copy(
            block_id, source, target, on_done, attempt, tried, waited,
        )


@dataclass
class NamenodeConfig:
    """Knobs of one namenode process."""

    num_racks: int = 2
    datanodes_per_rack: int = 2
    capacity_blocks: int = 128
    host: str = "127.0.0.1"
    port: int = 0
    heartbeat_interval: float = 1.0
    heartbeat_expiry: float = 4.0
    default_replication: int = 2
    # Aurora ticker: run Algorithm 3 over observed popularity every
    # ``aurora_period`` seconds; 0 disables the loop.
    aurora_period: float = 30.0
    aurora_window: float = 120.0
    min_replication: int = 1
    replication_budget_factor: float = 3.0
    # Follower mode: redirect every client/datanode call here.
    leader_address: Optional[str] = None
    pull_timeout: float = 15.0

    @property
    def num_datanodes(self) -> int:
        return self.num_racks * self.datanodes_per_rack


class NamenodeServer:
    """One namenode process: metadata plane + control loops."""

    def __init__(self, config: NamenodeConfig) -> None:
        self.config = config
        self.clock = WallClock()
        topology = ClusterTopology.uniform(
            num_racks=config.num_racks,
            machines_per_rack=config.datanodes_per_rack,
            capacity=config.capacity_blocks,
        )
        self.namenode = NetworkNamenode(
            topology,
            sim=self.clock,
            transfer_service=NetworkTransferService(topology, self._pull),
            default_replication=min(
                config.default_replication, config.num_datanodes
            ),
        )
        # Aurora's popularity feed: every reported access lands here.
        self.monitor = UsageMonitor(window=config.aurora_window)
        self.namenode.access_listeners.append(self.monitor.record_access)
        # Until a datanode process registers, its belief twin is down
        # and the namenode is in safe mode.
        self.namenode.safe_mode = True
        for dn in self.namenode.datanodes:
            dn.crash()
        self._addresses: Dict[int, str] = {}
        self._last_beat: Dict[int, float] = {}
        # Reality as last reported per node — drives belief-authority
        # deletes (lazy evictions, purges, file removals).
        self._last_real: Dict[int, Set[int]] = {}
        self.leader_address = config.leader_address
        self._stopping = asyncio.Event()
        self._last_aurora = 0.0
        self._last_check = 0.0
        self.http = HttpServer(label="namenode")
        self._register_routes()

    # -- pull plumbing (NetworkTransferService calls back here) ------------

    def _pull(
        self, block_id: int, src: int, dst: int,
        done: Callable[[str], None],
    ) -> None:
        src_addr = self._addresses.get(src)
        dst_addr = self._addresses.get(dst)
        if src_addr is None or dst_addr is None:
            asyncio.get_running_loop().call_soon(done, "no-address")
            return

        async def go() -> None:
            outcome = "failed"
            try:
                status, body, _ = await asyncio.to_thread(
                    http_call, dst_addr, "POST", "/admin/pull",
                    PullRequest(
                        block_id=block_id, source_address=src_addr,
                    ).to_wire(),
                    self.config.pull_timeout,
                )
                if isinstance(body, dict):
                    if status == 200 and body.get("ok"):
                        outcome = "ok"
                    elif body.get("outcome") == "source-corrupt":
                        outcome = "source-corrupt"
            except HttpCallError as exc:
                _LOG.warning(
                    "pull of block %d to node %d failed: %s",
                    block_id, dst, exc,
                )
            if _REG.enabled:
                _PULLS_ISSUED.labels(outcome=outcome).inc()
            if outcome == "source-corrupt":
                # In-flight verification caught a rotten source: the
                # target refused to clone it.  Quarantine the source
                # (which requeues repair from a verified replica) and
                # let the retry chain pick another source.
                self.namenode.report_corrupt_replica(
                    block_id, src, detector="transfer"
                )
            done("ok" if outcome == "ok" else "failed")

        asyncio.ensure_future(go())

    # -- registration / heartbeat / report ---------------------------------

    def _reconcile_report(self, report: BlockReportRequest) -> None:
        node = report.node
        if not 0 <= node < self.config.num_datanodes:
            raise DfsError(f"unknown datanode id {node}")
        nn = self.namenode
        self._addresses[node] = report.address
        self._last_beat[node] = self.clock.now
        real = {block_id for (block_id, _gen, _crc) in report.blocks}
        self._last_real[node] = set(real)
        dn = nn.datanodes[node]
        if not dn.alive:
            dn.recover()
        believed = set(dn.blocks())
        # Reality lost a believed replica (fresh disk after a restart,
        # torn write): unless the client push is still inside the write
        # grace, retract the location and let repair re-copy it.
        now = self.clock.now
        for block_id in sorted(believed - real):
            allocated = nn.pending_writes.get((block_id, node))
            if allocated is not None and now - allocated < nn.write_grace:
                continue
            if (block_id in nn.blockmap
                    and node in nn.blockmap.locations(block_id)):
                nn.blockmap.remove_location(block_id, node)
            nn._lazy.discard((block_id, node))
            nn.integrity.release(block_id, node)
            dn.erase(block_id)
        # Reality holding an unbelieved replica is handled by the tick's
        # delete push (belief is authoritative); re-registration of
        # believed blocks goes through the standard report path.
        nn.register_block_report(node)
        if nn.safe_mode and len(self._addresses) >= self.config.num_datanodes:
            nn.safe_mode = False
            _LOG.info(
                "all %d datanodes registered; leaving safe mode",
                self.config.num_datanodes,
            )
        nn.check_replication()

    # -- control loops ------------------------------------------------------

    async def _tick_loop(self) -> None:
        interval = min(0.5, self.config.heartbeat_interval / 2)
        while not self._stopping.is_set():
            try:
                self._tick()
            except Exception:  # pragma: no cover - loop must survive
                _LOG.exception("namenode tick failed")
            try:
                await asyncio.wait_for(
                    self._stopping.wait(), timeout=interval
                )
            except asyncio.TimeoutError:
                pass

    def _tick(self) -> None:
        now = self.clock.now
        nn = self.namenode
        # 1. Heartbeat expiry: a registered node that stopped beating is
        #    declared dead; its locations retract and repair begins.
        for node, beat in list(self._last_beat.items()):
            dn = nn.datanodes[node]
            if dn.alive and now - beat > self.config.heartbeat_expiry:
                _LOG.warning(
                    "datanode %d missed its heartbeat window "
                    "(last beat %.1fs ago); declaring dead",
                    node, now - beat,
                )
                if _REG.enabled:
                    _EXPIRIES.inc()
                nn.fail_node(node, re_replicate=not nn.safe_mode)
        # 2. Belief-authority deletes: evictions/purges/file deletes
        #    drop replicas from belief; push the delete to reality.
        for node, real in self._last_real.items():
            dn = nn.datanodes[node]
            if not dn.alive:
                continue
            address = self._addresses.get(node)
            if address is None:
                continue
            for block_id in sorted(real - dn.blocks()):
                real.discard(block_id)
                self._push_delete(address, block_id)
        # 3. Prune stale write-grace stamps.
        grace = NetworkNamenode.write_grace
        nn.pending_writes = {
            key: stamp for key, stamp in nn.pending_writes.items()
            if now - stamp < 2 * grace
        }
        # 4. Periodic replication safety net + Aurora period.
        if not nn.safe_mode and now - self._last_check >= max(
            1.0, self.config.heartbeat_interval
        ):
            self._last_check = now
            nn.check_replication()
        if (self.config.aurora_period > 0 and not nn.safe_mode
                and now - self._last_aurora >= self.config.aurora_period):
            self._last_aurora = now
            self._aurora_tick(now)

    def _push_delete(self, address: str, block_id: int) -> None:
        async def go() -> None:
            try:
                await asyncio.to_thread(
                    http_call, address, "DELETE", f"/blocks/{block_id}"
                )
            except HttpCallError:
                pass  # the next block report re-detects the extra

        asyncio.ensure_future(go())

    def _aurora_tick(self, now: float) -> None:
        """One Aurora period: Algorithm 3 over observed popularity."""
        nn = self.namenode
        blocks = list(nn.blockmap.block_ids())
        if not blocks:
            return
        live = len(nn.live_nodes())
        if live < 1:
            return
        observed = self.monitor.snapshot(now)
        popularities = {b: float(observed.get(b, 0)) for b in blocks}
        min_factor = max(1, min(self.config.min_replication, live))
        min_factors = {b: min_factor for b in blocks}
        budget = max(
            len(blocks) * min_factor,
            int(len(blocks) * self.config.replication_budget_factor),
        )
        current = {b: nn.blockmap.meta(b).replication_factor for b in blocks}
        initial = {
            b: max(min_factor, min(current[b], live)) for b in blocks
        }
        try:
            result = compute_replication_factors(
                popularities, min_factors, budget, num_machines=live,
                initial_factors=initial,
            )
        except InvalidProblemError as exc:
            _LOG.warning("aurora tick skipped: %s", exc)
            return
        raised = lowered = 0
        for block_id, factor in result.factors.items():
            if factor == current[block_id]:
                continue
            try:
                nn.set_replication(block_id, factor)
            except DfsError as exc:
                _LOG.warning(
                    "set_replication(%d, %d) failed: %s",
                    block_id, factor, exc,
                )
                continue
            if factor > current[block_id]:
                raised += 1
            else:
                lowered += 1
        if _REG.enabled:
            _AURORA_TICKS.inc()
            if raised:
                _FACTOR_CHANGES.labels(direction="raise").inc(raised)
            if lowered:
                _FACTOR_CHANGES.labels(direction="lower").inc(lowered)
        if raised or lowered:
            _LOG.info(
                "aurora period at t=%.1f: %d factors raised, %d lowered",
                now, raised, lowered,
            )

    # -- HTTP surface -------------------------------------------------------

    def _register_routes(self) -> None:
        http = self.http
        http.route("GET", "/healthz", self._h_healthz)
        http.route("GET", "/metrics", self._h_metrics)
        http.route("GET", "/v1/status", self._h_status)
        http.route("POST", "/v1/files", self._h_create_file)
        http.route("GET", "/v1/files", self._h_get_file)
        http.route("DELETE", "/v1/files", self._h_delete_file)
        http.route("POST", "/v1/files/replication", self._h_set_replication)
        http.route("GET", "/v1/blocks/{block_id}/locations", self._h_locate)
        http.route("POST", "/v1/blocks/{block_id}/access", self._h_access)
        http.route("POST", "/v1/blocks/{block_id}/corrupt", self._h_corrupt)
        http.route("GET", "/v1/fsck", self._h_fsck)
        http.route("POST", "/v1/scrub", self._h_scrub)
        http.route("POST", "/dn/register", self._h_register)
        http.route("POST", "/dn/heartbeat", self._h_heartbeat)
        http.route("POST", "/dn/report", self._h_report)
        http.route("POST", "/admin/lead", self._h_lead)
        http.route("POST", "/admin/shutdown", self._h_shutdown)

    def _redirect(self) -> Optional[Response]:
        """Follower mode: send the caller to the leader."""
        if self.leader_address is None:
            return None
        exc = NoLeaderError(
            f"not the leader; try {self.leader_address}"
        )
        return Response(
            307,
            encode_error(exc, leader=self.leader_address),
            headers={"Location": f"http://{self.leader_address}"},
        )

    async def _h_healthz(self, request: HttpRequest) -> Response:
        nn = self.namenode
        return Response(200, {
            "ok": True,
            "role": "namenode",
            "leader": self.leader_address is None,
            "leader_address": self.leader_address,
            "safe_mode": nn.safe_mode,
            "registered_datanodes": len(self._addresses),
            "expected_datanodes": self.config.num_datanodes,
            "live_datanodes": sorted(nn.live_nodes()),
        })

    async def _h_metrics(self, request: HttpRequest) -> Response:
        from repro.obs.exporters import to_prometheus_text

        return Response(200, to_prometheus_text(_REG))

    async def _h_status(self, request: HttpRequest) -> Response:
        nn = self.namenode
        return Response(200, {
            "files": len(nn.list_files()),
            "blocks": nn.blockmap.num_blocks,
            "live_datanodes": sorted(nn.live_nodes()),
            "addresses": {
                str(node): addr for node, addr in self._addresses.items()
            },
            "safe_mode": nn.safe_mode,
            "under_replicated": len(
                nn.blockmap.under_replicated(nn.live_nodes())
            ),
            "replications_completed": nn.replications_completed,
            "uptime": self.clock.now,
        })

    def _file_info(self, meta: FileMeta) -> FileInfo:
        nn = self.namenode
        blocks = []
        for block_id in meta.block_ids:
            block_meta = nn.blockmap.meta(block_id)
            locations = [
                ReplicaLocation(node=node, address=self._addresses[node])
                for node in sorted(nn.verified_locations(block_id))
                if node in self._addresses
            ]
            blocks.append(BlockInfo(
                block_id=block_id, size=block_meta.size,
                locations=locations,
            ))
        return FileInfo(
            path=meta.path, file_id=meta.file_id,
            block_size=meta.block_size, blocks=blocks,
        )

    async def _h_create_file(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        req = CreateFileRequest.from_wire(request.json())
        meta = self.namenode.create_file(
            req.path,
            req.num_blocks,
            block_size=req.block_size or DEFAULT_MAX_BLOCK_SIZE,
            writer=req.writer,
            replication=req.replication,
            rack_spread=req.rack_spread,
        )
        return Response(201, self._file_info(meta).to_wire())

    async def _h_get_file(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        path = request.query.get("path")
        if path is None:
            return Response(200, {"paths": self.namenode.list_files()})
        return Response(
            200, self._file_info(self.namenode.file(path)).to_wire()
        )

    async def _h_delete_file(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        path = request.query.get("path", "")
        self.namenode.delete_file(path)
        return Response(200, {"deleted": path})

    async def _h_set_replication(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        body = request.json()
        path = str(body.get("path", ""))
        factor = int(body.get("factor", 0))
        for block_id in self.namenode.file(path).block_ids:
            self.namenode.set_replication(block_id, factor)
        return Response(200, {"path": path, "factor": factor})

    async def _h_locate(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        block_id = int(request.params["block_id"])
        reader = int(request.query.get("reader", "0"))
        nn = self.namenode
        meta = nn.blockmap.meta(block_id)
        candidates = [
            ReplicaLocation(node=node, address=self._addresses[node])
            for node in nn.replica_preference(block_id, reader)
            if node in self._addresses
        ]
        return Response(200, LocateResponse(
            block_id=block_id, size=meta.size, candidates=candidates,
        ).to_wire())

    async def _h_access(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        report = AccessReport.from_wire(
            dict(request.json(), block_id=int(request.params["block_id"]))
        )
        try:
            self.namenode.record_access(
                report.block_id, report.reader, source=report.source
            )
        except DfsError:
            # Belief is momentarily behind reality (the serving replica
            # just got retracted); the read still happened, so Aurora's
            # popularity signal must see it.
            self.monitor.record_access(report.block_id, self.clock.now)
        return Response(200, {"ok": True})

    async def _h_corrupt(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        report = CorruptReport.from_wire(
            dict(request.json(), block_id=int(request.params["block_id"]))
        )
        accepted = self.namenode.report_corrupt_replica(
            report.block_id, report.node, detector=report.detector
        )
        return Response(200, {"accepted": accepted})

    async def _h_fsck(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        if request.query.get("verify") in ("1", "true"):
            await self._scrub_pass()
        report = run_fsck(self.namenode)
        return Response(200, dict(
            report.to_dict(),
            wire={
                "registered_datanodes": len(self._addresses),
                "live_datanodes": sorted(self.namenode.live_nodes()),
            },
        ))

    async def _scrub_pass(self) -> ScrubSummary:
        """Ask every live datanode to re-checksum its replicas."""
        nn = self.namenode
        verified = corrupt = scrubbed = unreachable = 0
        for node in sorted(nn.live_nodes()):
            address = self._addresses.get(node)
            if address is None:
                continue
            try:
                status, body, _ = await asyncio.to_thread(
                    http_call, address, "POST", "/admin/verify",
                )
            except HttpCallError:
                unreachable += 1
                continue
            if status != 200 or not isinstance(body, dict):
                unreachable += 1
                continue
            scrubbed += 1
            verified += int(body.get("verified", 0))
            for block_id in body.get("corrupt", []):
                corrupt += 1
                nn.report_corrupt_replica(
                    int(block_id), node, detector="scrubber"
                )
        return ScrubSummary(
            replicas_verified=verified, corrupt_found=corrupt,
            nodes_scrubbed=scrubbed, nodes_unreachable=unreachable,
        )

    async def _h_scrub(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        summary = await self._scrub_pass()
        return Response(200, summary.to_wire())

    async def _h_register(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        report = BlockReportRequest.from_wire(request.json())
        self._reconcile_report(report)
        _LOG.info(
            "datanode %d registered from %s (%d blocks)",
            report.node, report.address, len(report.blocks),
        )
        return Response(200, {
            "ok": True,
            "heartbeat_interval": self.config.heartbeat_interval,
            "safe_mode": self.namenode.safe_mode,
        })

    async def _h_heartbeat(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        beat = HeartbeatRequest.from_wire(request.json())
        if _REG.enabled:
            _HEARTBEATS.inc()
        known = beat.node in self._addresses
        dn_alive = (
            known and self.namenode.datanodes[beat.node].alive
        )
        if known:
            self._last_beat[beat.node] = self.clock.now
            self.namenode.node_saturation[beat.node] = beat.saturation
        # A beat from an unknown or believed-dead node means this
        # namenode's belief is behind reality — ask for a full report.
        return Response(200, {"ok": True, "report": not dn_alive})

    async def _h_report(self, request: HttpRequest) -> Response:
        redirect = self._redirect()
        if redirect is not None:
            return redirect
        report = BlockReportRequest.from_wire(request.json())
        self._reconcile_report(report)
        return Response(200, {"ok": True})

    async def _h_lead(self, request: HttpRequest) -> Response:
        leader = request.json().get("leader")
        self.leader_address = str(leader) if leader else None
        return Response(200, {
            "ok": True, "leader": self.leader_address is None,
        })

    async def _h_shutdown(self, request: HttpRequest) -> Response:
        self._stopping.set()
        return Response(200, {"ok": True})

    # -- lifecycle ----------------------------------------------------------

    async def run(self, announce=None) -> None:
        """Serve until shut down."""
        self.clock.bind(asyncio.get_running_loop())
        address = await self.http.start(self.config.host, self.config.port)
        if announce is not None:
            announce(address)
        ticker = asyncio.ensure_future(self._tick_loop())
        try:
            await self._stopping.wait()
        finally:
            ticker.cancel()
            await self.http.stop()

    def request_stop(self) -> None:
        self._stopping.set()
