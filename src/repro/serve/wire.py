"""Wire schemas for the networked Aurora service.

Every request/response crossing a socket between the :mod:`repro.serve`
namenode, datanodes, and the client SDK is one of the frozen dataclasses
below, serialized as JSON.  The schemas are deliberately flat — ints,
floats, strings, lists — so a round trip through ``to_wire``/``from_wire``
is lossless and property-testable.

The module also owns the **error codec**: exceptions raised by the
in-process :class:`~repro.dfs.namenode.Namenode`/:class:`~repro.dfs.client.DfsClient`
path map onto stable string codes, ship as JSON error payloads, and are
rehydrated by the SDK into the *same* exception classes — so callers can
``except ChecksumError`` identically whether the backend is in-process
or on the other end of a socket.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.errors import (
    BlockNotFoundError,
    CapacityExceededError,
    ChecksumError,
    DatanodeUnavailableError,
    DfsError,
    FencedError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
    NoLeaderError,
    OverloadSheddedError,
    QuotaExceededError,
    ReproError,
    SafeModeError,
)

__all__ = [
    "WIRE_SCHEMAS",
    "ERROR_CODES",
    "BlockInfo",
    "CreateFileRequest",
    "FileInfo",
    "HeartbeatRequest",
    "BlockReportRequest",
    "ReplicaLocation",
    "LocateResponse",
    "AccessReport",
    "CorruptReport",
    "PullRequest",
    "ScrubSummary",
    "WireError",
    "payload_checksum",
    "encode_error",
    "decode_error",
    "error_code_for",
]


def payload_checksum(data: bytes) -> int:
    """Checksum of a block payload as stored / shipped on the wire.

    CRC-32 — cheap, stdlib, and good enough to catch bit rot and torn
    transfers; the record written at store time is what gets served
    later, so silent on-disk corruption shows up as a mismatch between
    the served bytes and the *original* checksum.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


class _WireMessage:
    """Shared to/from-JSON plumbing for the schema dataclasses."""

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready dict (nested schemas become nested dicts)."""
        return asdict(self)

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "_WireMessage":
        """Rebuild the dataclass from a decoded JSON dict.

        Unknown keys are rejected — a schema drift between client and
        server should fail loudly, not truncate silently.
        """
        names = {f.name for f in fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise DfsError(
                f"{cls.__name__}: unknown wire fields {sorted(unknown)}"
            )
        kwargs = dict(payload)
        for name, sub in getattr(cls, "_NESTED", {}).items():
            if name in kwargs and kwargs[name] is not None:
                value = kwargs[name]
                if isinstance(value, list):
                    kwargs[name] = [sub.from_wire(item) for item in value]
                else:
                    kwargs[name] = sub.from_wire(value)
        for name in getattr(cls, "_TUPLES", ()):
            if name in kwargs and kwargs[name] is not None:
                kwargs[name] = tuple(
                    tuple(item) if isinstance(item, list) else item
                    for item in kwargs[name]
                )
        return cls(**kwargs)


@dataclass(frozen=True)
class ReplicaLocation(_WireMessage):
    """One replica candidate: the datanode id and its HTTP address."""

    node: int
    address: str


@dataclass(frozen=True)
class BlockInfo(_WireMessage):
    """One block of a file, with its current replica candidates."""

    block_id: int
    size: int
    generation: int = 0
    locations: List[ReplicaLocation] = field(default_factory=list)

    _NESTED = {"locations": ReplicaLocation}


@dataclass(frozen=True)
class CreateFileRequest(_WireMessage):
    """``POST /v1/files`` body."""

    path: str
    num_blocks: int
    block_size: int
    replication: Optional[int] = None
    rack_spread: Optional[int] = None
    writer: Optional[int] = None


@dataclass(frozen=True)
class FileInfo(_WireMessage):
    """A file's metadata plus per-block replica locations."""

    path: str
    file_id: int
    block_size: int
    blocks: List[BlockInfo] = field(default_factory=list)

    _NESTED = {"blocks": BlockInfo}


@dataclass(frozen=True)
class HeartbeatRequest(_WireMessage):
    """``POST /dn/heartbeat`` body — one datanode's periodic beat."""

    node: int
    saturation: float = 0.0
    used_blocks: int = 0


@dataclass(frozen=True)
class BlockReportRequest(_WireMessage):
    """``POST /dn/register`` / ``POST /dn/report`` body.

    ``blocks`` is the full report: ``(block_id, generation, checksum)``
    triples for every replica physically on the node's disk.
    """

    node: int
    address: str
    capacity_blocks: int
    blocks: Tuple[Tuple[int, int, int], ...] = field(default_factory=tuple)

    _TUPLES = ("blocks",)


@dataclass(frozen=True)
class LocateResponse(_WireMessage):
    """``GET /v1/blocks/{id}/locations`` response.

    ``candidates`` come in the namenode's preference order for the
    requesting reader (the same
    :meth:`~repro.dfs.namenode.Namenode.replica_preference` walk the
    in-process client uses).
    """

    block_id: int
    size: int
    generation: int = 0
    candidates: List[ReplicaLocation] = field(default_factory=list)

    _NESTED = {"candidates": ReplicaLocation}


@dataclass(frozen=True)
class AccessReport(_WireMessage):
    """``POST /v1/blocks/{id}/access`` — a served read, for Aurora's
    popularity monitor and the locality metrics."""

    block_id: int
    reader: int
    source: int


@dataclass(frozen=True)
class CorruptReport(_WireMessage):
    """``POST /v1/blocks/{id}/corrupt`` — a checksum-failed replica."""

    block_id: int
    node: int
    detector: str = "client"


@dataclass(frozen=True)
class PullRequest(_WireMessage):
    """``POST /admin/pull`` on a datanode: fetch-and-store a replica.

    The namenode's re-replication path sends this to the *target*
    datanode, which pulls the bytes from ``source_address``, verifies
    them against the shipped checksum, and stores them locally.
    """

    block_id: int
    source_address: str
    generation: int = 0


@dataclass(frozen=True)
class ScrubSummary(_WireMessage):
    """``POST /v1/scrub`` response: one verification pass over the
    cluster's live replicas."""

    replicas_verified: int = 0
    corrupt_found: int = 0
    nodes_scrubbed: int = 0
    nodes_unreachable: int = 0


@dataclass(frozen=True)
class WireError(_WireMessage):
    """The JSON error payload: ``{"error": code, "message": ...}``.

    ``leader`` carries the redirect target on not-leader rejections.
    """

    error: str
    message: str = ""
    leader: Optional[str] = None


WIRE_SCHEMAS: Tuple[type, ...] = (
    ReplicaLocation,
    BlockInfo,
    CreateFileRequest,
    FileInfo,
    HeartbeatRequest,
    BlockReportRequest,
    LocateResponse,
    AccessReport,
    CorruptReport,
    PullRequest,
    ScrubSummary,
    WireError,
)


# Exception class <-> stable wire code.  Order matters for encoding:
# the most specific class must come first, because ``error_code_for``
# walks this list with ``isinstance`` (ChecksumError subclasses
# DatanodeUnavailableError, FencedError subclasses SafeModeError).
_ERROR_TABLE: Tuple[Tuple[str, Type[ReproError]], ...] = (
    ("checksum", ChecksumError),
    ("overload-shedded", OverloadSheddedError),
    ("fenced", FencedError),
    ("safe-mode", SafeModeError),
    ("datanode-unavailable", DatanodeUnavailableError),
    ("no-leader", NoLeaderError),
    ("file-not-found", FileNotFoundInDfsError),
    ("file-exists", FileExistsInDfsError),
    ("block-not-found", BlockNotFoundError),
    ("quota-exceeded", QuotaExceededError),
    ("capacity-exceeded", CapacityExceededError),
    ("dfs", DfsError),
    ("repro", ReproError),
)

ERROR_CODES: Dict[str, Type[ReproError]] = dict(_ERROR_TABLE)


def error_code_for(exc: BaseException) -> str:
    """The wire code of an exception (``"internal"`` for foreign ones)."""
    for code, cls in _ERROR_TABLE:
        if isinstance(exc, cls):
            return code
    return "internal"


def encode_error(exc: BaseException, leader: Optional[str] = None) -> Dict[str, Any]:
    """Serialize an exception into the standard JSON error payload."""
    return WireError(
        error=error_code_for(exc), message=str(exc), leader=leader
    ).to_wire()


def decode_error(payload: Mapping[str, Any]) -> ReproError:
    """Rehydrate a JSON error payload into the matching exception.

    Unknown codes degrade to :class:`DfsError` (never to a silent
    success) so an older SDK still fails loudly against a newer server.
    """
    wire = WireError.from_wire(payload)
    cls = ERROR_CODES.get(wire.error, DfsError)
    return cls(wire.message or wire.error)
