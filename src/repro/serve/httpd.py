"""Dependency-free HTTP/1.1 plumbing for the service layer.

The container bakes in no web framework, so the service speaks HTTP
through two small pieces built on the stdlib only:

* :class:`HttpServer` — an ``asyncio.start_server`` loop that parses
  requests (headers + Content-Length bodies, keep-alive), routes them
  through a tiny pattern table (``/v1/blocks/{block_id}/locations``),
  and writes JSON or binary responses;
* :func:`http_call` — the synchronous client primitive used by the SDK
  and by datanode-to-datanode pulls, on ``http.client``.

Handlers are ``async def handler(request) -> Response`` and may return
JSON-able dicts/dataclasses or raw bytes.  Exceptions from the
:mod:`repro.errors` hierarchy become structured error payloads via
:func:`repro.serve.wire.encode_error`; the status mapping keeps the SDK
failover semantics honest (overload sheds are 503, checksum mismatches
502, stale locations 404).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import logging
import socket
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import (
    BlockNotFoundError,
    CapacityExceededError,
    ChecksumError,
    DatanodeUnavailableError,
    DfsError,
    FencedError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
    NoLeaderError,
    OverloadSheddedError,
    ReproError,
    SafeModeError,
)
from repro.obs.registry import get_registry
from repro.serve.wire import encode_error

__all__ = [
    "HttpRequest",
    "Response",
    "HttpServer",
    "Route",
    "http_call",
    "status_for_error",
    "HttpCallError",
]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_REQUESTS = _REG.counter(
    "repro_serve_http_requests_total",
    "HTTP requests handled by a repro.serve process, by route and status",
    ["route", "status"],
)

_MAX_BODY = 256 * 1024 * 1024  # refuse absurd Content-Length values


def status_for_error(exc: BaseException) -> int:
    """HTTP status carrying each library exception class.

    The mapping is part of the wire contract: the SDK keys its failover
    behaviour off these statuses (503 = shed, fail over without
    backoff; 502 = corrupt bytes; 404 = stale metadata).
    """
    if isinstance(exc, ChecksumError):
        return 502
    if isinstance(exc, OverloadSheddedError):
        return 503
    if isinstance(exc, (FencedError, SafeModeError)):
        return 503
    if isinstance(exc, NoLeaderError):
        return 503
    if isinstance(
        exc,
        (FileNotFoundInDfsError, BlockNotFoundError, DatanodeUnavailableError),
    ):
        return 404
    if isinstance(exc, FileExistsInDfsError):
        return 409
    if isinstance(exc, CapacityExceededError):
        return 507
    if isinstance(exc, ReproError):
        return 400
    return 500


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict[str, Any]:
        """Decode the body as a JSON object ({} when empty)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DfsError(f"malformed JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise DfsError("JSON body must be an object")
        return data


@dataclass
class Response:
    """What a handler returns; ``payload`` may be a dict or raw bytes."""

    status: int = 200
    payload: Union[Dict[str, Any], bytes, str, None] = None
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> Tuple[bytes, str]:
        if isinstance(self.payload, bytes):
            return self.payload, "application/octet-stream"
        if isinstance(self.payload, str):
            return self.payload.encode("utf-8"), "text/plain; charset=utf-8"
        body = json.dumps(
            self.payload if self.payload is not None else {}
        ).encode("utf-8")
        return body, "application/json"


Handler = Callable[[HttpRequest], Awaitable[Response]]

_REASONS = {
    200: "OK", 201: "Created", 204: "No Content", 307: "Temporary Redirect",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 507: "Insufficient Storage",
}


class Route:
    """One routing-table entry: ``METHOD /path/{param}/suffix``."""

    def __init__(self, method: str, pattern: str, handler: Handler) -> None:
        self.method = method.upper()
        self.pattern = pattern
        self.handler = handler
        self._segments = pattern.strip("/").split("/")

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        if method != self.method:
            return None
        segments = path.strip("/").split("/")
        if len(segments) != len(self._segments):
            return None
        params: Dict[str, str] = {}
        for want, got in zip(self._segments, segments):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                return None
        return params


class HttpServer:
    """Asyncio JSON-over-HTTP server with a static routing table."""

    def __init__(self, label: str = "serve") -> None:
        self.label = label
        self.routes: List[Route] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self.address: Optional[str] = None

    def route(self, method: str, pattern: str, handler: Handler) -> None:
        self.routes.append(Route(method, pattern, handler))

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> str:
        """Bind and serve; returns the actual ``host:port`` address."""
        self._server = await asyncio.start_server(
            self._serve_connection, host=host, port=port,
            family=socket.AF_INET,
        )
        bound = self._server.sockets[0].getsockname()
        self.address = f"{bound[0]}:{bound[1]}"
        _LOG.info("%s listening on %s", self.label, self.address)
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                close = request.headers.get("connection", "").lower() == "close"
                response = await self._dispatch(request)
                await self._write_response(writer, response, close)
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:  # server stopping mid-request
            pass
        except Exception:  # pragma: no cover - connection-level guard
            _LOG.exception("%s: connection handler failed", self.label)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError,
                    asyncio.CancelledError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[HttpRequest]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if not 0 <= length <= _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        parsed = urllib.parse.urlsplit(target)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(
                parsed.query, keep_blank_values=True
            ).items()
        }
        return HttpRequest(
            method=method.upper(),
            path=urllib.parse.unquote(parsed.path),
            query=query,
            headers=headers,
            body=body,
        )

    async def _dispatch(self, request: HttpRequest) -> Response:
        matched_pattern = request.path
        try:
            for route in self.routes:
                params = route.match(request.method, request.path)
                if params is not None:
                    matched_pattern = route.pattern
                    request.params = params
                    response = await route.handler(request)
                    break
            else:
                known_path = any(
                    route.match(route.method, request.path) is not None
                    for route in self.routes
                )
                status = 405 if known_path else 404
                response = Response(
                    status, encode_error(DfsError(
                        f"no route for {request.method} {request.path}"
                    )),
                )
                matched_pattern = "<unrouted>"
        except ReproError as exc:
            response = Response(status_for_error(exc), encode_error(exc))
        except Exception as exc:  # noqa: BLE001 - server must not die
            _LOG.exception(
                "%s: handler for %s %s crashed",
                self.label, request.method, request.path,
            )
            response = Response(500, encode_error(exc))
        if _REG.enabled:
            _REQUESTS.labels(
                route=f"{request.method} {matched_pattern}",
                status=str(response.status),
            ).inc()
        return response

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, close: bool
    ) -> None:
        body, content_type = response.encode()
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()


class HttpCallError(DfsError):
    """Transport-level failure of :func:`http_call` (refused, timeout,
    reset) — the SDK treats it like a dead replica and fails over."""


def http_call(
    address: str,
    method: str,
    path: str,
    payload: Optional[Union[Dict[str, Any], bytes]] = None,
    timeout: float = 10.0,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Union[Dict[str, Any], bytes], Dict[str, str]]:
    """One synchronous HTTP exchange against ``host:port``.

    Returns ``(status, body, headers)`` where ``body`` is a decoded
    JSON object for JSON responses and raw ``bytes`` otherwise.  Raises
    :class:`HttpCallError` on any transport failure.
    """
    if isinstance(payload, bytes):
        body: Optional[bytes] = payload
        content_type = "application/octet-stream"
    elif payload is not None:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    else:
        body = None
        content_type = "application/json"
    request_headers = {"Content-Type": content_type}
    if headers:
        request_headers.update(headers)
    conn = http.client.HTTPConnection(address, timeout=timeout)
    try:
        conn.request(method.upper(), path, body=body, headers=request_headers)
        raw = conn.getresponse()
        data = raw.read()
        response_headers = {k.lower(): v for k, v in raw.getheaders()}
        if response_headers.get(
            "content-type", ""
        ).startswith("application/json"):
            try:
                decoded: Union[Dict[str, Any], bytes] = (
                    json.loads(data.decode("utf-8")) if data else {}
                )
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise HttpCallError(
                    f"{address}: malformed JSON response: {exc}"
                ) from exc
        else:
            decoded = data
        return raw.status, decoded, response_headers
    except (OSError, http.client.HTTPException) as exc:
        raise HttpCallError(f"{method} {address}{path}: {exc}") from exc
    finally:
        conn.close()
