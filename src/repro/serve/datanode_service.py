"""The datanode process: real block bytes behind an HTTP surface.

Each datanode server owns an in-memory block store (``block_id ->
(generation, bytes)``) plus the CRC-32 checksum recorded at store time.
It registers with the namenode on startup, heartbeats on a wall-clock
interval, pushes a full block report whenever its holdings change, and
serves the data plane:

* ``GET /blocks/{id}`` — the bytes, with the *stored* checksum in a
  header (so bit rot after the write shows up as a client-side
  checksum mismatch, exactly like the simulated integrity plane);
* ``PUT /blocks/{id}`` — store a replica; a ``pipeline`` query of
  further datanode addresses makes this hop forward the bytes on, the
  HDFS write pipeline over real sockets;
* ``POST /admin/pull`` — fetch-and-store a replica from a peer, the
  receiving end of namenode-driven re-replication;
* chaos hooks (``/admin/corrupt``, ``/admin/shed``) so the fault
  profiles that kill and damage simulated datanodes have wire-level
  equivalents.

Overload protection is a bounded concurrency gate: beyond
``max_inflight`` concurrent data-plane requests the node sheds with
503, which the SDK treats exactly like a simulated queue shed (fail
over, no backoff).
"""

from __future__ import annotations

import asyncio
import logging
from typing import Dict, Tuple

from repro.errors import CapacityExceededError, DfsError
from repro.obs.registry import get_registry
from repro.serve.httpd import HttpCallError, HttpRequest, HttpServer, Response, http_call
from repro.serve.wire import (
    BlockReportRequest,
    HeartbeatRequest,
    PullRequest,
    encode_error,
    payload_checksum,
)

__all__ = ["DatanodeServer"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_BLOCKS_STORED = _REG.gauge(
    "repro_serve_datanode_blocks",
    "Replicas currently stored by this datanode process",
)
_BYTES = _REG.counter(
    "repro_serve_datanode_bytes_total",
    "Bytes moved through this datanode process, by direction",
    ["direction"],
)
_SHED = _REG.counter(
    "repro_serve_datanode_shed_total",
    "Data-plane requests shed by the bounded concurrency gate",
)
_PULLS = _REG.counter(
    "repro_serve_datanode_pulls_total",
    "Replication pulls completed by this datanode, by outcome",
    ["outcome"],
)


class DatanodeServer:
    """One datanode process: block storage + heartbeats + data plane."""

    def __init__(
        self,
        node_id: int,
        capacity_blocks: int,
        namenode_address: str,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 1.0,
        max_inflight: int = 64,
    ) -> None:
        if capacity_blocks < 1:
            raise DfsError("capacity must be positive")
        self.node_id = node_id
        self.capacity_blocks = capacity_blocks
        self.namenode_address = namenode_address
        self.host = host
        self.port = port
        self.heartbeat_interval = heartbeat_interval
        self.max_inflight = max_inflight
        # block_id -> (generation, payload); checksums recorded at store
        # time so later in-place damage is detectable.
        self._blocks: Dict[int, Tuple[int, bytes]] = {}
        self._checksums: Dict[int, int] = {}
        self._inflight = 0
        self._shed_all = False  # chaos hook: shed every data request
        self._report_due = asyncio.Event()
        self._stopping = asyncio.Event()
        self.http = HttpServer(label=f"datanode-{node_id}")
        self._register_routes()

    # -- storage primitives ------------------------------------------------

    def store(self, block_id: int, data: bytes, generation: int = 0) -> int:
        """Store a replica; returns the recorded checksum."""
        if block_id in self._blocks:
            raise DfsError(
                f"datanode {self.node_id} already stores block {block_id}"
            )
        if len(self._blocks) >= self.capacity_blocks:
            raise CapacityExceededError(
                f"datanode {self.node_id} disk full"
            )
        checksum = payload_checksum(data)
        self._blocks[block_id] = (generation, data)
        self._checksums[block_id] = checksum
        if _REG.enabled:
            _BLOCKS_STORED.set(len(self._blocks))
            _BYTES.labels(direction="in").inc(len(data))
        self._report_due.set()
        return checksum

    def erase(self, block_id: int) -> bool:
        """Drop a replica; returns whether it was present."""
        present = self._blocks.pop(block_id, None) is not None
        self._checksums.pop(block_id, None)
        if present:
            if _REG.enabled:
                _BLOCKS_STORED.set(len(self._blocks))
            self._report_due.set()
        return present

    def block_report(self) -> BlockReportRequest:
        """The full report shipped to the namenode."""
        return BlockReportRequest(
            node=self.node_id,
            address=self.http.address or f"{self.host}:{self.port}",
            capacity_blocks=self.capacity_blocks,
            blocks=tuple(
                sorted(
                    (block_id, generation, self._checksums[block_id])
                    for block_id, (generation, _) in self._blocks.items()
                )
            ),
        )

    def verify_all(self) -> Tuple[int, Tuple[int, ...]]:
        """Re-checksum every stored replica (the scrub read-back).

        Returns ``(verified_count, corrupt_block_ids)``.
        """
        corrupt = tuple(
            block_id
            for block_id, (_, data) in sorted(self._blocks.items())
            if payload_checksum(data) != self._checksums[block_id]
        )
        return len(self._blocks), corrupt

    # -- HTTP surface ------------------------------------------------------

    def _register_routes(self) -> None:
        self.http.route("GET", "/healthz", self._h_healthz)
        self.http.route("GET", "/metrics", self._h_metrics)
        self.http.route("GET", "/blocks/{block_id}", self._h_read)
        self.http.route("PUT", "/blocks/{block_id}", self._h_write)
        self.http.route("DELETE", "/blocks/{block_id}", self._h_delete)
        self.http.route("POST", "/admin/pull", self._h_pull)
        self.http.route("POST", "/admin/verify", self._h_verify)
        self.http.route("POST", "/admin/corrupt", self._h_corrupt)
        self.http.route("POST", "/admin/shed", self._h_shed)
        self.http.route("POST", "/admin/shutdown", self._h_shutdown)

    def _gate(self) -> bool:
        """Admission check for data-plane work; True means shed."""
        return self._shed_all or self._inflight >= self.max_inflight

    async def _h_healthz(self, request: HttpRequest) -> Response:
        return Response(200, {
            "ok": True,
            "role": "datanode",
            "node": self.node_id,
            "blocks": len(self._blocks),
            "capacity_blocks": self.capacity_blocks,
        })

    async def _h_metrics(self, request: HttpRequest) -> Response:
        from repro.obs.exporters import to_prometheus_text

        return Response(200, to_prometheus_text(_REG))

    async def _h_read(self, request: HttpRequest) -> Response:
        if self._gate():
            if _REG.enabled:
                _SHED.inc()
            return Response(503, encode_error(DfsError("shedding load")),
                            headers={"X-Repro-Shed": "1"})
        block_id = int(request.params["block_id"])
        entry = self._blocks.get(block_id)
        if entry is None:
            return Response(404, encode_error(DfsError(
                f"datanode {self.node_id} does not store block {block_id}"
            )))
        generation, data = entry
        if _REG.enabled:
            _BYTES.labels(direction="out").inc(len(data))
        # Serve the *stored* checksum record, never a recomputation:
        # rot between store and serve must be visible to the reader.
        return Response(200, data, headers={
            "X-Repro-Checksum": str(self._checksums[block_id]),
            "X-Repro-Generation": str(generation),
            "X-Repro-Node": str(self.node_id),
        })

    async def _h_write(self, request: HttpRequest) -> Response:
        if self._gate():
            if _REG.enabled:
                _SHED.inc()
            return Response(503, encode_error(DfsError("shedding load")),
                            headers={"X-Repro-Shed": "1"})
        block_id = int(request.params["block_id"])
        generation = int(request.query.get("generation", "0"))
        self._inflight += 1
        try:
            checksum = self.store(block_id, request.body, generation)
            stored = [self.node_id]
            # The HDFS write pipeline: this hop forwards the bytes to
            # the next replica target, which forwards on in turn.
            pipeline = [
                hop for hop in
                request.query.get("pipeline", "").split(",") if hop
            ]
            if pipeline:
                next_hop, rest = pipeline[0], pipeline[1:]
                suffix = f"&pipeline={','.join(rest)}" if rest else ""
                status, body, _ = await asyncio.to_thread(
                    http_call, next_hop, "PUT",
                    f"/blocks/{block_id}?generation={generation}{suffix}",
                    request.body,
                )
                if status != 200 or not isinstance(body, dict):
                    raise DfsError(
                        f"pipeline hop to {next_hop} failed "
                        f"(status {status})"
                    )
                stored.extend(body.get("stored", []))
            return Response(200, {"ok": True, "checksum": checksum,
                                  "stored": stored})
        finally:
            self._inflight -= 1

    async def _h_delete(self, request: HttpRequest) -> Response:
        block_id = int(request.params["block_id"])
        return Response(200, {"deleted": self.erase(block_id)})

    async def _h_pull(self, request: HttpRequest) -> Response:
        """Fetch a replica from a peer datanode and store it locally."""
        pull = PullRequest.from_wire(request.json())
        if pull.block_id in self._blocks:
            if _REG.enabled:
                _PULLS.labels(outcome="duplicate").inc()
            return Response(200, {"ok": True, "outcome": "duplicate"})
        try:
            status, data, headers = await asyncio.to_thread(
                http_call, pull.source_address, "GET",
                f"/blocks/{pull.block_id}",
            )
        except HttpCallError as exc:
            if _REG.enabled:
                _PULLS.labels(outcome="source_unreachable").inc()
            return Response(502, {"ok": False,
                                  "outcome": "source-unreachable",
                                  "message": str(exc)})
        if status != 200 or not isinstance(data, bytes):
            if _REG.enabled:
                _PULLS.labels(outcome="source_error").inc()
            return Response(502, {"ok": False, "outcome": "source-error",
                                  "status": status})
        claimed = int(headers.get("x-repro-checksum", "-1"))
        if payload_checksum(data) != claimed:
            # In-flight verification: never clone damaged bytes.  The
            # namenode quarantines the source and retries elsewhere.
            if _REG.enabled:
                _PULLS.labels(outcome="source_corrupt").inc()
            return Response(200, {"ok": False, "outcome": "source-corrupt"})
        self.store(pull.block_id, data, pull.generation)
        if _REG.enabled:
            _PULLS.labels(outcome="ok").inc()
        return Response(200, {"ok": True, "outcome": "ok",
                              "checksum": claimed})

    async def _h_verify(self, request: HttpRequest) -> Response:
        verified, corrupt = self.verify_all()
        return Response(200, {
            "node": self.node_id,
            "verified": verified,
            "corrupt": list(corrupt),
        })

    async def _h_corrupt(self, request: HttpRequest) -> Response:
        """Chaos hook: silently flip a byte of a stored replica."""
        block_id = int(request.json().get("block_id", -1))
        entry = self._blocks.get(block_id)
        if entry is None:
            return Response(404, encode_error(DfsError(
                f"block {block_id} not stored here"
            )))
        generation, data = entry
        damaged = bytes([data[0] ^ 0xFF]) + data[1:] if data else b"\xff"
        # The stored checksum record deliberately stays at the value of
        # the original bytes — that is what silent corruption means.
        self._blocks[block_id] = (generation, damaged)
        return Response(200, {"ok": True, "block_id": block_id})

    async def _h_shed(self, request: HttpRequest) -> Response:
        """Chaos hook: toggle shedding of all data-plane requests."""
        self._shed_all = bool(request.json().get("shed", True))
        return Response(200, {"ok": True, "shedding": self._shed_all})

    async def _h_shutdown(self, request: HttpRequest) -> Response:
        self._stopping.set()
        return Response(200, {"ok": True})

    # -- lifecycle ---------------------------------------------------------

    async def _register_with_namenode(self) -> None:
        """Announce this node (with its current blocks) to the namenode.

        Retries until the namenode is reachable — datanode and namenode
        processes race at startup.
        """
        report = self.block_report().to_wire()
        while not self._stopping.is_set():
            try:
                status, body, _ = await asyncio.to_thread(
                    http_call, self.namenode_address, "POST",
                    "/dn/register", report,
                )
            except HttpCallError:
                await asyncio.sleep(0.2)
                continue
            if status == 200:
                _LOG.info(
                    "datanode %d registered with %s",
                    self.node_id, self.namenode_address,
                )
                return
            await asyncio.sleep(0.2)

    async def _heartbeat_loop(self) -> None:
        while not self._stopping.is_set():
            beat = HeartbeatRequest(
                node=self.node_id,
                saturation=min(1.0, self._inflight / self.max_inflight),
                used_blocks=len(self._blocks),
            )
            try:
                _status, body, _ = await asyncio.to_thread(
                    http_call, self.namenode_address, "POST",
                    "/dn/heartbeat", beat.to_wire(),
                )
                # The namenode answers ``report: true`` when its belief
                # disagrees with this beat (it thinks we're dead, or a
                # failed-over leader never met us) — re-report in full.
                if isinstance(body, dict) and body.get("report"):
                    self._report_due.set()
            except HttpCallError:
                pass  # namenode away (failover?); keep beating
            if self._report_due.is_set():
                self._report_due.clear()
                try:
                    await asyncio.to_thread(
                        http_call, self.namenode_address, "POST",
                        "/dn/report", self.block_report().to_wire(),
                    )
                except HttpCallError:
                    self._report_due.set()  # retry next beat
            try:
                await asyncio.wait_for(
                    self._stopping.wait(), timeout=self.heartbeat_interval
                )
            except asyncio.TimeoutError:
                pass

    async def run(self, announce=None) -> None:
        """Serve until shut down (``POST /admin/shutdown`` or SIGTERM)."""
        address = await self.http.start(self.host, self.port)
        if announce is not None:
            announce(address)
        await self._register_with_namenode()
        heartbeats = asyncio.ensure_future(self._heartbeat_loop())
        try:
            await self._stopping.wait()
        finally:
            heartbeats.cancel()
            await self.http.stop()

    def request_stop(self) -> None:
        self._stopping.set()
