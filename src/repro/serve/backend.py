"""The transport-agnostic DFS surface both deployment modes implement.

:class:`DfsBackend` is the contract extracted from what experiments and
tools actually call: create a file from block payloads, read blocks back
(verified), delete, list, retarget replication, fsck, status.  Two
implementations exist:

* :class:`SimBackend` — wraps the in-process
  :class:`~repro.dfs.namenode.Namenode` + :class:`~repro.dfs.client.DfsClient`
  pair (the discrete-event path every experiment uses), carrying real
  payload bytes alongside the simulated metadata so reads round-trip
  content exactly like the network does;
* :class:`~repro.serve.client.ServeClient` — the SDK speaking
  JSON-over-HTTP to a live :mod:`repro.serve` cluster.

Code written against the protocol (and its conformance test) runs
unchanged on either; the error surface is shared too — both raise
:class:`~repro.errors.DfsError` subclasses, with the wire codec in
:mod:`repro.serve.wire` guaranteeing class fidelity across the socket.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.dfs.client import DfsClient
from repro.dfs.fsck import run_fsck
from repro.dfs.namenode import Namenode
from repro.errors import BlockNotFoundError, DfsError
from repro.serve.client import BlockRead
from repro.serve.wire import (
    BlockInfo,
    FileInfo,
    ReplicaLocation,
    payload_checksum,
)

__all__ = ["DfsBackend", "SimBackend"]


@runtime_checkable
class DfsBackend(Protocol):
    """What a DFS looks like to code that doesn't care where it runs."""

    def write_file(
        self,
        path: str,
        blocks: Sequence[bytes],
        replication: Optional[int] = None,
        rack_spread: Optional[int] = None,
    ) -> FileInfo:
        """Create ``path`` from one payload per block."""
        ...

    def read_block(self, block_id: int) -> BlockRead:
        """Read one block with failover; bytes are checksum-verified."""
        ...

    def read_file(self, path: str) -> List[BlockRead]:
        ...

    def delete_file(self, path: str) -> None:
        ...

    def list_files(self) -> List[str]:
        ...

    def lookup(self, path: str) -> FileInfo:
        ...

    def set_replication(self, path: str, factor: int) -> None:
        ...

    def fsck(self, verify: bool = False) -> Dict[str, Any]:
        ...

    def status(self) -> Dict[str, Any]:
        ...


class SimBackend:
    """The in-process pair behind the :class:`DfsBackend` surface.

    Payload bytes live in a side table keyed by block id — the simulated
    data plane moves sizes, not content, so the backend carries the
    content itself and hands it back on reads, letting protocol-level
    tests assert byte equality identically against both backends.
    """

    def __init__(
        self,
        namenode: Namenode,
        client: Optional[DfsClient] = None,
        reader: int = 0,
    ) -> None:
        self.namenode = namenode
        self.client = client or DfsClient(namenode)
        self.reader = reader
        self._contents: Dict[int, bytes] = {}

    # -- protocol ----------------------------------------------------------

    def write_file(
        self,
        path: str,
        blocks: Sequence[bytes],
        replication: Optional[int] = None,
        rack_spread: Optional[int] = None,
    ) -> FileInfo:
        if not blocks:
            raise DfsError("a file needs at least one block")
        block_size = max(len(data) for data in blocks) or 1
        meta = self.client.write_file(
            path,
            num_blocks=len(blocks),
            block_size=block_size,
            writer=self.reader,
            replication=replication,
            rack_spread=rack_spread,
        )
        for block_id, data in zip(meta.block_ids, blocks):
            self._contents[block_id] = bytes(data)
        return self._file_info(path)

    def read_block(self, block_id: int) -> BlockRead:
        data = self._contents.get(block_id)
        if data is None:
            raise BlockNotFoundError(f"unknown block {block_id}")
        result = self.client.read_block(block_id, self.reader)
        return BlockRead(
            block_id=block_id,
            data=data,
            source=result.source,
            address=f"sim://{result.source}",
            attempts=max(1, len(result.attempts)),
            failovers=max(0, len(result.attempts) - 1),
            backoff=result.backoff,
            checksum=payload_checksum(data),
        )

    def read_file(self, path: str) -> List[BlockRead]:
        return [
            self.read_block(block_id)
            for block_id in self.namenode.file(path).block_ids
        ]

    def delete_file(self, path: str) -> None:
        block_ids = self.namenode.file(path).block_ids
        self.namenode.delete_file(path)
        for block_id in block_ids:
            self._contents.pop(block_id, None)

    def list_files(self) -> List[str]:
        return self.namenode.list_files()

    def lookup(self, path: str) -> FileInfo:
        return self._file_info(path)

    def set_replication(self, path: str, factor: int) -> None:
        for block_id in self.namenode.file(path).block_ids:
            self.namenode.set_replication(block_id, factor)

    def fsck(self, verify: bool = False) -> Dict[str, Any]:
        return run_fsck(
            self.namenode, verify_checksums=verify
        ).to_dict()

    def status(self) -> Dict[str, Any]:
        nn = self.namenode
        return {
            "files": len(nn.list_files()),
            "blocks": nn.blockmap.num_blocks,
            "live_datanodes": sorted(nn.live_nodes()),
            "safe_mode": nn.safe_mode,
            "under_replicated": len(
                nn.blockmap.under_replicated(nn.live_nodes())
            ),
            "replications_completed": nn.replications_completed,
        }

    # -- helpers -----------------------------------------------------------

    def _file_info(self, path: str) -> FileInfo:
        nn = self.namenode
        meta = nn.file(path)
        blocks = []
        for block_id in meta.block_ids:
            block_meta = nn.blockmap.meta(block_id)
            blocks.append(BlockInfo(
                block_id=block_id,
                size=block_meta.size,
                locations=[
                    ReplicaLocation(node=node, address=f"sim://{node}")
                    for node in sorted(nn.verified_locations(block_id))
                ],
            ))
        return FileInfo(
            path=meta.path,
            file_id=meta.file_id,
            block_size=meta.block_size,
            blocks=blocks,
        )
