"""Figure 6 — the 10-node testbed experiment.

The paper deploys HDFS, Scarlett and Aurora on a 10-node Hadoop 2.5.2
cluster and replays a SWIM-scaled Facebook workload under the YARN
capacity scheduler with ``epsilon = 0.8``.  We reproduce the setup on
the simulator (see DESIGN.md's substitution table) and regenerate:

* (a) the percentage of remote tasks per system (Aurora lowest);
* (b) the CDF of per-job speed-up over Scarlett — speed-up of a job is
  ``(T_scarlett - T_system) / T_scarlett`` (paper: Aurora averages ~15%
  over HDFS and up to 8% over Scarlett);
* (c) the CDF of block movement durations (paper: most movements finish
  within ~10 seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
    run_experiment,
)
from repro.experiments.report import cdf_series, render_cdf, render_table
from repro.workload.swim import SwimTraceConfig, generate_swim_trace, scale_down
from repro.workload.trace import WorkloadTrace

__all__ = ["Fig6Result", "testbed_cluster", "default_testbed_trace",
           "run_fig6", "render_fig6", "speedup_over"]


def testbed_cluster() -> ClusterConfig:
    """The 10-node testbed: 2 racks of 5, 4 task slots (4 vCPUs each)."""
    return ClusterConfig(
        num_racks=2, machines_per_rack=5, capacity_blocks=400,
        slots_per_machine=4,
    )


def default_testbed_trace(seed: int = 0) -> WorkloadTrace:
    """SWIM-style Facebook workload scaled from 600 to 10 nodes.

    Arrival rate and task durations are calibrated so the 40-slot
    testbed runs at the contended-but-stable utilization where placement
    matters (the paper kept its 10-node cluster busy the same way).
    """
    source = generate_swim_trace(SwimTraceConfig(
        source_cluster_nodes=600,
        num_files=60,
        jobs_per_hour=1000.0,
        duration_hours=3.0,
        mean_task_duration=120.0,
        seed=seed,
    ))
    return scale_down(source, source_nodes=600, target_nodes=10)


@dataclass
class Fig6Result:
    """One run per system, same trace and cluster."""

    hdfs: RunResult
    scarlett: RunResult
    aurora: RunResult

    def runs(self) -> Dict[str, RunResult]:
        """Results keyed by system label."""
        return {"HDFS": self.hdfs, "Scarlett": self.scarlett,
                "Aurora": self.aurora}


def speedup_over(
    baseline: RunResult, other: RunResult
) -> List[float]:
    """Per-job speed-up ratios of ``other`` relative to ``baseline``.

    Only jobs completed in both runs contribute; the ratio is the
    reduction in completion time over the baseline completion time
    (positive = faster than the baseline).
    """
    ratios = []
    for job_id, base_time in baseline.job_completions.items():
        other_time = other.job_completions.get(job_id)
        if other_time is None or base_time <= 0:
            continue
        ratios.append((base_time - other_time) / base_time)
    return ratios


def run_fig6(
    trace: Optional[WorkloadTrace] = None,
    cluster: Optional[ClusterConfig] = None,
    epsilon: float = 0.8,
    budget_extra: Optional[int] = None,
    seed: int = 0,
) -> Fig6Result:
    """Regenerate Figure 6's data points."""
    trace = trace or default_testbed_trace(seed)
    cluster = cluster or testbed_cluster()
    if budget_extra is None:
        budget_extra = trace.total_blocks  # modest testbed headroom
    common = dict(cluster=cluster, replication=3, rack_spread=2, seed=seed)
    hdfs = run_experiment(trace, ExperimentConfig(
        system=SystemKind.HDFS, epsilon=0.0, **common,
    ))
    scarlett = run_experiment(trace, ExperimentConfig(
        system=SystemKind.SCARLETT, epsilon=0.0,
        budget_extra_blocks=budget_extra, **common,
    ))
    aurora = run_experiment(trace, ExperimentConfig(
        system=SystemKind.AURORA, epsilon=epsilon,
        budget_extra_blocks=budget_extra, **common,
    ))
    return Fig6Result(hdfs=hdfs, scarlett=scarlett, aurora=aurora)


def render_fig6(result: Fig6Result) -> str:
    """Render the three panels as the paper's rows/series."""
    rows = [
        (name, run.remote_fraction * 100, run.jobs_completed)
        for name, run in result.runs().items()
    ]
    lines = ["Figure 6(a): percentage of remote tasks"]
    lines.append(render_table(["system", "remote %", "jobs done"], rows))
    lines.append("")
    lines.append("Figure 6(b): job speed-up over Scarlett (CDF)")
    for name, run in (("Aurora", result.aurora), ("HDFS", result.hdfs)):
        ratios = speedup_over(result.scarlett, run)
        series = cdf_series(ratios, points=6)
        rows_b = [(name, f"{v:+.3f}", f"{p:.2f}") for v, p in series]
        lines.append(render_table(["series", "speed-up", "P(X<=x)"], rows_b))
    lines.append("")
    lines.append(render_cdf(
        "Figure 6(c): Aurora block movement durations (seconds)",
        result.aurora.movement_durations,
        points=6,
    ))
    moves_per_hour = (
        result.aurora.moves_completed / max(result.aurora.horizon_hours, 1e-9)
    )
    reps_per_hour = (
        result.aurora.replications_completed
        / max(result.aurora.horizon_hours, 1e-9)
    )
    lines.append("")
    lines.append(
        f"Aurora replication rate: {reps_per_hour:.1f} blocks/hour "
        f"(paper: 96); migrations: {moves_per_hour:.1f} blocks/hour "
        "(paper: 10)"
    )
    return "\n".join(lines)
