"""CSV export of figure results for external plotting.

The rendered ASCII tables are for eyeballing; these writers emit the
same series as plain CSV so the figures can be re-plotted with any
tool.  One file per panel, mirroring the paper's layout:

* ``fig3a.csv`` / ``fig4a.csv`` — system, epsilon, remote tasks/h;
* ``fig3b.csv`` / ... — machine-load CDF series;
* ``fig3c.csv`` — epsilon vs moves/machine/h;
* ``fig5*.csv`` — same panels against Scarlett;
* ``fig6a.csv`` / ``fig6b.csv`` / ``fig6c.csv`` — testbed panels.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result, speedup_over
from repro.experiments.report import cdf_series

__all__ = ["export_fig3", "export_fig5", "export_fig6"]

_PathLike = Union[str, Path]


def _write_csv(path: Path, header, rows) -> None:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_fig3(
    result: Fig3Result, directory: _PathLike, prefix: str = "fig3"
) -> None:
    """Write the three panels of a Figure 3/4-style result as CSV."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rows_a = [("hdfs", "", result.baseline.remote_tasks_per_hour,
               result.baseline.remote_fraction)]
    rows_a += [
        ("aurora", eps, run.remote_tasks_per_hour, run.remote_fraction)
        for eps, run in sorted(result.aurora.items())
    ]
    _write_csv(
        directory / f"{prefix}a.csv",
        ("system", "epsilon", "remote_tasks_per_hour", "remote_fraction"),
        rows_a,
    )
    rows_b = []
    for value, prob in cdf_series(result.baseline.machine_task_loads, 50):
        rows_b.append(("hdfs", "", value, prob))
    for eps, run in sorted(result.aurora.items()):
        for value, prob in cdf_series(run.machine_task_loads, 50):
            rows_b.append(("aurora", eps, value, prob))
    _write_csv(
        directory / f"{prefix}b.csv",
        ("system", "epsilon", "machine_load", "cdf"),
        rows_b,
    )
    rows_c = [
        (eps, run.moves_per_machine_per_hour)
        for eps, run in sorted(result.aurora.items())
    ]
    _write_csv(
        directory / f"{prefix}c.csv",
        ("epsilon", "moves_per_machine_per_hour"),
        rows_c,
    )


def export_fig5(result: Fig5Result, directory: _PathLike) -> None:
    """Write Figure 5's panels as CSV."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rows_a = [("scarlett", "", result.scarlett.remote_tasks_per_hour,
               result.scarlett.remote_fraction)]
    rows_a += [
        ("aurora", eps, run.remote_tasks_per_hour, run.remote_fraction)
        for eps, run in sorted(result.aurora.items())
    ]
    _write_csv(
        directory / "fig5a.csv",
        ("system", "epsilon", "remote_tasks_per_hour", "remote_fraction"),
        rows_a,
    )
    rows_b = []
    for value, prob in cdf_series(result.scarlett.machine_task_loads, 50):
        rows_b.append(("scarlett", "", value, prob))
    for eps, run in sorted(result.aurora.items()):
        for value, prob in cdf_series(run.machine_task_loads, 50):
            rows_b.append(("aurora", eps, value, prob))
    _write_csv(
        directory / "fig5b.csv",
        ("system", "epsilon", "machine_load", "cdf"),
        rows_b,
    )
    rows_c = [
        (eps, run.data_movement_per_machine_per_hour)
        for eps, run in sorted(result.aurora.items())
    ]
    _write_csv(
        directory / "fig5c.csv",
        ("epsilon", "movement_per_machine_per_hour"),
        rows_c,
    )


def export_fig6(result: Fig6Result, directory: _PathLike) -> None:
    """Write Figure 6's panels as CSV."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _write_csv(
        directory / "fig6a.csv",
        ("system", "remote_fraction", "jobs_completed"),
        [
            (name, run.remote_fraction, run.jobs_completed)
            for name, run in result.runs().items()
        ],
    )
    rows_b = []
    for name, run in (("aurora", result.aurora), ("hdfs", result.hdfs)):
        for value, prob in cdf_series(
                speedup_over(result.scarlett, run), 50):
            rows_b.append((name, value, prob))
    _write_csv(
        directory / "fig6b.csv",
        ("system", "speedup_over_scarlett", "cdf"),
        rows_b,
    )
    rows_c = [
        (value, prob)
        for value, prob in cdf_series(result.aurora.movement_durations, 50)
    ]
    _write_csv(
        directory / "fig6c.csv", ("movement_duration_s", "cdf"), rows_c,
    )
