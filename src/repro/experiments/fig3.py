"""Figure 3 — Case 1: fixed factors, node-level fault tolerance only.

Compares default-HDFS random placement against Aurora's load balancing
(no dynamic replication, ``rho = 1``) across epsilon values, reporting:

* (a) average number of remote tasks per hour;
* (b) the CDF of machine load (tasks executed per machine);
* (c) block movements per machine per hour.

The paper's headline for this case: Aurora reduces remote tasks by up to
12.5% at ``epsilon = 0.1``, with movement overhead falling (and the
locality gain shrinking) as epsilon grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
)
from repro.experiments.report import cdf_series, render_table
from repro.experiments.runner import TrialCase, run_trials
from repro.workload.trace import WorkloadTrace
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace

__all__ = ["Fig3Result", "DEFAULT_EPSILONS", "default_trace", "run_fig3",
           "render_fig3"]

DEFAULT_EPSILONS: Tuple[float, ...] = (0.1, 0.3, 0.6, 0.7, 0.8, 0.9)


def default_trace(seed: int = 0, duration_hours: float = 3.0) -> WorkloadTrace:
    """The Yahoo!-like workload used for Figures 3-5 (scaled down).

    Calibrated against the default :class:`ClusterConfig` to run the
    cluster at roughly 50-70% slot utilization, where hot machines
    saturate while the cluster keeps slack — the regime in which block
    placement determines locality.
    """
    return generate_yahoo_trace(
        YahooTraceConfig(
            num_files=120,
            jobs_per_hour=550.0,
            duration_hours=duration_hours,
            mean_task_duration=90.0,
            seed=seed,
        )
    )


@dataclass
class Fig3Result:
    """Baseline run plus one Aurora run per epsilon."""

    baseline: RunResult
    aurora: Dict[float, RunResult] = field(default_factory=dict)

    def best_reduction(self) -> float:
        """Largest relative reduction of remote tasks vs the baseline."""
        base = self.baseline.remote_tasks_per_hour
        if base == 0:
            return 0.0
        best = min(
            run.remote_tasks_per_hour for run in self.aurora.values()
        )
        return (base - best) / base


def _case_config(
    system: SystemKind,
    epsilon: float,
    cluster: ClusterConfig,
    seed: int,
) -> ExperimentConfig:
    return ExperimentConfig(
        system=system,
        cluster=cluster,
        replication=3,
        rack_spread=1,  # Case 1: no rack-level requirement
        epsilon=epsilon,
        seed=seed,
    )


def run_fig3(
    trace: Optional[WorkloadTrace] = None,
    cluster: Optional[ClusterConfig] = None,
    epsilons: Tuple[float, ...] = DEFAULT_EPSILONS,
    seed: int = 0,
    jobs: int = 1,
) -> Fig3Result:
    """Regenerate Figure 3's data points.

    ``jobs`` fans the independent cases (HDFS baseline plus one Aurora
    run per epsilon) out to that many worker processes; results are
    identical to the sequential default.
    """
    trace = trace or default_trace(seed)
    cluster = cluster or ClusterConfig()
    cases = [TrialCase(
        label="baseline",
        trace=trace,
        config=_case_config(SystemKind.HDFS, 0.0, cluster, seed),
    )]
    for epsilon in epsilons:
        cases.append(TrialCase(
            label=f"eps={epsilon}",
            trace=trace,
            config=_case_config(SystemKind.AURORA, epsilon, cluster, seed),
        ))
    runs = run_trials(cases, jobs=jobs)
    result = Fig3Result(baseline=runs[0])
    for epsilon, run in zip(epsilons, runs[1:]):
        result.aurora[epsilon] = run
    return result


def render_fig3(result: Fig3Result, label: str = "Figure 3") -> str:
    """Render the three panels as the paper's rows/series."""
    rows = [(
        "HDFS",
        result.baseline.remote_tasks_per_hour,
        result.baseline.remote_fraction * 100,
        result.baseline.moves_per_machine_per_hour,
    )]
    for epsilon, run in sorted(result.aurora.items()):
        rows.append((
            f"Aurora eps={epsilon}",
            run.remote_tasks_per_hour,
            run.remote_fraction * 100,
            run.moves_per_machine_per_hour,
        ))
    panel_a = render_table(
        ["system", "remote tasks/h", "remote %", "moves/machine/h"], rows
    )
    lines = [f"{label}(a,c): remote tasks and movement overhead", panel_a, ""]
    lines.append(f"{label}(b): machine load CDF (tasks per machine)")
    cdf_rows = []
    baseline_cdf = cdf_series(result.baseline.machine_task_loads, points=5)
    for value, prob in baseline_cdf:
        cdf_rows.append(("HDFS", value, prob))
    for epsilon, run in sorted(result.aurora.items()):
        for value, prob in cdf_series(run.machine_task_loads, points=5):
            cdf_rows.append((f"eps={epsilon}", value, prob))
    lines.append(render_table(["series", "load", "P(X<=x)"], cdf_rows))
    lines.append("")
    lines.append(
        "max remote-task reduction vs HDFS: "
        f"{result.best_reduction() * 100:.1f}%"
    )
    return "\n".join(lines)
