"""Cluster-scale study: does Aurora's advantage grow with cluster size?

Section VI.B conjectures: "We believe this gain will be higher if larger
clusters are used, as data locality tends to decrease as the number of
machines increases."  This experiment tests that claim directly: the
same workload intensity per machine is replayed on clusters of
increasing size, and the locality gap between stock HDFS and Aurora is
measured at each scale.

The module also hosts the *solver* scale study
(:func:`run_solver_scale_study`): the incremental local-search engine
(:mod:`repro.core.local_search`) timed against the naive reference
transcription (:mod:`repro.core.reference`) on growing instances, with
an equality check on the results.  ``benchmarks/test_search_scale.py``
runs the same sweep under the ``perf`` marker.
"""

from __future__ import annotations

import random
import resource
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.columnar import columnar_from_state
from repro.core.instance import PlacementProblem
from repro.core.local_search import balance_rack_aware
from repro.core.partition import balance_rack_aware_partitioned
from repro.core.placement import PlacementState
from repro.core.reference import reference_balance_rack_aware
from repro.experiments.ablation import _random_state, make_instance
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
)
from repro.experiments.report import render_table
from repro.experiments.runner import TrialCase, run_trials
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace

__all__ = [
    "ScalePoint",
    "run_scale_study",
    "render_scale_study",
    "SolverScalePoint",
    "run_solver_scale_study",
    "render_solver_scale_study",
    "ColumnarScalePoint",
    "fast_random_assignment",
    "run_columnar_scale_study",
    "render_columnar_scale_study",
]


@dataclass(frozen=True)
class ScalePoint:
    """One cluster size's HDFS-vs-Aurora comparison."""

    num_machines: int
    hdfs: RunResult
    aurora: RunResult

    @property
    def hdfs_remote_fraction(self) -> float:
        """Stock HDFS's remote-task fraction at this scale."""
        return self.hdfs.remote_fraction

    @property
    def gain(self) -> float:
        """Absolute locality gain of Aurora over HDFS."""
        return self.hdfs.remote_fraction - self.aurora.remote_fraction


def run_scale_study(
    machines_per_rack_options: Tuple[int, ...] = (3, 5, 8),
    num_racks: int = 13,
    jobs_per_machine_hour: float = 8.5,
    duration_hours: float = 2.0,
    epsilon: float = 0.1,
    seed: int = 0,
    jobs: int = 1,
) -> List[ScalePoint]:
    """Sweep cluster sizes at constant per-machine workload intensity.

    The job arrival rate scales with the machine count so utilization is
    comparable at every point; only the cluster size (and hence the
    replica dilution random placement suffers) varies.  ``jobs`` fans
    the independent (size, system) cases out to worker processes.
    """
    cases: List[TrialCase] = []
    sizes: List[int] = []
    for per_rack in machines_per_rack_options:
        cluster = ClusterConfig(
            num_racks=num_racks,
            machines_per_rack=per_rack,
            capacity_blocks=200,
            slots_per_machine=4,
        )
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=max(40, 2 * cluster.num_machines),
            jobs_per_hour=jobs_per_machine_hour * cluster.num_machines,
            duration_hours=duration_hours,
            mean_task_duration=90.0,
            seed=seed,
        ))
        sizes.append(cluster.num_machines)
        for kind in (SystemKind.HDFS, SystemKind.AURORA):
            cases.append(TrialCase(
                label=f"{kind.value}@{cluster.num_machines}",
                trace=trace,
                config=ExperimentConfig(
                    system=kind,
                    cluster=cluster,
                    rack_spread=2,
                    epsilon=epsilon,
                    seed=seed,
                ),
            ))
    runs = run_trials(cases, jobs=jobs)
    points: List[ScalePoint] = []
    for index, num_machines in enumerate(sizes):
        points.append(ScalePoint(
            num_machines=num_machines,
            hdfs=runs[2 * index],
            aurora=runs[2 * index + 1],
        ))
    return points


def render_scale_study(points: List[ScalePoint]) -> str:
    """Table: machines vs HDFS/Aurora remote fractions and gain."""
    rows = [
        (
            point.num_machines,
            point.hdfs.remote_fraction * 100,
            point.aurora.remote_fraction * 100,
            point.gain * 100,
        )
        for point in points
    ]
    table = render_table(
        ["machines", "HDFS remote %", "Aurora remote %", "gain (pp)"], rows
    )
    claim = (
        "paper's conjecture: the gain grows with cluster size — "
        + ("CONFIRMED" if all(
            later.gain >= earlier.gain - 0.01
            for earlier, later in zip(points, points[1:])
        ) else "NOT CONFIRMED at this scale")
    )
    return f"Scale study (E14)\n{table}\n{claim}"


@dataclass(frozen=True)
class SolverScalePoint:
    """Incremental vs reference solver timings on one instance size."""

    num_machines: int
    num_blocks: int
    operations: int
    reference_seconds: float
    incremental_seconds: float
    pairs_probed: int
    pairs_pruned: int
    results_match: bool

    @property
    def speedup(self) -> float:
        """Reference wall-clock divided by incremental wall-clock."""
        if self.incremental_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.incremental_seconds


def run_solver_scale_study(
    sizes: Tuple[Tuple[int, int, int], ...] = (
        (3, 4, 160),
        (8, 8, 1600),
        (12, 12, 4000),
    ),
    replication: int = 3,
    rack_spread: int = 2,
    seed: int = 0,
) -> List[SolverScalePoint]:
    """Time rack-aware balancing, incremental engine vs naive reference.

    Each ``(num_racks, machines_per_rack, num_blocks)`` size gets a
    Zipf-popular instance with an HDFS-style random initial placement —
    the worst case the controller faces — balanced to convergence by both
    solvers from identical copies.  ``results_match`` records whether
    final cost *and* final placement agree, so a reported speedup can
    never hide a divergence.
    """
    points: List[SolverScalePoint] = []
    for num_racks, per_rack, num_blocks in sizes:
        instance = make_instance(
            num_racks=num_racks,
            machines_per_rack=per_rack,
            num_blocks=num_blocks,
            replication=replication,
            rack_spread=rack_spread,
            seed=seed,
        )
        problem = instance.problem()
        reference_state = _random_state(problem, seed)
        incremental_state = reference_state.copy()
        reference_stats = reference_balance_rack_aware(reference_state)
        incremental_stats = balance_rack_aware(incremental_state)
        matches = (
            reference_stats.final_cost == incremental_stats.final_cost
            and reference_state.to_assignment()
            == incremental_state.to_assignment()
        )
        points.append(SolverScalePoint(
            num_machines=problem.topology.num_machines,
            num_blocks=num_blocks,
            operations=incremental_stats.total_operations,
            reference_seconds=reference_stats.elapsed_seconds,
            incremental_seconds=incremental_stats.elapsed_seconds,
            pairs_probed=incremental_stats.pairs_probed,
            pairs_pruned=incremental_stats.pairs_pruned,
            results_match=matches,
        ))
    return points


def render_solver_scale_study(points: List[SolverScalePoint]) -> str:
    """Table: instance size vs solver wall-clock and speedup."""
    rows = [
        (
            point.num_machines,
            point.num_blocks,
            point.operations,
            f"{point.reference_seconds:.3f}",
            f"{point.incremental_seconds:.3f}",
            f"{point.speedup:.1f}x",
            point.pairs_pruned,
            "yes" if point.results_match else "NO",
        )
        for point in points
    ]
    table = render_table(
        [
            "machines", "blocks", "ops", "reference s",
            "incremental s", "speedup", "pruned", "match",
        ],
        rows,
    )
    return f"Solver scale study (incremental engine vs reference)\n{table}"


def fast_random_assignment(
    problem: PlacementProblem, seed: int
) -> Dict[int, set]:
    """Seeded HDFS-style random placement in ``O(B * r)`` time.

    :func:`repro.experiments.ablation._random_state` samples machines by
    scanning feasibility lists per replica, which is ``O(B * M)`` and
    unusable at 10k machines x 100k blocks.  This builder picks
    ``rack_spread`` distinct racks per block, one holder in each, then
    rejection-samples the remaining replicas cluster-wide — the same
    placement *family* (random, spread-respecting), a different stream.
    """
    rng = random.Random(seed)
    topology = problem.topology
    used = [0] * topology.num_machines
    capacities = topology.capacities
    racks = list(topology.racks)
    assignment: Dict[int, set] = {}
    for spec in problem:
        chosen_racks = rng.sample(racks, spec.rack_spread)
        holders: set = set()
        for rack in chosen_racks:
            members = topology.machines_in_rack(rack)
            while True:
                machine = members[rng.randrange(len(members))]
                if machine not in holders and used[machine] < capacities[machine]:
                    holders.add(machine)
                    used[machine] += 1
                    break
        while len(holders) < spec.replication_factor:
            machine = rng.randrange(topology.num_machines)
            if machine not in holders and used[machine] < capacities[machine]:
                holders.add(machine)
                used[machine] += 1
        assignment[spec.block_id] = holders
    return assignment


@dataclass(frozen=True)
class ColumnarScalePoint:
    """Columnar vs incremental (dict/heap) engine timings at one size.

    Both engines run the same Algorithm 2 search under the same
    ``max_operations`` budget, so they apply the *identical* operation
    sequence (``operations_identical`` verifies it op-for-op) — the
    timing difference is pure engine overhead, not different work.  The
    partitioned columns report the rack-partitioned solver on the same
    instance: ``partitioned_seconds`` is single-host wall-clock and
    ``partitioned_critical_seconds`` the critical path an unloaded host
    with one core per partition would see (extract + slowest sub-solve
    + merge + polish).
    """

    num_machines: int
    num_racks: int
    num_blocks: int
    max_operations: Optional[int]
    operations: int
    incremental_seconds: float
    columnar_seconds: float
    operations_identical: bool
    incremental_cost: float
    columnar_cost: float
    partitioned_seconds: float
    partitioned_critical_seconds: float
    partitioned_cost: float
    partitioned_operations: int
    merge_conflicts: int
    incremental_state_bytes: int
    columnar_state_bytes: int
    peak_rss_bytes: int

    @property
    def speedup(self) -> float:
        """Incremental wall-clock divided by columnar wall-clock."""
        if self.columnar_seconds <= 0.0:
            return float("inf")
        return self.incremental_seconds / self.columnar_seconds

    @property
    def partitioned_cost_ratio(self) -> float:
        """Partitioned final cost relative to the columnar engine's."""
        if self.columnar_cost <= 0.0:
            return 1.0
        return self.partitioned_cost / self.columnar_cost

    @property
    def healthy(self) -> bool:
        """Differential parity held and the partitioned quality epsilon.

        The engines must have applied identical operations.  The
        partitioned solver's final cost must be within 5% of the
        columnar engine's at convergence (its sub-solves see projected
        sub-problems, so exact equality is not expected — see
        ``docs/performance.md``); under an operation budget the bound
        loosens to 25%, because a budgeted partitioned run spends its
        operations across all partitions while the global engine's
        budget all goes to the current global maximum.
        """
        if not self.operations_identical:
            return False
        epsilon = 1.05 if self.max_operations is None else 1.25
        return self.partitioned_cost_ratio <= epsilon


def run_columnar_scale_study(
    sizes: Tuple[Tuple[int, int, int, Optional[int]], ...] = (
        (16, 16, 4000, None),
        (64, 16, 16000, 2000),
        (625, 16, 100000, 8000),
    ),
    replication: int = 3,
    rack_spread: int = 2,
    seed: int = 0,
    num_partitions: int = 4,
    jobs: int = 1,
) -> List[ColumnarScalePoint]:
    """Time the columnar engine against the dict/heap incremental engine.

    Each ``(num_racks, machines_per_rack, num_blocks, max_operations)``
    size gets a Zipf-popular instance with a fast seeded random initial
    placement.  A ``None`` budget runs both engines to convergence;
    a capped budget bounds the run at sizes where convergence takes
    minutes (both engines still do identical work — the same first N
    operations of the same search).  The rack-partitioned solver runs
    third, from the same starting placement, with the same budget.
    """
    points: List[ColumnarScalePoint] = []
    for num_racks, per_rack, num_blocks, budget in sizes:
        instance = make_instance(
            num_racks=num_racks,
            machines_per_rack=per_rack,
            num_blocks=num_blocks,
            replication=replication,
            rack_spread=rack_spread,
            seed=seed,
        )
        problem = instance.problem()
        base = PlacementState.from_assignment(
            problem, fast_random_assignment(problem, seed)
        )
        incremental_state = base.copy()
        columnar_state = columnar_from_state(base)
        partitioned_state = columnar_from_state(base)
        incremental_stats = balance_rack_aware(
            incremental_state, max_operations=budget, log_operations=True
        )
        columnar_stats = balance_rack_aware(
            columnar_state, max_operations=budget, log_operations=True
        )
        identical = (
            incremental_stats.operations == columnar_stats.operations
            and incremental_stats.final_cost == columnar_stats.final_cost
            and incremental_state.to_assignment()
            == columnar_state.to_assignment()
        )
        partitioned_stats = balance_rack_aware_partitioned(
            partitioned_state,
            num_partitions=num_partitions,
            jobs=jobs,
            max_operations=budget,
        )
        critical = (
            partitioned_stats.extract_seconds
            + max(partitioned_stats.partition_seconds, default=0.0)
            + partitioned_stats.merge_seconds
            + partitioned_stats.polish_seconds
        )
        points.append(ColumnarScalePoint(
            num_machines=problem.topology.num_machines,
            num_racks=num_racks,
            num_blocks=num_blocks,
            max_operations=budget,
            operations=columnar_stats.total_operations,
            incremental_seconds=incremental_stats.elapsed_seconds,
            columnar_seconds=columnar_stats.elapsed_seconds,
            operations_identical=identical,
            incremental_cost=incremental_stats.final_cost,
            columnar_cost=columnar_stats.final_cost,
            partitioned_seconds=partitioned_stats.search.elapsed_seconds,
            partitioned_critical_seconds=critical,
            partitioned_cost=partitioned_stats.search.final_cost,
            partitioned_operations=partitioned_stats.search.total_operations,
            merge_conflicts=partitioned_stats.merge_conflicts,
            incremental_state_bytes=incremental_state.state_bytes(),
            columnar_state_bytes=columnar_state.state_bytes(),
            peak_rss_bytes=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            * 1024,
        ))
    return points


def render_columnar_scale_study(points: List[ColumnarScalePoint]) -> str:
    """Table: instance size vs engine wall-clock, speedup, and memory."""
    rows = [
        (
            point.num_machines,
            point.num_blocks,
            "conv" if point.max_operations is None
            else str(point.max_operations),
            point.operations,
            f"{point.incremental_seconds:.3f}",
            f"{point.columnar_seconds:.3f}",
            f"{point.speedup:.2f}x",
            f"{point.partitioned_seconds:.3f}",
            f"{point.partitioned_critical_seconds:.3f}",
            f"{point.partitioned_cost_ratio:.4f}",
            f"{point.columnar_state_bytes / 1e6:.1f}",
            "yes" if point.operations_identical else "NO",
        )
        for point in points
    ]
    table = render_table(
        [
            "machines", "blocks", "budget", "ops", "dict/heap s",
            "columnar s", "speedup", "partitioned s", "critical s",
            "part cost x", "state MB", "identical",
        ],
        rows,
    )
    peak = max((point.peak_rss_bytes for point in points), default=0)
    lines = [
        "Columnar engine scale study (vs dict/heap incremental engine)",
        table,
        f"peak RSS: {peak / 1e6:.0f} MB",
        "budget=conv runs both engines to convergence; a capped budget "
        "applies the identical first-N operations in both engines.",
        "'part cost x' is the partitioned solver's final cost relative "
        "to the columnar engine's on the same budget (healthy: <= 1.05 "
        "at convergence, <= 1.25 budgeted).",
    ]
    return "\n".join(lines)
