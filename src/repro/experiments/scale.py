"""Cluster-scale study: does Aurora's advantage grow with cluster size?

Section VI.B conjectures: "We believe this gain will be higher if larger
clusters are used, as data locality tends to decrease as the number of
machines increases."  This experiment tests that claim directly: the
same workload intensity per machine is replayed on clusters of
increasing size, and the locality gap between stock HDFS and Aurora is
measured at each scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
    run_experiment,
)
from repro.experiments.report import render_table
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace

__all__ = ["ScalePoint", "run_scale_study", "render_scale_study"]


@dataclass(frozen=True)
class ScalePoint:
    """One cluster size's HDFS-vs-Aurora comparison."""

    num_machines: int
    hdfs: RunResult
    aurora: RunResult

    @property
    def hdfs_remote_fraction(self) -> float:
        """Stock HDFS's remote-task fraction at this scale."""
        return self.hdfs.remote_fraction

    @property
    def gain(self) -> float:
        """Absolute locality gain of Aurora over HDFS."""
        return self.hdfs.remote_fraction - self.aurora.remote_fraction


def run_scale_study(
    machines_per_rack_options: Tuple[int, ...] = (3, 5, 8),
    num_racks: int = 13,
    jobs_per_machine_hour: float = 8.5,
    duration_hours: float = 2.0,
    epsilon: float = 0.1,
    seed: int = 0,
) -> List[ScalePoint]:
    """Sweep cluster sizes at constant per-machine workload intensity.

    The job arrival rate scales with the machine count so utilization is
    comparable at every point; only the cluster size (and hence the
    replica dilution random placement suffers) varies.
    """
    points: List[ScalePoint] = []
    for per_rack in machines_per_rack_options:
        cluster = ClusterConfig(
            num_racks=num_racks,
            machines_per_rack=per_rack,
            capacity_blocks=200,
            slots_per_machine=4,
        )
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=max(40, 2 * cluster.num_machines),
            jobs_per_hour=jobs_per_machine_hour * cluster.num_machines,
            duration_hours=duration_hours,
            mean_task_duration=90.0,
            seed=seed,
        ))
        runs: Dict[SystemKind, RunResult] = {}
        for kind in (SystemKind.HDFS, SystemKind.AURORA):
            runs[kind] = run_experiment(trace, ExperimentConfig(
                system=kind,
                cluster=cluster,
                rack_spread=2,
                epsilon=epsilon,
                seed=seed,
            ))
        points.append(ScalePoint(
            num_machines=cluster.num_machines,
            hdfs=runs[SystemKind.HDFS],
            aurora=runs[SystemKind.AURORA],
        ))
    return points


def render_scale_study(points: List[ScalePoint]) -> str:
    """Table: machines vs HDFS/Aurora remote fractions and gain."""
    rows = [
        (
            point.num_machines,
            point.hdfs.remote_fraction * 100,
            point.aurora.remote_fraction * 100,
            point.gain * 100,
        )
        for point in points
    ]
    table = render_table(
        ["machines", "HDFS remote %", "Aurora remote %", "gain (pp)"], rows
    )
    claim = (
        "paper's conjecture: the gain grows with cluster size — "
        + ("CONFIRMED" if all(
            later.gain >= earlier.gain - 0.01
            for earlier, later in zip(points, points[1:])
        ) else "NOT CONFIRMED at this scale")
    )
    return f"Scale study (E14)\n{table}\n{claim}"
