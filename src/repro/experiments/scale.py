"""Cluster-scale study: does Aurora's advantage grow with cluster size?

Section VI.B conjectures: "We believe this gain will be higher if larger
clusters are used, as data locality tends to decrease as the number of
machines increases."  This experiment tests that claim directly: the
same workload intensity per machine is replayed on clusters of
increasing size, and the locality gap between stock HDFS and Aurora is
measured at each scale.

The module also hosts the *solver* scale study
(:func:`run_solver_scale_study`): the incremental local-search engine
(:mod:`repro.core.local_search`) timed against the naive reference
transcription (:mod:`repro.core.reference`) on growing instances, with
an equality check on the results.  ``benchmarks/test_search_scale.py``
runs the same sweep under the ``perf`` marker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.local_search import balance_rack_aware
from repro.core.reference import reference_balance_rack_aware
from repro.experiments.ablation import _random_state, make_instance
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
)
from repro.experiments.report import render_table
from repro.experiments.runner import TrialCase, run_trials
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace

__all__ = [
    "ScalePoint",
    "run_scale_study",
    "render_scale_study",
    "SolverScalePoint",
    "run_solver_scale_study",
    "render_solver_scale_study",
]


@dataclass(frozen=True)
class ScalePoint:
    """One cluster size's HDFS-vs-Aurora comparison."""

    num_machines: int
    hdfs: RunResult
    aurora: RunResult

    @property
    def hdfs_remote_fraction(self) -> float:
        """Stock HDFS's remote-task fraction at this scale."""
        return self.hdfs.remote_fraction

    @property
    def gain(self) -> float:
        """Absolute locality gain of Aurora over HDFS."""
        return self.hdfs.remote_fraction - self.aurora.remote_fraction


def run_scale_study(
    machines_per_rack_options: Tuple[int, ...] = (3, 5, 8),
    num_racks: int = 13,
    jobs_per_machine_hour: float = 8.5,
    duration_hours: float = 2.0,
    epsilon: float = 0.1,
    seed: int = 0,
    jobs: int = 1,
) -> List[ScalePoint]:
    """Sweep cluster sizes at constant per-machine workload intensity.

    The job arrival rate scales with the machine count so utilization is
    comparable at every point; only the cluster size (and hence the
    replica dilution random placement suffers) varies.  ``jobs`` fans
    the independent (size, system) cases out to worker processes.
    """
    cases: List[TrialCase] = []
    sizes: List[int] = []
    for per_rack in machines_per_rack_options:
        cluster = ClusterConfig(
            num_racks=num_racks,
            machines_per_rack=per_rack,
            capacity_blocks=200,
            slots_per_machine=4,
        )
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=max(40, 2 * cluster.num_machines),
            jobs_per_hour=jobs_per_machine_hour * cluster.num_machines,
            duration_hours=duration_hours,
            mean_task_duration=90.0,
            seed=seed,
        ))
        sizes.append(cluster.num_machines)
        for kind in (SystemKind.HDFS, SystemKind.AURORA):
            cases.append(TrialCase(
                label=f"{kind.value}@{cluster.num_machines}",
                trace=trace,
                config=ExperimentConfig(
                    system=kind,
                    cluster=cluster,
                    rack_spread=2,
                    epsilon=epsilon,
                    seed=seed,
                ),
            ))
    runs = run_trials(cases, jobs=jobs)
    points: List[ScalePoint] = []
    for index, num_machines in enumerate(sizes):
        points.append(ScalePoint(
            num_machines=num_machines,
            hdfs=runs[2 * index],
            aurora=runs[2 * index + 1],
        ))
    return points


def render_scale_study(points: List[ScalePoint]) -> str:
    """Table: machines vs HDFS/Aurora remote fractions and gain."""
    rows = [
        (
            point.num_machines,
            point.hdfs.remote_fraction * 100,
            point.aurora.remote_fraction * 100,
            point.gain * 100,
        )
        for point in points
    ]
    table = render_table(
        ["machines", "HDFS remote %", "Aurora remote %", "gain (pp)"], rows
    )
    claim = (
        "paper's conjecture: the gain grows with cluster size — "
        + ("CONFIRMED" if all(
            later.gain >= earlier.gain - 0.01
            for earlier, later in zip(points, points[1:])
        ) else "NOT CONFIRMED at this scale")
    )
    return f"Scale study (E14)\n{table}\n{claim}"


@dataclass(frozen=True)
class SolverScalePoint:
    """Incremental vs reference solver timings on one instance size."""

    num_machines: int
    num_blocks: int
    operations: int
    reference_seconds: float
    incremental_seconds: float
    pairs_probed: int
    pairs_pruned: int
    results_match: bool

    @property
    def speedup(self) -> float:
        """Reference wall-clock divided by incremental wall-clock."""
        if self.incremental_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.incremental_seconds


def run_solver_scale_study(
    sizes: Tuple[Tuple[int, int, int], ...] = (
        (3, 4, 160),
        (8, 8, 1600),
        (12, 12, 4000),
    ),
    replication: int = 3,
    rack_spread: int = 2,
    seed: int = 0,
) -> List[SolverScalePoint]:
    """Time rack-aware balancing, incremental engine vs naive reference.

    Each ``(num_racks, machines_per_rack, num_blocks)`` size gets a
    Zipf-popular instance with an HDFS-style random initial placement —
    the worst case the controller faces — balanced to convergence by both
    solvers from identical copies.  ``results_match`` records whether
    final cost *and* final placement agree, so a reported speedup can
    never hide a divergence.
    """
    points: List[SolverScalePoint] = []
    for num_racks, per_rack, num_blocks in sizes:
        instance = make_instance(
            num_racks=num_racks,
            machines_per_rack=per_rack,
            num_blocks=num_blocks,
            replication=replication,
            rack_spread=rack_spread,
            seed=seed,
        )
        problem = instance.problem()
        reference_state = _random_state(problem, seed)
        incremental_state = reference_state.copy()
        reference_stats = reference_balance_rack_aware(reference_state)
        incremental_stats = balance_rack_aware(incremental_state)
        matches = (
            reference_stats.final_cost == incremental_stats.final_cost
            and reference_state.to_assignment()
            == incremental_state.to_assignment()
        )
        points.append(SolverScalePoint(
            num_machines=problem.topology.num_machines,
            num_blocks=num_blocks,
            operations=incremental_stats.total_operations,
            reference_seconds=reference_stats.elapsed_seconds,
            incremental_seconds=incremental_stats.elapsed_seconds,
            pairs_probed=incremental_stats.pairs_probed,
            pairs_pruned=incremental_stats.pairs_pruned,
            results_match=matches,
        ))
    return points


def render_solver_scale_study(points: List[SolverScalePoint]) -> str:
    """Table: instance size vs solver wall-clock and speedup."""
    rows = [
        (
            point.num_machines,
            point.num_blocks,
            point.operations,
            f"{point.reference_seconds:.3f}",
            f"{point.incremental_seconds:.3f}",
            f"{point.speedup:.1f}x",
            point.pairs_pruned,
            "yes" if point.results_match else "NO",
        )
        for point in points
    ]
    table = render_table(
        [
            "machines", "blocks", "ops", "reference s",
            "incremental s", "speedup", "pruned", "match",
        ],
        rows,
    )
    return f"Solver scale study (incremental engine vs reference)\n{table}"
