"""Overload storm: offered load beyond capacity, with and without armour.

Drives a popularity-skewed read workload at a configurable multiple of
the cluster's aggregate service capacity and measures what graceful
degradation buys.  The same storm runs in two modes:

* **protected** — bounded per-datanode service queues with a shed
  policy, per-node circuit breakers and hedged reads in the client,
  token-bucket admission control over background traffic, and Aurora
  brownout mode (raised epsilon, deferred migrations);
* **unprotected** — the same cluster and workload with effectively
  unbounded queues and none of the protections: every request is
  admitted and waits, so the backlog (and the tail latency) grows
  without bound past saturation.

Availability here is *SLO attainment*: the fraction of reads that
completed within ``slo_latency`` (queueing plus failover backoff).  An
unprotected cluster "serves" every read eventually, which is
operationally indistinguishable from failure once waits reach minutes —
bounding the queue converts unbounded latency into explicit, fast
sheds that failover and hedging can route around.

A deterministic mid-storm crash/recover cycle generates re-replication
traffic so the admission gate has background work to hold back, and an
Aurora optimizer runs on a short period so brownout decisions land
inside the horizon.  The run ends with a drain phase and an fsck pass:
overload protection must never corrupt placement metadata.
"""

from __future__ import annotations

import dataclasses
import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.fsck import FsckReport, run_fsck
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import DatanodeUnavailableError, InvalidProblemError
from repro.obs.slo import availability_slo, latency_slo, threshold_slo
from repro.obs.telemetry import TelemetrySession
from repro.overload import (
    OverloadConfig,
    ShedPolicy,
    install_overload_protection,
)
from repro.simulation.engine import Simulation

__all__ = [
    "OverloadStormConfig",
    "OverloadStormResult",
    "run_overload",
    "run_overload_pair",
    "render_overload",
    "render_overload_pair",
    "default_overload_slos",
]

_LOG = logging.getLogger(__name__)

# Queue bound used by the unprotected baseline: large enough that no
# request is ever shed, so all overload turns into waiting.
_UNBOUNDED = 1_000_000


@dataclass(frozen=True)
class OverloadStormConfig:
    """One overload storm: cluster, workload skew, and protections."""

    num_racks: int = 4
    machines_per_rack: int = 4
    capacity_blocks: int = 200
    num_files: int = 10
    blocks_per_file: int = 4
    block_size: int = 64 * 1024 * 1024
    replication: int = 3
    rack_spread: int = 2
    horizon: float = 600.0
    tick: float = 5.0
    drain: float = 120.0
    # Offered read load as a multiple of aggregate service capacity
    # (num_machines * service_rate requests/s).
    load_multiplier: float = 1.5
    service_rate: float = 2.0
    # Queue bound per node.  capacity / service_rate is the worst-case
    # wait a served read can see, so keep it below slo_latency: a queue
    # deeper than the SLO merely converts sheds into SLO misses.
    queue_capacity: int = 8
    shed_policy: str = "priority"
    slo_latency: float = 5.0
    hedge_latency_budget: Optional[float] = 2.5
    protected: bool = True
    # Zipf exponent of the block popularity skew (1.0+ = heavy head).
    zipf_s: float = 1.2
    heartbeat_interval: float = 3.0
    heartbeat_expiry: float = 30.0
    replication_check_interval: float = 60.0
    aurora: bool = True
    aurora_period: float = 120.0
    aurora_epsilon: float = 0.1
    # Brownout thresholds on *mean* cluster saturation.  Zipf-skewed
    # load saturates the hot nodes while the cold ones idle, so the
    # mean understates overload; trigger lower than the library default.
    brownout_enter_threshold: float = 0.5
    brownout_exit_threshold: float = 0.25
    # Deterministic churn: crash one node mid-storm (and recover it
    # later) so re-replication traffic exists for admission to gate.
    crash_node: bool = True
    crash_at_fraction: float = 0.3
    recover_at_fraction: float = 0.55
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise InvalidProblemError("horizon must be positive")
        if self.tick <= 0:
            raise InvalidProblemError("tick must be positive")
        if self.load_multiplier <= 0:
            raise InvalidProblemError("load_multiplier must be positive")
        if self.service_rate <= 0:
            raise InvalidProblemError("service_rate must be positive")
        if self.slo_latency <= 0:
            raise InvalidProblemError("slo_latency must be positive")
        if self.zipf_s < 0:
            raise InvalidProblemError("zipf_s must be non-negative")
        if not 1 <= self.rack_spread <= self.replication:
            raise InvalidProblemError(
                "rack_spread must be in [1, replication]"
            )
        if not 0.0 < self.crash_at_fraction < self.recover_at_fraction <= 1.0:
            raise InvalidProblemError(
                "need 0 < crash_at_fraction < recover_at_fraction <= 1"
            )
        ShedPolicy(self.shed_policy)  # validates the name

    @property
    def num_machines(self) -> int:
        """Cluster size."""
        return self.num_racks * self.machines_per_rack

    @property
    def offered_rate(self) -> float:
        """Offered reads per second across the cluster."""
        return self.load_multiplier * self.num_machines * self.service_rate

    @property
    def reads_per_tick(self) -> int:
        """Reads issued per workload tick."""
        return max(1, round(self.offered_rate * self.tick))


@dataclass
class OverloadStormResult:
    """What one overload storm observed."""

    config: OverloadStormConfig
    reads_attempted: int = 0
    reads_served: int = 0
    reads_failed: int = 0
    reads_within_slo: int = 0
    reads_shed: int = 0
    read_failovers: int = 0
    breaker_skips: int = 0
    breaker_trips: int = 0
    hedged_reads: int = 0
    hedge_wins: int = 0
    queue_shed: int = 0
    queue_served: int = 0
    replications_deferred: int = 0
    replications_shed: int = 0
    migrations_deferred: int = 0
    migrations_shed: int = 0
    replications_completed: int = 0
    brownout_periods: int = 0
    brownout_entries: int = 0
    deferred_moves: int = 0
    peak_saturation: float = 0.0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    fsck: Optional[FsckReport] = None
    # Evaluated SloStatus list when the run carried a TelemetrySession.
    slo_statuses: List = field(default_factory=list)

    @property
    def slo_violation_minutes(self) -> float:
        """Total simulated minutes any objective was out of compliance."""
        return sum(s.violation_minutes for s in self.slo_statuses)

    @property
    def availability(self) -> float:
        """SLO attainment: reads completed within the latency budget."""
        if self.reads_attempted == 0:
            return 1.0
        return self.reads_within_slo / self.reads_attempted

    @property
    def shed_fraction(self) -> float:
        """Fraction of attempted reads the client saw shed at least once."""
        if self.reads_attempted == 0:
            return 0.0
        return self.reads_shed / self.reads_attempted

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile of served-read latency (0 if no reads)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def p50_latency(self) -> float:
        """Median served-read latency."""
        return self.latency_percentile(0.50)

    @property
    def p99_latency(self) -> float:
        """Tail served-read latency."""
        return self.latency_percentile(0.99)


def _zipf_weights(count: int, s: float) -> List[float]:
    """Zipf-ish popularity weights over ``count`` ranks."""
    return [1.0 / (rank ** s) for rank in range(1, count + 1)]


def default_overload_slos(config: OverloadStormConfig) -> List:
    """The SLO set an overload storm is judged against."""
    window = max(config.tick * 12, 60.0)
    return [
        availability_slo(
            "read-availability",
            good_series="repro_dfs_reads_total",
            bad_series="repro_dfs_read_errors_total",
            target=0.99, window=window,
            description="99% of block reads are served by some replica",
        ),
        latency_slo(
            "read-latency-slo",
            series="repro_dfs_read_latency_seconds",
            threshold=config.slo_latency, target=0.95, window=window,
            description=f"95% of reads finish within the "
                        f"{config.slo_latency:.1f}s latency budget",
        ),
        threshold_slo(
            "replication-queue-bounded",
            series="repro_dfs_replication_queue_depth",
            threshold=50.0, target=0.9, window=window,
            description="the re-replication backlog stays bounded "
                        "while the storm rages",
        ),
    ]


def run_overload(
    config: OverloadStormConfig,
    telemetry: Optional[TelemetrySession] = None,
) -> OverloadStormResult:
    """Run one seeded overload storm and collect the result.

    Deterministic for a given config.  The protected variant installs
    the full :mod:`repro.overload` stack; the unprotected variant runs
    the same workload against effectively unbounded queues with no
    breakers, hedging, admission control or brownout.

    A :class:`~repro.obs.telemetry.TelemetrySession` adds sim-clock
    time-series sampling, sampled causal read traces and the default
    overload SLO set — so protected vs unprotected storms compare as
    SLO-violation minutes, not just end-of-run aggregates.
    """
    sim = Simulation()
    topology = ClusterTopology.uniform(
        config.num_racks, config.machines_per_rack, config.capacity_blocks
    )
    transfers = TransferService(
        topology, sim=sim, rng=random.Random(config.seed + 1)
    )
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(config.seed + 2)),
        sim=sim,
        transfer_service=transfers,
        default_replication=config.replication,
        default_rack_spread=config.rack_spread,
        rng=random.Random(config.seed + 3),
        replication_throttle=8,
    )
    heartbeats = HeartbeatService(
        sim, namenode,
        interval=config.heartbeat_interval,
        expiry=config.heartbeat_expiry,
    )
    heartbeats.start()

    sampler = telemetry.sampler() if telemetry is not None else None
    if telemetry is not None:
        telemetry.install(sim)
        if not telemetry.slo.objectives:
            for objective in default_overload_slos(config):
                telemetry.add_objective(objective)

    if config.protected:
        protection = install_overload_protection(namenode, OverloadConfig(
            queue_capacity=config.queue_capacity,
            service_rate=config.service_rate,
            shed_policy=ShedPolicy(config.shed_policy),
            hedge_latency_budget=config.hedge_latency_budget,
        ))
        client = DfsClient(
            namenode,
            breakers=protection.breakers(),
            hedge_latency_budget=config.hedge_latency_budget,
            trace_sampler=sampler,
        )
    else:
        protection = install_overload_protection(namenode, OverloadConfig(
            queue_capacity=_UNBOUNDED,
            service_rate=config.service_rate,
            shed_policy=ShedPolicy.REJECT,
        ))
        namenode.admission = None  # background traffic never yields
        client = DfsClient(namenode, trace_sampler=sampler)

    blocks: List[int] = []
    for index in range(config.num_files):
        meta = client.write_file(
            f"/overload/{index}",
            num_blocks=config.blocks_per_file,
            block_size=config.block_size,
        )
        blocks.extend(meta.block_ids)

    result = OverloadStormResult(config=config)
    reader_rng = random.Random(config.seed + 4)
    weights = _zipf_weights(len(blocks), config.zipf_s)

    # Brownout detection wants the high-water mark since the last
    # optimizer period, not an instantaneous sample: queues drain
    # between workload ticks, so sampling exactly at a period boundary
    # can miss sustained overload entirely.
    window_peak = [0.0]

    def saturation_high_water() -> float:
        peak = max(window_peak[0], namenode.cluster_saturation())
        window_peak[0] = 0.0
        return peak

    aurora: Optional[AuroraSystem] = None
    if config.aurora:
        aurora = AuroraSystem(namenode, AuroraConfig(
            epsilon=config.aurora_epsilon,
            window=max(config.aurora_period * 2, 2 * config.tick),
            period=config.aurora_period,
            brownout_enter_threshold=config.brownout_enter_threshold,
            brownout_exit_threshold=config.brownout_exit_threshold,
        ))
        if config.protected:
            aurora.saturation_provider = saturation_high_water
        aurora.run_periodic(sim)

    def one_read(block: int, reader: int) -> None:
        result.reads_attempted += 1
        try:
            outcome = client.read_block(block, reader)
        except DatanodeUnavailableError:
            result.reads_failed += 1
        else:
            result.reads_served += 1
            total = outcome.latency + outcome.backoff
            result.latencies.append(total)
            if total <= config.slo_latency:
                result.reads_within_slo += 1
        saturation = namenode.cluster_saturation()
        window_peak[0] = max(window_peak[0], saturation)
        result.peak_saturation = max(result.peak_saturation, saturation)

    def read_tick() -> None:
        # Spread the tick's arrivals across the interval — a burst at a
        # single instant would overflow any bounded queue by itself and
        # measure the burst, not the policy.
        chosen = reader_rng.choices(
            blocks, weights=weights, k=config.reads_per_tick
        )
        for block in chosen:
            reader = reader_rng.randrange(topology.num_machines)
            offset = reader_rng.uniform(0.0, config.tick)
            sim.schedule(
                offset, lambda b=block, r=reader: one_read(b, r)
            )

    reader_token = sim.schedule_periodic(config.tick, read_tick)
    check_token = sim.schedule_periodic(
        config.replication_check_interval, namenode.check_replication
    )

    if config.crash_node:
        # The most loaded node makes the best victim: its blocks are the
        # hot ones, so its re-replication competes with client reads.
        victim = config.num_machines // 2
        sim.schedule(
            config.horizon * config.crash_at_fraction,
            lambda: namenode.fail_node(victim),
        )
        sim.schedule(
            config.horizon * config.recover_at_fraction,
            lambda: namenode.recover_node(victim),
        )

    sim.run(until=config.horizon)
    reader_token.cancel()
    sim.run(until=config.horizon + config.drain)
    check_token.cancel()
    heartbeats.stop()

    result.reads_shed = client.reads_shed
    result.read_failovers = client.read_failovers
    result.breaker_skips = client.breaker_skips
    result.hedged_reads = client.hedged_reads
    result.hedge_wins = client.hedge_wins
    if client.breakers:
        result.breaker_trips = sum(
            breaker.trips for breaker in client.breakers.values()
        )
    result.queue_shed = protection.total_shed()
    result.queue_served = protection.total_served()
    result.replications_deferred = namenode.replications_deferred
    result.replications_shed = namenode.replications_shed
    result.migrations_deferred = namenode.migrations_deferred
    result.migrations_shed = namenode.migrations_shed
    result.replications_completed = namenode.replications_completed
    result.bytes_by_kind = dict(transfers.bytes_by_kind)
    if aurora is not None:
        result.brownout_periods = sum(
            1 for report in aurora.reports if report.brownout
        )
        result.brownout_entries = aurora.brownout.entered
        result.deferred_moves = sum(
            report.deferred_moves for report in aurora.reports
        )
    result.fsck = run_fsck(namenode)
    if telemetry is not None:
        result.slo_statuses = telemetry.finish(sim.now)
    _LOG.info(
        "overload storm done: protected=%s availability=%.4f p99=%.2fs "
        "shed=%d brownout_periods=%d",
        config.protected, result.availability, result.p99_latency,
        result.reads_shed, result.brownout_periods,
    )
    return result


def run_overload_pair(
    config: OverloadStormConfig,
    telemetry: Optional[TelemetrySession] = None,
    unprotected_telemetry: Optional[TelemetrySession] = None,
    between: Optional[callable] = None,
) -> Tuple[OverloadStormResult, OverloadStormResult]:
    """The same storm with and without protection (protected first).

    Each leg takes its own session (installing a session resets the
    shared registry/tracer, so one session cannot span both legs);
    ``between`` runs after the protected leg — the CLI uses it to write
    the protected leg's telemetry before the second install clears the
    span buffer.
    """
    protected = run_overload(
        dataclasses.replace(config, protected=True), telemetry=telemetry
    )
    if between is not None:
        between()
    unprotected = run_overload(
        dataclasses.replace(config, protected=False),
        telemetry=unprotected_telemetry,
    )
    return protected, unprotected


def render_overload(result: OverloadStormResult) -> str:
    """One overload storm as a readable report."""
    config = result.config
    lines = [
        f"overload storm ({'protected' if config.protected else 'unprotected'}, "
        f"seed={config.seed}, load={config.load_multiplier:.2f}x, "
        f"policy={config.shed_policy}, slo={config.slo_latency:.1f}s)",
        "",
        f"  reads attempted           {result.reads_attempted}",
        f"  availability (SLO)        {result.availability:.4f}",
        f"  reads served              {result.reads_served}",
        f"  reads failed              {result.reads_failed}",
        f"  p50 latency               {result.p50_latency:.2f}s",
        f"  p99 latency               {result.p99_latency:.2f}s",
        "",
        f"  reads shed (client)       {result.reads_shed}",
        f"  read failovers            {result.read_failovers}",
        f"  breaker skips / trips     {result.breaker_skips} / "
        f"{result.breaker_trips}",
        f"  hedged reads / wins       {result.hedged_reads} / "
        f"{result.hedge_wins}",
        f"  queue served / shed       {result.queue_served} / "
        f"{result.queue_shed}",
        f"  peak cluster saturation   {result.peak_saturation:.2f}",
        "",
        f"  replications deferred     {result.replications_deferred}",
        f"  replications shed         {result.replications_shed}",
        f"  migrations deferred       {result.migrations_deferred}",
        f"  migrations shed           {result.migrations_shed}",
        f"  replications completed    {result.replications_completed}",
        f"  brownout periods          {result.brownout_periods}",
        f"  brownout entries          {result.brownout_entries}",
        f"  moves deferred (brownout) {result.deferred_moves}",
    ]
    if result.bytes_by_kind:
        lines.append(
            "  transfer bytes by kind    "
            + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(result.bytes_by_kind.items())
            )
        )
    if result.fsck is not None:
        lines.append(
            "  fsck                      "
            + ("healthy"
               if result.fsck.healthy
               else f"{len(result.fsck.violations)} violation(s)")
        )
    if result.slo_statuses:
        lines.append("")
        lines.append("  SLOs:")
        for status in result.slo_statuses:
            lines.append(
                f"    {status.objective.name:<28}"
                f"{'PASS' if status.compliant else 'VIOLATED':<10}"
                f"sli={status.overall_sli:.4f} "
                f"target={status.objective.target:.4f} "
                f"violation_min={status.violation_minutes:.1f}"
            )
    return "\n".join(lines)


def render_overload_pair(
    protected: OverloadStormResult, unprotected: OverloadStormResult
) -> str:
    """Side-by-side protected vs unprotected comparison."""
    rows = [
        ("availability (SLO)",
         f"{protected.availability:.4f}", f"{unprotected.availability:.4f}"),
        ("p50 latency", f"{protected.p50_latency:.2f}s",
         f"{unprotected.p50_latency:.2f}s"),
        ("p99 latency", f"{protected.p99_latency:.2f}s",
         f"{unprotected.p99_latency:.2f}s"),
        ("reads shed", str(protected.reads_shed),
         str(unprotected.reads_shed)),
        ("reads failed", str(protected.reads_failed),
         str(unprotected.reads_failed)),
        ("hedge wins", str(protected.hedge_wins),
         str(unprotected.hedge_wins)),
        ("brownout periods", str(protected.brownout_periods),
         str(unprotected.brownout_periods)),
        ("migrations deferred", str(protected.migrations_deferred),
         str(unprotected.migrations_deferred)),
    ]
    if protected.slo_statuses or unprotected.slo_statuses:
        rows.append((
            "SLO violation minutes",
            f"{protected.slo_violation_minutes:.1f}",
            f"{unprotected.slo_violation_minutes:.1f}",
        ))
    config = protected.config
    lines = [
        f"overload comparison at {config.load_multiplier:.2f}x capacity "
        f"(policy={config.shed_policy}, slo={config.slo_latency:.1f}s, "
        f"seed={config.seed})",
        "",
        f"  {'metric':<22} {'protected':>12} {'unprotected':>12}",
    ]
    for name, prot, unprot in rows:
        lines.append(f"  {name:<22} {prot:>12} {unprot:>12}")
    return "\n".join(lines)
