"""Process-pool parallel trial runner for experiment sweeps.

Every figure and sweep in :mod:`repro.experiments` reduces to running
:func:`~repro.experiments.harness.run_experiment` over a list of
independent *cases* — (system kind, epsilon, seed) combinations that
share nothing at runtime.  :func:`run_trials` fans such a case list out
to worker processes and returns the :class:`RunResult` list in input
order.

Determinism contract: ``run_experiment`` derives every random stream
from ``config.seed``, so a case's result is a pure function of
``(trace, config)``.  Workers therefore produce results identical to a
sequential loop over the same cases — the parallel/sequential equality
is pinned by tests and the CI ``harness-perf`` job.

Observability: each worker resets its own process-global metrics
registry before its case, runs, and ships the registry snapshot back
with the result; the parent folds the snapshots into its registry with
:meth:`~repro.obs.registry.MetricsRegistry.merge`, in case order.  A
merged parent registry thus holds the same counter/histogram totals a
sequential run would have produced (gauges hold the last case's value,
matching sequential last-write-wins).

Worker processes are forked where the platform allows it (fork is the
cheap path: no re-import, inherited registry enablement); on
fork-less platforms the enablement flag travels with each case.
"""

from __future__ import annotations

import logging
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidProblemError
from repro.experiments.harness import (
    ExperimentConfig,
    RunResult,
    run_experiment,
)
from repro.obs.registry import get_registry
from repro.workload.trace import WorkloadTrace

__all__ = ["TrialCase", "run_trials"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_CASES = _REG.counter(
    "repro_runner_cases_total",
    "Experiment cases executed by the trial runner, by execution mode",
    ["mode"],
)


@dataclass(frozen=True)
class TrialCase:
    """One independent experiment case: a trace plus a full config.

    ``label`` is free-form — sweeps use it to map results back to the
    parameter that produced them (it does not influence the run).
    """

    label: str
    trace: WorkloadTrace
    config: ExperimentConfig


def _run_case(payload: Tuple[TrialCase, bool]) -> Tuple[RunResult, Optional[Dict[str, dict]]]:
    """Worker entry: run one case inside a fresh-registry process.

    Returns the run result plus the worker registry's snapshot (None
    when metrics are off, so nothing is pickled back needlessly).
    """
    case, metrics = payload
    registry = get_registry()
    if metrics:
        registry.enable()
        registry.reset()
        result = run_experiment(case.trace, case.config)
        return result, registry.snapshot()
    registry.disable()
    result = run_experiment(case.trace, case.config)
    return result, None


def _pool_context() -> multiprocessing.context.BaseContext:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_trials(
    cases: Sequence[TrialCase], jobs: int = 1
) -> List[RunResult]:
    """Run every case; results come back in input order.

    ``jobs`` is the worker-process count.  ``jobs=1`` (the default)
    runs sequentially in-process — no pool, no pickling, metrics land
    directly in the parent registry.  With ``jobs > 1`` the cases fan
    out to a process pool capped at ``min(jobs, len(cases))`` workers
    and the parent merges each worker's metrics snapshot in case order.
    """
    if jobs < 1:
        raise InvalidProblemError("jobs must be >= 1")
    if jobs == 1 or len(cases) <= 1:
        results = []
        for case in cases:
            if _REG.enabled:
                _CASES.labels(mode="sequential").inc()
            results.append(run_experiment(case.trace, case.config))
        return results
    registry = get_registry()
    payload = [(case, registry.enabled) for case in cases]
    workers = min(jobs, len(cases))
    _LOG.info(
        "running %d cases on %d worker processes", len(cases), workers
    )
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        outcomes = list(pool.map(_run_case, payload))
    results = []
    for result, snapshot in outcomes:
        if snapshot is not None:
            registry.merge(snapshot)
        if registry.enabled:
            _CASES.labels(mode="parallel").inc()
        results.append(result)
    return results
