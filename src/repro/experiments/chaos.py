"""Chaos experiment: fault injection against the full resilience stack.

Runs a seeded storm of crashes, rack partitions, gray nodes, flaky
transfers and heartbeat message loss (any subset of
:mod:`repro.faults` profiles) against a cluster serving a steady read
workload, and reports what the paper's reliability story cares about:

* **read availability** — the fraction of client reads served while
  nodes die and metadata goes stale (the client's replica failover is
  what keeps this high through the heartbeat detection window);
* **time to full replication** — how long each under-replication
  episode lasted from first exposure until the prioritized
  re-replication queue repaired every block, as a function of the
  re-replication throttle;
* **durability** — blocks permanently lost (none, for any survivable
  schedule: crashed disks come back and re-report);
* the retry/rollback/failover counters the fault machinery emits.

The run is deterministic for a given config; the final state is
cross-checked with :meth:`~repro.dfs.namenode.Namenode.audit` so a
failed migration can never leave placement metadata and block map in
disagreement.
"""

from __future__ import annotations

import logging
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.fsck import FsckReport, run_fsck
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import DatanodeUnavailableError, InvalidProblemError
from repro.faults import FaultInjector, FaultProfile, profile_from_name
from repro.obs.slo import availability_slo, latency_slo
from repro.obs.telemetry import TelemetrySession
from repro.simulation.engine import Simulation

__all__ = ["ChaosConfig", "ChaosResult", "run_chaos", "render_chaos",
           "default_chaos_slos"]

_LOG = logging.getLogger(__name__)


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos run: cluster shape, workload rate and fault profiles."""

    num_racks: int = 4
    machines_per_rack: int = 4
    capacity_blocks: int = 120
    num_files: int = 12
    blocks_per_file: int = 4
    block_size: int = 64 * 1024 * 1024
    replication: int = 3
    rack_spread: int = 2
    horizon: float = 2 * 3600.0
    heartbeat_interval: float = 3.0
    heartbeat_expiry: float = 30.0
    read_interval: float = 20.0
    reads_per_tick: int = 4
    replication_check_interval: float = 60.0
    replication_throttle: Optional[int] = 8
    profiles: Tuple[str, ...] = ("crash", "partition", "flaky")
    crash_mtbf: float = 1800.0
    crash_repair: float = 300.0
    partition_mtbf: float = 5400.0
    partition_duration: float = 120.0
    gray_mtbf: float = 3600.0
    gray_duration: float = 600.0
    flaky_probability: float = 0.15
    msgloss_probability: float = 0.4
    drain: float = 1800.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise InvalidProblemError("horizon must be positive")
        if self.read_interval <= 0:
            raise InvalidProblemError("read_interval must be positive")
        if not 1 <= self.rack_spread <= self.replication:
            raise InvalidProblemError("rack_spread must be in [1, replication]")

    def build_profiles(self) -> List[FaultProfile]:
        """Materialize the named profiles with this config's knobs."""
        overrides: Dict[str, Dict[str, object]] = {
            "crash": {"mtbf": self.crash_mtbf,
                      "repair_time": self.crash_repair},
            "partition": {"mtbf": self.partition_mtbf,
                          "duration": self.partition_duration},
            "gray": {"mtbf": self.gray_mtbf, "duration": self.gray_duration},
            "flaky": {"failure_probability": self.flaky_probability},
            "msgloss": {"loss_probability": self.msgloss_probability},
        }
        return [
            profile_from_name(name, **overrides.get(name, {}))
            for name in self.profiles
        ]


@dataclass
class ChaosResult:
    """What a chaos run observed."""

    config: ChaosConfig
    total_blocks: int = 0
    blocks_lost: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    reads_attempted: int = 0
    reads_served: int = 0
    reads_failed: int = 0
    read_failovers: int = 0
    degraded_reads: int = 0
    transfers_failed: int = 0
    transfer_retries: int = 0
    replications_completed: int = 0
    replications_requeued: int = 0
    migration_rollbacks: int = 0
    migration_retargets: int = 0
    detected_failures: int = 0
    false_suspicions: int = 0
    reconciliations: int = 0
    recovery_times: List[float] = field(default_factory=list)
    bytes_wasted: int = 0
    fsck: Optional[FsckReport] = None
    # Evaluated SloStatus list when the run carried a TelemetrySession.
    slo_statuses: List = field(default_factory=list)

    @property
    def slo_violation_minutes(self) -> float:
        """Total simulated minutes any objective was out of compliance."""
        return sum(s.violation_minutes for s in self.slo_statuses)

    @property
    def read_availability(self) -> float:
        """Fraction of attempted reads that some replica served."""
        if self.reads_attempted == 0:
            return 1.0
        return self.reads_served / self.reads_attempted

    @property
    def mean_recovery_seconds(self) -> float:
        """Mean time-to-full-replication across episodes (0 if none)."""
        if not self.recovery_times:
            return 0.0
        return statistics.fmean(self.recovery_times)

    @property
    def max_recovery_seconds(self) -> float:
        """Worst-case time-to-full-replication (0 if never exposed)."""
        return max(self.recovery_times, default=0.0)


def default_chaos_slos(config: ChaosConfig) -> List:
    """The SLO set a chaos storm is judged against."""
    window = max(config.read_interval * 15, 300.0)
    return [
        availability_slo(
            "read-availability",
            good_series="repro_dfs_reads_total",
            bad_series="repro_dfs_read_errors_total",
            target=0.99, window=window,
            description="99% of block reads are served by some replica",
        ),
        latency_slo(
            "read-latency-p99",
            series="repro_dfs_read_latency_seconds",
            threshold=5.0, target=0.99, window=window,
            description="99% of reads finish within 5 simulated seconds",
        ),
        latency_slo(
            "time-to-full-replication",
            series="repro_dfs_recovery_seconds",
            threshold=900.0, target=0.9, window=max(window * 6, 1800.0),
            description="90% of under-replication episodes repair "
                        "within 15 simulated minutes",
        ),
    ]


def run_chaos(
    config: ChaosConfig,
    telemetry: Optional[TelemetrySession] = None,
) -> ChaosResult:
    """Run one seeded chaos schedule and collect the result.

    Deterministic for a given config.  After the horizon the fault
    hooks are disarmed and the simulation drains until every outage has
    healed and repair work settles; the namenode's :meth:`audit` then
    asserts the metadata reconciled.

    Passing a :class:`~repro.obs.telemetry.TelemetrySession` turns on
    the full pipeline: time-series sampling on the sim clock, sampled
    causal traces of client reads, and the default chaos SLO set
    (evaluated into ``result.slo_statuses``).
    """
    sim = Simulation()
    topology = ClusterTopology.uniform(
        config.num_racks, config.machines_per_rack, config.capacity_blocks
    )
    transfers = TransferService(
        topology, sim=sim, rng=random.Random(config.seed + 1)
    )
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(config.seed + 2)),
        sim=sim,
        transfer_service=transfers,
        default_replication=config.replication,
        default_rack_spread=config.rack_spread,
        rng=random.Random(config.seed + 3),
        replication_throttle=config.replication_throttle,
    )
    heartbeats = HeartbeatService(
        sim, namenode,
        interval=config.heartbeat_interval,
        expiry=config.heartbeat_expiry,
    )
    heartbeats.start()
    client = DfsClient(
        namenode,
        trace_sampler=(
            telemetry.sampler() if telemetry is not None else None
        ),
    )
    if telemetry is not None:
        telemetry.install(sim)
        if not telemetry.slo.objectives:
            for objective in default_chaos_slos(config):
                telemetry.add_objective(objective)

    blocks: List[int] = []
    for index in range(config.num_files):
        meta = client.write_file(
            f"/chaos/{index}",
            num_blocks=config.blocks_per_file,
            block_size=config.block_size,
        )
        blocks.extend(meta.block_ids)

    injector = FaultInjector(
        sim, namenode, config.build_profiles(),
        horizon=config.horizon, seed=config.seed, heartbeats=heartbeats,
    )
    injector.install()

    result = ChaosResult(config=config, total_blocks=len(blocks))
    reader_rng = random.Random(config.seed + 4)

    def read_tick() -> None:
        for _ in range(config.reads_per_tick):
            block = reader_rng.choice(blocks)
            reader = reader_rng.randrange(topology.num_machines)
            result.reads_attempted += 1
            try:
                outcome = client.read_block(block, reader)
            except DatanodeUnavailableError:
                result.reads_failed += 1
            else:
                result.reads_served += 1
                if outcome.failed_over:
                    result.read_failovers += 1

    reader_token = sim.schedule_periodic(config.read_interval, read_tick)
    check_token = sim.schedule_periodic(
        config.replication_check_interval, namenode.check_replication
    )

    sim.run(until=config.horizon)
    reader_token.cancel()
    # Disarm the probabilistic hooks so the drain can actually finish
    # its repairs; timed recoveries are already scheduled.
    transfers.fault_hook = None
    heartbeats.loss_filter = None
    drain_until = config.horizon + config.drain
    last_recovery = max(
        (event.time for event in injector.plan() if event.is_recovery),
        default=0.0,
    )
    drain_until = max(drain_until, last_recovery + config.drain)
    sim.run(until=drain_until)
    check_token.cancel()
    heartbeats.stop()

    namenode.audit()  # placement metadata must reconcile after the storm
    result.fsck = run_fsck(namenode)

    result.blocks_lost = sum(
        1 for block in blocks if not namenode.blockmap.locations(block)
    )
    result.faults_injected = dict(injector.injected)
    result.transfers_failed = transfers.transfers_failed
    result.bytes_wasted = transfers.bytes_wasted
    result.transfer_retries = namenode.transfer_retries
    result.replications_completed = namenode.replications_completed
    result.replications_requeued = namenode.replications_requeued
    result.migration_rollbacks = namenode.migration_rollbacks
    result.migration_retargets = namenode.migration_retargets
    result.degraded_reads = namenode.degraded_reads
    result.detected_failures = heartbeats.detected_failures
    result.false_suspicions = heartbeats.false_suspicions
    result.reconciliations = heartbeats.reconciliations
    result.recovery_times = list(namenode.recovery_times)
    if telemetry is not None:
        result.slo_statuses = telemetry.finish(sim.now)
    _LOG.info(
        "chaos run done: availability=%.4f lost=%d episodes=%d "
        "retries=%d rollbacks=%d",
        result.read_availability, result.blocks_lost,
        len(result.recovery_times), result.transfer_retries,
        result.migration_rollbacks,
    )
    return result


def render_chaos(result: ChaosResult) -> str:
    """The chaos run as a readable report."""
    config = result.config
    lines = [
        "chaos run "
        f"(seed={config.seed}, horizon={config.horizon / 3600.0:.1f}h, "
        f"profiles={', '.join(config.profiles)}, "
        f"throttle={config.replication_throttle})",
        "",
        f"  blocks tracked            {result.total_blocks}",
        f"  blocks permanently lost   {result.blocks_lost}",
        "",
        f"  reads attempted           {result.reads_attempted}",
        f"  read availability         {result.read_availability:.4f}",
        f"  reads that failed over    {result.read_failovers}",
        f"  reads from gray nodes     {result.degraded_reads}",
        "",
        f"  faults injected           "
        + (", ".join(
            f"{kind}={count}"
            for kind, count in sorted(result.faults_injected.items())
        ) or "none"),
        f"  failures detected         {result.detected_failures}",
        f"  false suspicions          {result.false_suspicions}",
        f"  block-report reconciles   {result.reconciliations}",
        "",
        f"  transfers failed          {result.transfers_failed}",
        f"  transfer retries          {result.transfer_retries}",
        f"  bytes wasted              {result.bytes_wasted}",
        f"  replications completed    {result.replications_completed}",
        f"  replications requeued     {result.replications_requeued}",
        f"  migration rollbacks       {result.migration_rollbacks}",
        f"  migration retargets       {result.migration_retargets}",
        "",
        f"  under-replication episodes {len(result.recovery_times)}",
        f"  mean time to full repl.   {result.mean_recovery_seconds:.1f}s",
        f"  max time to full repl.    {result.max_recovery_seconds:.1f}s",
    ]
    if result.fsck is not None:
        lines.append(
            "  fsck                      "
            + ("healthy"
               if result.fsck.healthy
               else f"{len(result.fsck.violations)} violation(s)")
        )
    if result.slo_statuses:
        lines.append("")
        lines.append("  SLOs:")
        for status in result.slo_statuses:
            lines.append(
                f"    {status.objective.name:<28}"
                f"{'PASS' if status.compliant else 'VIOLATED':<10}"
                f"sli={status.overall_sli:.4f} "
                f"target={status.objective.target:.4f} "
                f"violation_min={status.violation_minutes:.1f}"
            )
    return "\n".join(lines)
