"""Chaos experiment: fault injection against the full resilience stack.

Runs a seeded storm of crashes, rack partitions, gray nodes, flaky
transfers and heartbeat message loss (any subset of
:mod:`repro.faults` profiles) against a cluster serving a steady read
workload, and reports what the paper's reliability story cares about:

* **read availability** — the fraction of client reads served while
  nodes die and metadata goes stale (the client's replica failover is
  what keeps this high through the heartbeat detection window);
* **time to full replication** — how long each under-replication
  episode lasted from first exposure until the prioritized
  re-replication queue repaired every block, as a function of the
  re-replication throttle;
* **durability** — blocks permanently lost (none, for any survivable
  schedule: crashed disks come back and re-report);
* the retry/rollback/failover counters the fault machinery emits.

The run is deterministic for a given config; the final state is
cross-checked with :meth:`~repro.dfs.namenode.Namenode.audit` so a
failed migration can never leave placement metadata and block map in
disagreement.
"""

from __future__ import annotations

import logging
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.fsck import FsckReport, run_fsck
from repro.dfs.ha import HaCluster, HaConfig, rebind_aurora
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import (
    DatanodeUnavailableError,
    DfsError,
    InvalidProblemError,
    NoLeaderError,
    SafeModeError,
)
from repro.faults import (
    FaultInjector,
    FaultProfile,
    LeaderKillProfile,
    profile_from_name,
)
from repro.obs.registry import get_registry
from repro.obs.slo import availability_slo, latency_slo
from repro.obs.telemetry import TelemetrySession
from repro.simulation.engine import Simulation

__all__ = ["ChaosConfig", "ChaosResult", "run_chaos", "render_chaos",
           "default_chaos_slos", "LeaderKillConfig", "LeaderKillResult",
           "run_leader_kill", "render_leader_kill", "default_ha_slos"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_HA_OPS_SERVED = _REG.counter(
    "repro_ha_client_ops_served_total",
    "Client metadata writes and block reads served by the HA plane",
)
_HA_OPS_FAILED = _REG.counter(
    "repro_ha_client_ops_failed_total",
    "Client operations rejected or failed during a metadata-plane outage",
)


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos run: cluster shape, workload rate and fault profiles."""

    num_racks: int = 4
    machines_per_rack: int = 4
    capacity_blocks: int = 120
    num_files: int = 12
    blocks_per_file: int = 4
    block_size: int = 64 * 1024 * 1024
    replication: int = 3
    rack_spread: int = 2
    horizon: float = 2 * 3600.0
    heartbeat_interval: float = 3.0
    heartbeat_expiry: float = 30.0
    read_interval: float = 20.0
    reads_per_tick: int = 4
    replication_check_interval: float = 60.0
    replication_throttle: Optional[int] = 8
    profiles: Tuple[str, ...] = ("crash", "partition", "flaky")
    crash_mtbf: float = 1800.0
    crash_repair: float = 300.0
    partition_mtbf: float = 5400.0
    partition_duration: float = 120.0
    gray_mtbf: float = 3600.0
    gray_duration: float = 600.0
    flaky_probability: float = 0.15
    msgloss_probability: float = 0.4
    drain: float = 1800.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise InvalidProblemError("horizon must be positive")
        if self.read_interval <= 0:
            raise InvalidProblemError("read_interval must be positive")
        if not 1 <= self.rack_spread <= self.replication:
            raise InvalidProblemError("rack_spread must be in [1, replication]")

    def build_profiles(self) -> List[FaultProfile]:
        """Materialize the named profiles with this config's knobs."""
        overrides: Dict[str, Dict[str, object]] = {
            "crash": {"mtbf": self.crash_mtbf,
                      "repair_time": self.crash_repair},
            "partition": {"mtbf": self.partition_mtbf,
                          "duration": self.partition_duration},
            "gray": {"mtbf": self.gray_mtbf, "duration": self.gray_duration},
            "flaky": {"failure_probability": self.flaky_probability},
            "msgloss": {"loss_probability": self.msgloss_probability},
        }
        return [
            profile_from_name(name, **overrides.get(name, {}))
            for name in self.profiles
        ]


@dataclass
class ChaosResult:
    """What a chaos run observed."""

    config: ChaosConfig
    total_blocks: int = 0
    blocks_lost: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    reads_attempted: int = 0
    reads_served: int = 0
    reads_failed: int = 0
    read_failovers: int = 0
    degraded_reads: int = 0
    transfers_failed: int = 0
    transfer_retries: int = 0
    replications_completed: int = 0
    replications_requeued: int = 0
    migration_rollbacks: int = 0
    migration_retargets: int = 0
    detected_failures: int = 0
    false_suspicions: int = 0
    reconciliations: int = 0
    recovery_times: List[float] = field(default_factory=list)
    bytes_wasted: int = 0
    fsck: Optional[FsckReport] = None
    # Evaluated SloStatus list when the run carried a TelemetrySession.
    slo_statuses: List = field(default_factory=list)

    @property
    def slo_violation_minutes(self) -> float:
        """Total simulated minutes any objective was out of compliance."""
        return sum(s.violation_minutes for s in self.slo_statuses)

    @property
    def read_availability(self) -> float:
        """Fraction of attempted reads that some replica served."""
        if self.reads_attempted == 0:
            return 1.0
        return self.reads_served / self.reads_attempted

    @property
    def mean_recovery_seconds(self) -> float:
        """Mean time-to-full-replication across episodes (0 if none)."""
        if not self.recovery_times:
            return 0.0
        return statistics.fmean(self.recovery_times)

    @property
    def max_recovery_seconds(self) -> float:
        """Worst-case time-to-full-replication (0 if never exposed)."""
        return max(self.recovery_times, default=0.0)


def default_chaos_slos(config: ChaosConfig) -> List:
    """The SLO set a chaos storm is judged against."""
    window = max(config.read_interval * 15, 300.0)
    return [
        availability_slo(
            "read-availability",
            good_series="repro_dfs_reads_total",
            bad_series="repro_dfs_read_errors_total",
            target=0.99, window=window,
            description="99% of block reads are served by some replica",
        ),
        latency_slo(
            "read-latency-p99",
            series="repro_dfs_read_latency_seconds",
            threshold=5.0, target=0.99, window=window,
            description="99% of reads finish within 5 simulated seconds",
        ),
        latency_slo(
            "time-to-full-replication",
            series="repro_dfs_recovery_seconds",
            threshold=900.0, target=0.9, window=max(window * 6, 1800.0),
            description="90% of under-replication episodes repair "
                        "within 15 simulated minutes",
        ),
    ]


def run_chaos(
    config: ChaosConfig,
    telemetry: Optional[TelemetrySession] = None,
) -> ChaosResult:
    """Run one seeded chaos schedule and collect the result.

    Deterministic for a given config.  After the horizon the fault
    hooks are disarmed and the simulation drains until every outage has
    healed and repair work settles; the namenode's :meth:`audit` then
    asserts the metadata reconciled.

    Passing a :class:`~repro.obs.telemetry.TelemetrySession` turns on
    the full pipeline: time-series sampling on the sim clock, sampled
    causal traces of client reads, and the default chaos SLO set
    (evaluated into ``result.slo_statuses``).
    """
    sim = Simulation()
    topology = ClusterTopology.uniform(
        config.num_racks, config.machines_per_rack, config.capacity_blocks
    )
    transfers = TransferService(
        topology, sim=sim, rng=random.Random(config.seed + 1)
    )
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(config.seed + 2)),
        sim=sim,
        transfer_service=transfers,
        default_replication=config.replication,
        default_rack_spread=config.rack_spread,
        rng=random.Random(config.seed + 3),
        replication_throttle=config.replication_throttle,
    )
    heartbeats = HeartbeatService(
        sim, namenode,
        interval=config.heartbeat_interval,
        expiry=config.heartbeat_expiry,
    )
    heartbeats.start()
    client = DfsClient(
        namenode,
        trace_sampler=(
            telemetry.sampler() if telemetry is not None else None
        ),
    )
    if telemetry is not None:
        telemetry.install(sim)
        if not telemetry.slo.objectives:
            for objective in default_chaos_slos(config):
                telemetry.add_objective(objective)

    blocks: List[int] = []
    for index in range(config.num_files):
        meta = client.write_file(
            f"/chaos/{index}",
            num_blocks=config.blocks_per_file,
            block_size=config.block_size,
        )
        blocks.extend(meta.block_ids)

    injector = FaultInjector(
        sim, namenode, config.build_profiles(),
        horizon=config.horizon, seed=config.seed, heartbeats=heartbeats,
    )
    injector.install()

    result = ChaosResult(config=config, total_blocks=len(blocks))
    reader_rng = random.Random(config.seed + 4)

    def read_tick() -> None:
        for _ in range(config.reads_per_tick):
            block = reader_rng.choice(blocks)
            reader = reader_rng.randrange(topology.num_machines)
            result.reads_attempted += 1
            try:
                outcome = client.read_block(block, reader)
            except DatanodeUnavailableError:
                result.reads_failed += 1
            else:
                result.reads_served += 1
                if outcome.failed_over:
                    result.read_failovers += 1

    reader_token = sim.schedule_periodic(config.read_interval, read_tick)
    check_token = sim.schedule_periodic(
        config.replication_check_interval, namenode.check_replication
    )

    sim.run(until=config.horizon)
    reader_token.cancel()
    # Disarm the probabilistic hooks so the drain can actually finish
    # its repairs; timed recoveries are already scheduled.
    transfers.fault_hook = None
    heartbeats.loss_filter = None
    drain_until = config.horizon + config.drain
    last_recovery = max(
        (event.time for event in injector.plan() if event.is_recovery),
        default=0.0,
    )
    drain_until = max(drain_until, last_recovery + config.drain)
    sim.run(until=drain_until)
    check_token.cancel()
    heartbeats.stop()

    namenode.audit()  # placement metadata must reconcile after the storm
    result.fsck = run_fsck(namenode)

    result.blocks_lost = sum(
        1 for block in blocks if not namenode.blockmap.locations(block)
    )
    result.faults_injected = dict(injector.injected)
    result.transfers_failed = transfers.transfers_failed
    result.bytes_wasted = transfers.bytes_wasted
    result.transfer_retries = namenode.transfer_retries
    result.replications_completed = namenode.replications_completed
    result.replications_requeued = namenode.replications_requeued
    result.migration_rollbacks = namenode.migration_rollbacks
    result.migration_retargets = namenode.migration_retargets
    result.degraded_reads = namenode.degraded_reads
    result.detected_failures = heartbeats.detected_failures
    result.false_suspicions = heartbeats.false_suspicions
    result.reconciliations = heartbeats.reconciliations
    result.recovery_times = list(namenode.recovery_times)
    if telemetry is not None:
        result.slo_statuses = telemetry.finish(sim.now)
    _LOG.info(
        "chaos run done: availability=%.4f lost=%d episodes=%d "
        "retries=%d rollbacks=%d",
        result.read_availability, result.blocks_lost,
        len(result.recovery_times), result.transfer_retries,
        result.migration_rollbacks,
    )
    return result


def render_chaos(result: ChaosResult) -> str:
    """The chaos run as a readable report."""
    config = result.config
    lines = [
        "chaos run "
        f"(seed={config.seed}, horizon={config.horizon / 3600.0:.1f}h, "
        f"profiles={', '.join(config.profiles)}, "
        f"throttle={config.replication_throttle})",
        "",
        f"  blocks tracked            {result.total_blocks}",
        f"  blocks permanently lost   {result.blocks_lost}",
        "",
        f"  reads attempted           {result.reads_attempted}",
        f"  read availability         {result.read_availability:.4f}",
        f"  reads that failed over    {result.read_failovers}",
        f"  reads from gray nodes     {result.degraded_reads}",
        "",
        f"  faults injected           "
        + (", ".join(
            f"{kind}={count}"
            for kind, count in sorted(result.faults_injected.items())
        ) or "none"),
        f"  failures detected         {result.detected_failures}",
        f"  false suspicions          {result.false_suspicions}",
        f"  block-report reconciles   {result.reconciliations}",
        "",
        f"  transfers failed          {result.transfers_failed}",
        f"  transfer retries          {result.transfer_retries}",
        f"  bytes wasted              {result.bytes_wasted}",
        f"  replications completed    {result.replications_completed}",
        f"  replications requeued     {result.replications_requeued}",
        f"  migration rollbacks       {result.migration_rollbacks}",
        f"  migration retargets       {result.migration_retargets}",
        "",
        f"  under-replication episodes {len(result.recovery_times)}",
        f"  mean time to full repl.   {result.mean_recovery_seconds:.1f}s",
        f"  max time to full repl.    {result.max_recovery_seconds:.1f}s",
    ]
    if result.fsck is not None:
        lines.append(
            "  fsck                      "
            + ("healthy"
               if result.fsck.healthy
               else f"{len(result.fsck.violations)} violation(s)")
        )
    if result.slo_statuses:
        lines.append("")
        lines.append("  SLOs:")
        for status in result.slo_statuses:
            lines.append(
                f"    {status.objective.name:<28}"
                f"{'PASS' if status.compliant else 'VIOLATED':<10}"
                f"sli={status.overall_sli:.4f} "
                f"target={status.objective.target:.4f} "
                f"violation_min={status.violation_minutes:.1f}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Leader-kill scenario: chaos against the replicated metadata plane.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LeaderKillConfig:
    """One leader-kill run: HA metadata plane under a steady workload.

    A :class:`~repro.dfs.ha.HaCluster` serves a mixed read/write stream
    with an Aurora optimizer reconfiguring every ``aurora_period``; at
    ``kill_at`` the leader replica is crashed mid-period.  The run is
    deterministic for a given config — election timeouts, workload
    choices and the kill schedule all derive from ``seed``.
    """

    num_racks: int = 3
    machines_per_rack: int = 3
    capacity_blocks: int = 200
    #: Files preloaded before the workload (and the kill) starts.
    num_files: int = 12
    blocks_per_file: int = 2
    block_size: int = 64 * 1024 * 1024
    replication: int = 3
    rack_spread: int = 2
    horizon: float = 1800.0
    #: When the leader dies.  Defaults to late in an Aurora optimization
    #: period (periods tick at multiples of ``aurora_period``), so the
    #: in-flight period is interrupted AND the next period boundary
    #: lands inside the outage window — exercising the clean abort.
    kill_at: float = 950.0
    #: When the killed replica rejoins as a follower (0 = never).
    revive_after: float = 600.0
    heartbeat_interval: float = 3.0
    heartbeat_expiry: float = 30.0
    aurora_period: float = 120.0
    read_interval: float = 5.0
    reads_per_tick: int = 2
    write_interval: float = 20.0
    replication_check_interval: float = 60.0
    drain: float = 300.0
    # HA-plane knobs (see HaConfig).
    num_replicas: int = 3
    lease_timeout: float = 10.0
    election_jitter: float = 5.0
    ship_interval: float = 2.0
    checkpoint_every: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.kill_at < self.horizon:
            raise InvalidProblemError("kill_at must fall inside the horizon")
        if self.write_interval <= 0 or self.read_interval <= 0:
            raise InvalidProblemError("workload intervals must be positive")
        if not 1 <= self.rack_spread <= self.replication:
            raise InvalidProblemError("rack_spread must be in [1, replication]")
        # Size the stream against the disks so the run cannot exhaust
        # capacity mid-flight and masquerade as an HA failure.
        writes = int(self.horizon / self.write_interval) + self.num_files
        demand = writes * self.blocks_per_file * self.replication
        capacity = (self.num_racks * self.machines_per_rack
                    * self.capacity_blocks)
        if demand > 0.8 * capacity:
            raise InvalidProblemError(
                f"workload would fill {demand}/{capacity} block slots; "
                "raise capacity_blocks or slow the write stream"
            )

    def ha_config(self) -> HaConfig:
        """The HA-plane slice of this config."""
        return HaConfig(
            num_replicas=self.num_replicas,
            lease_timeout=self.lease_timeout,
            election_jitter=self.election_jitter,
            ship_interval=self.ship_interval,
            checkpoint_every=self.checkpoint_every,
            seed=self.seed,
        )


@dataclass
class LeaderKillResult:
    """What a leader-kill run observed."""

    config: LeaderKillConfig
    files_acknowledged: int = 0
    write_ops_served: int = 0
    write_ops_failed: int = 0
    read_ops_served: int = 0
    read_ops_failed: int = 0
    aurora_periods_completed: int = 0
    aurora_periods_aborted: int = 0
    elections: int = 0
    failovers: int = 0
    fenced_writes: int = 0
    entries_shipped: int = 0
    entries_replayed: int = 0
    checkpoints_taken: int = 0
    journal_retained_entries: int = 0
    time_to_new_leader: Optional[float] = None
    time_to_writable: Optional[float] = None
    metadata_lost: int = 0
    timeline: List[Dict] = field(default_factory=list)
    fsck: Optional[FsckReport] = None
    slo_statuses: List = field(default_factory=list)

    @property
    def write_availability(self) -> float:
        """Fraction of attempted writes the plane acknowledged."""
        attempted = self.write_ops_served + self.write_ops_failed
        return self.write_ops_served / attempted if attempted else 1.0

    @property
    def read_availability(self) -> float:
        """Fraction of attempted reads some replica served."""
        attempted = self.read_ops_served + self.read_ops_failed
        return self.read_ops_served / attempted if attempted else 1.0

    def summary(self) -> Dict[str, object]:
        """Deterministic scalars for regression baselines."""
        return {
            "files_acknowledged": self.files_acknowledged,
            "write_ops_served": self.write_ops_served,
            "write_ops_failed": self.write_ops_failed,
            "read_ops_served": self.read_ops_served,
            "read_ops_failed": self.read_ops_failed,
            "aurora_periods_completed": self.aurora_periods_completed,
            "aurora_periods_aborted": self.aurora_periods_aborted,
            "elections": self.elections,
            "failovers": self.failovers,
            "fenced_writes": self.fenced_writes,
            "entries_replayed": self.entries_replayed,
            "checkpoints_taken": self.checkpoints_taken,
            "journal_retained_entries": self.journal_retained_entries,
            "time_to_new_leader": self.time_to_new_leader,
            "time_to_writable": self.time_to_writable,
            "metadata_lost": self.metadata_lost,
            "fsck_healthy": (self.fsck.healthy
                             if self.fsck is not None else None),
        }


def default_ha_slos(config: LeaderKillConfig) -> List:
    """The SLO set a leader-kill run is judged against."""
    window = max(config.write_interval * 15, 300.0)
    return [
        availability_slo(
            "metadata-availability",
            good_series="repro_ha_client_ops_served_total",
            bad_series="repro_ha_client_ops_failed_total",
            target=0.95, window=window,
            description="95% of client operations succeed across a "
                        "leader kill (the failover window is the budget)",
        ),
        latency_slo(
            "failover-time-to-writable",
            series="repro_ha_time_to_writable_seconds",
            threshold=60.0, target=0.99,
            window=max(config.horizon, 3600.0),
            description="the metadata plane accepts writes within 60 "
                        "simulated seconds of a leader death",
        ),
    ]


def run_leader_kill(
    config: LeaderKillConfig,
    telemetry: Optional[TelemetrySession] = None,
) -> LeaderKillResult:
    """Kill the leader mid-optimization and measure the failover.

    The scenario the HA plane exists for: an Aurora optimizer is
    reconfiguring the cluster on a period cadence, clients stream
    writes and reads, and the leader namenode dies between period
    boundaries.  A follower must win the election, replay only the
    journal tail past its last shipped checkpoint, sit in safe mode
    until block reports restore locations, and resume — including the
    optimizer, which re-points at the new leader via
    :func:`~repro.dfs.ha.rebind_aurora` and picks its period cadence
    back up (ticks that land during the outage abort cleanly).

    Acknowledged metadata must survive: after the drain,
    :func:`~repro.dfs.fsck.run_fsck` is handed every path the client
    saw acknowledged and reports any that vanished as metadata loss.
    """
    sim = Simulation()
    topology = ClusterTopology.uniform(
        config.num_racks, config.machines_per_rack, config.capacity_blocks
    )

    def make_namenode() -> Namenode:
        transfers = TransferService(
            topology, sim=sim, rng=random.Random(config.seed + 1)
        )
        return Namenode(
            topology,
            placement_policy=DefaultHdfsPolicy(random.Random(config.seed + 2)),
            sim=sim,
            transfer_service=transfers,
            default_replication=config.replication,
            default_rack_spread=config.rack_spread,
            rng=random.Random(config.seed + 3),
        )

    cluster = HaCluster(sim, config.ha_config(), make_namenode)
    namenode = cluster.start()
    heartbeats = HeartbeatService(
        sim, namenode,
        interval=config.heartbeat_interval,
        expiry=config.heartbeat_expiry,
    )
    heartbeats.start()
    cluster.heartbeats = heartbeats

    client = DfsClient(
        namenode,
        trace_sampler=(
            telemetry.sampler() if telemetry is not None else None
        ),
    )
    aurora = AuroraSystem(
        namenode,
        AuroraConfig(
            period=config.aurora_period,
            min_replication=config.replication,
            rack_spread=config.rack_spread,
        ),
    )
    cluster.on_failover.append(lambda fresh: rebind_aurora(aurora, fresh))
    cluster.on_failover.append(
        lambda fresh: setattr(client, "namenode", fresh)
    )

    if telemetry is not None:
        telemetry.install(sim)
        if not telemetry.slo.objectives:
            for objective in default_ha_slos(config):
                telemetry.add_objective(objective)

    result = LeaderKillResult(config=config)
    acknowledged: List[str] = []
    blocks: List[int] = []
    for index in range(config.num_files):
        meta = client.write_file(
            f"/ha/seed/{index}",
            num_blocks=config.blocks_per_file,
            block_size=config.block_size,
        )
        acknowledged.append(f"/ha/seed/{index}")
        blocks.extend(meta.block_ids)

    injector = FaultInjector(
        sim, namenode,
        [LeaderKillProfile(times=(config.kill_at,),
                           revive_after=config.revive_after)],
        horizon=config.horizon, seed=config.seed,
        heartbeats=heartbeats, ha=cluster,
    )
    injector.install()

    reader_rng = random.Random(config.seed + 4)
    write_counter = [0]

    def write_tick() -> None:
        path = f"/ha/stream/{write_counter[0]}"
        write_counter[0] += 1
        try:
            meta = client.write_file(
                path,
                num_blocks=config.blocks_per_file,
                block_size=config.block_size,
            )
        except (DfsError, NoLeaderError):
            # Fenced, in safe mode or leaderless: the op is the outage's
            # cost; the path was never acknowledged so fsck won't expect it.
            result.write_ops_failed += 1
            if _REG.enabled:
                _HA_OPS_FAILED.inc()
        else:
            result.write_ops_served += 1
            acknowledged.append(path)
            blocks.extend(meta.block_ids)
            if _REG.enabled:
                _HA_OPS_SERVED.inc()

    def read_tick() -> None:
        for _ in range(config.reads_per_tick):
            block = reader_rng.choice(blocks)
            reader = reader_rng.randrange(topology.num_machines)
            try:
                client.read_block(block, reader)
            except (DatanodeUnavailableError, DfsError):
                result.read_ops_failed += 1
                if _REG.enabled:
                    _HA_OPS_FAILED.inc()
            else:
                result.read_ops_served += 1
                if _REG.enabled:
                    _HA_OPS_SERVED.inc()

    def aurora_tick() -> None:
        try:
            active = cluster.active
        except NoLeaderError:
            result.aurora_periods_aborted += 1
            return
        if active.safe_mode:
            # New leader still rebuilding locations: skip this period
            # rather than optimize against an empty block map.
            result.aurora_periods_aborted += 1
            return
        try:
            aurora.optimize(sim.now)
        except SafeModeError:
            # The leader was deposed under us (FencedError) — the
            # period aborts; its usage history carries into the next.
            result.aurora_periods_aborted += 1
        else:
            result.aurora_periods_completed += 1

    def replication_tick() -> None:
        try:
            cluster.active.check_replication()
        except NoLeaderError:
            pass

    write_token = sim.schedule_periodic(config.write_interval, write_tick)
    read_token = sim.schedule_periodic(config.read_interval, read_tick)
    aurora_token = sim.schedule_periodic(config.aurora_period, aurora_tick)
    check_token = sim.schedule_periodic(
        config.replication_check_interval, replication_tick
    )

    sim.run(until=config.horizon)
    for token in (write_token, read_token, aurora_token):
        token.cancel()
    sim.run(until=config.horizon + config.drain)
    check_token.cancel()
    heartbeats.stop()
    cluster.stop()

    active = cluster.active  # drain must end with an elected leader
    active.audit()
    result.fsck = run_fsck(active, expected_paths=acknowledged)
    result.metadata_lost = sum(
        1 for violation in result.fsck.violations
        if violation.check == "missing-file"
    )
    result.files_acknowledged = len(acknowledged)
    result.elections = cluster.elections
    result.failovers = cluster.failovers
    result.fenced_writes = cluster.fenced_writes
    result.entries_shipped = cluster.entries_shipped
    result.entries_replayed = cluster.entries_replayed_last_failover
    result.checkpoints_taken = cluster.checkpoints_taken
    result.journal_retained_entries = len(cluster.log)
    if cluster.time_to_leader:
        result.time_to_new_leader = cluster.time_to_leader[0]
    if cluster.time_to_writable:
        result.time_to_writable = cluster.time_to_writable[0]
    result.timeline = list(cluster.events)
    if telemetry is not None:
        result.slo_statuses = telemetry.finish(sim.now)
    _LOG.info(
        "leader-kill run done: failovers=%d t_leader=%s t_writable=%s "
        "lost=%d write_avail=%.4f",
        result.failovers, result.time_to_new_leader,
        result.time_to_writable, result.metadata_lost,
        result.write_availability,
    )
    return result


def render_leader_kill(result: LeaderKillResult) -> str:
    """Human-readable leader-kill report."""
    config = result.config

    def fmt(value: Optional[float]) -> str:
        return f"{value:.1f}s" if value is not None else "n/a"

    lines = [
        "Leader-kill chaos "
        f"(replicas={config.num_replicas} seed={config.seed} "
        f"kill_at={config.kill_at:.0f}s horizon={config.horizon:.0f}s)",
        "",
        f"  time to new leader        {fmt(result.time_to_new_leader)}",
        f"  time to writable          {fmt(result.time_to_writable)}",
        f"  metadata lost             {result.metadata_lost} "
        f"of {result.files_acknowledged} acknowledged files",
        f"  elections / failovers     {result.elections} / "
        f"{result.failovers}",
        f"  fenced writes             {result.fenced_writes}",
        f"  journal entries replayed  {result.entries_replayed} "
        f"(tail past the last shipped checkpoint)",
        f"  checkpoints taken         {result.checkpoints_taken}",
        f"  journal retained          {result.journal_retained_entries} "
        f"entries",
        f"  entries shipped           {result.entries_shipped}",
        f"  write availability        {result.write_availability:.4f} "
        f"({result.write_ops_served} served, "
        f"{result.write_ops_failed} failed)",
        f"  read availability         {result.read_availability:.4f} "
        f"({result.read_ops_served} served, "
        f"{result.read_ops_failed} failed)",
        f"  aurora periods            {result.aurora_periods_completed} "
        f"completed, {result.aurora_periods_aborted} aborted",
    ]
    if result.fsck is not None:
        lines.append(
            "  fsck                      "
            + ("healthy"
               if result.fsck.healthy
               else f"{len(result.fsck.violations)} violation(s)")
        )
    if result.timeline:
        lines.append("")
        lines.append("  timeline:")
        for event in result.timeline:
            detail = " ".join(
                f"{key}={value}" for key, value in event.items()
                if key not in ("t", "event")
            )
            lines.append(f"    t={event['t']:>8.1f}  {event['event']:<16}"
                         f"{detail}")
    if result.slo_statuses:
        lines.append("")
        lines.append("  SLOs:")
        for status in result.slo_statuses:
            lines.append(
                f"    {status.objective.name:<28}"
                f"{'PASS' if status.compliant else 'VIOLATED':<10}"
                f"sli={status.overall_sli:.4f} "
                f"target={status.objective.target:.4f} "
                f"violation_min={status.violation_minutes:.1f}"
            )
    return "\n".join(lines)
