"""Ablation studies for the design choices DESIGN.md calls out.

* **Initial placement (E11)** — Algorithm 4's greedy controller versus
  HDFS-style random initial placement: cost before balancing and the
  work the local search needs to converge from each start.
* **Replication factors (E12)** — Algorithm 3's optimal water-filling
  versus Scarlett's priority and round-robin heuristics under the same
  budget: resulting max per-replica popularity and post-balancing cost.
* **Epsilon semantics (E10)** — measured operation counts under the
  gap- and cost-based admissibility policies against the Theorem 9
  bound.

All three run on the abstract placement model (no DES), so they are fast
enough for property-style sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.scarlett import ScarlettScheme, scarlett_factors
from repro.cluster.topology import ClusterTopology
from repro.core.admissibility import (
    RelativeCostPolicy,
    RelativeGapPolicy,
    theorem9_iteration_bound,
)
from repro.core.initial_placement import place_all_blocks
from repro.core.instance import BlockSpec, PlacementProblem
from repro.core.local_search import balance_rack_aware
from repro.core.placement import PlacementState
from repro.core.rep_factor import compute_replication_factors, max_share
from repro.experiments.report import render_table
from repro.workload.popularity import zipf_weights

__all__ = [
    "AblationInstance",
    "make_instance",
    "InitialPlacementAblation",
    "run_initial_placement_ablation",
    "FactorAblation",
    "run_factor_ablation",
    "EpsilonAblation",
    "run_epsilon_ablation",
    "render_ablations",
]


@dataclass(frozen=True)
class AblationInstance:
    """A synthetic placement instance with long-tail popularity."""

    topology: ClusterTopology
    popularities: Tuple[float, ...]
    replication: int
    rack_spread: int

    def problem(self) -> PlacementProblem:
        """Materialize the fixed-factor problem."""
        return PlacementProblem.from_popularities(
            self.topology,
            self.popularities,
            replication_factor=self.replication,
            rack_spread=self.rack_spread,
        )


def make_instance(
    num_racks: int = 6,
    machines_per_rack: int = 6,
    num_blocks: int = 300,
    replication: int = 3,
    rack_spread: int = 2,
    skew: float = 1.1,
    total_popularity: float = 10_000.0,
    seed: int = 0,
) -> AblationInstance:
    """Build a Zipf-popular instance sized like one Aurora period."""
    rng = random.Random(seed)
    weights = zipf_weights(num_blocks, skew)
    pops = [float(total_popularity * w) for w in weights]
    rng.shuffle(pops)
    capacity = max(8, (num_blocks * replication * 2) // (num_racks * machines_per_rack))
    topology = ClusterTopology.uniform(num_racks, machines_per_rack, capacity)
    return AblationInstance(
        topology=topology,
        popularities=tuple(pops),
        replication=replication,
        rack_spread=rack_spread,
    )


def _random_state(problem: PlacementProblem, seed: int) -> PlacementState:
    """HDFS-style random initial placement (spread-respecting)."""
    rng = random.Random(seed)
    state = PlacementState(problem)
    racks = list(problem.topology.racks)
    for spec in problem:
        chosen_racks = rng.sample(racks, spec.rack_spread)
        for rack in chosen_racks:
            options = [
                m for m in problem.topology.machines_in_rack(rack)
                if state.can_add(spec.block_id, m)
            ]
            state.add_replica(spec.block_id, rng.choice(options))
        while state.replica_count(spec.block_id) < spec.replication_factor:
            options = [
                m for m in problem.topology.machines
                if state.can_add(spec.block_id, m)
            ]
            state.add_replica(spec.block_id, rng.choice(options))
    return state


@dataclass
class InitialPlacementAblation:
    """E11 outcome: greedy Algorithm 4 versus random initial placement."""

    greedy_initial_cost: float
    random_initial_cost: float
    greedy_ops_to_converge: int
    random_ops_to_converge: int
    converged_cost_greedy: float
    converged_cost_random: float


def run_initial_placement_ablation(
    instance: Optional[AblationInstance] = None, seed: int = 0
) -> InitialPlacementAblation:
    """Compare Algorithm 4 against random initial placement."""
    instance = instance or make_instance(seed=seed)
    problem = instance.problem()
    greedy = PlacementState(problem)
    place_all_blocks(greedy)
    random_state = _random_state(problem, seed)
    greedy_cost = greedy.cost()
    random_cost = random_state.cost()
    greedy_stats = balance_rack_aware(greedy)
    random_stats = balance_rack_aware(random_state)
    return InitialPlacementAblation(
        greedy_initial_cost=greedy_cost,
        random_initial_cost=random_cost,
        greedy_ops_to_converge=greedy_stats.total_operations,
        random_ops_to_converge=random_stats.total_operations,
        converged_cost_greedy=greedy_stats.final_cost,
        converged_cost_random=random_stats.final_cost,
    )


@dataclass
class FactorAblation:
    """E12 outcome: max per-replica share by factor-allocation scheme."""

    aurora_max_share: float
    priority_max_share: float
    round_robin_max_share: float
    budget: int

    def aurora_wins(self) -> bool:
        """Whether Algorithm 3 is at least as good as both heuristics."""
        return (
            self.aurora_max_share <= self.priority_max_share + 1e-9
            and self.aurora_max_share <= self.round_robin_max_share + 1e-9
        )


def run_factor_ablation(
    instance: Optional[AblationInstance] = None,
    budget_extra: Optional[int] = None,
    seed: int = 0,
) -> FactorAblation:
    """Compare Algorithm 3 with Scarlett's two heuristics."""
    instance = instance or make_instance(seed=seed)
    pops = {i: p for i, p in enumerate(instance.popularities)}
    mins = {i: instance.replication for i in pops}
    min_total = sum(mins.values())
    if budget_extra is None:
        budget_extra = min_total // 2
    budget = min_total + budget_extra
    machines = instance.topology.num_machines
    aurora = compute_replication_factors(pops, mins, budget, machines)
    priority = scarlett_factors(
        pops, mins, budget_extra, ScarlettScheme.PRIORITY,
        desired_per_access=1.0, max_factor=machines,
    )
    robin = scarlett_factors(
        pops, mins, budget_extra, ScarlettScheme.ROUND_ROBIN,
        desired_per_access=1.0, max_factor=machines,
    )
    return FactorAblation(
        aurora_max_share=aurora.max_share,
        priority_max_share=max_share(pops, priority),
        round_robin_max_share=max_share(pops, robin),
        budget=budget,
    )


@dataclass
class EpsilonAblation:
    """E10 outcome: one row per epsilon and admissibility semantics."""

    rows: List[Dict[str, float]]


def run_epsilon_ablation(
    instance: Optional[AblationInstance] = None,
    epsilons: Tuple[float, ...] = (0.1, 0.3, 0.6, 0.8),
    seed: int = 0,
) -> EpsilonAblation:
    """Measure ops and final cost per epsilon under both semantics."""
    instance = instance or make_instance(seed=seed)
    problem = instance.problem()
    rows: List[Dict[str, float]] = []
    base = _random_state(problem, seed)
    for epsilon in epsilons:
        for name, policy in (
            ("gap", RelativeGapPolicy(epsilon)),
            ("cost", RelativeCostPolicy(epsilon)),
        ):
            state = base.copy()
            initial = state.cost()
            stats = balance_rack_aware(state, policy)
            bound = theorem9_iteration_bound(
                max(initial, 1e-9), max(stats.final_cost, 1e-9), epsilon
            )
            rows.append({
                "epsilon": epsilon,
                "semantics": name,
                "operations": stats.total_operations,
                "blocks_moved": stats.blocks_transferred,
                "final_cost": stats.final_cost,
                "theorem9_bound": bound,
            })
    return EpsilonAblation(rows=rows)


def render_ablations(
    initial: InitialPlacementAblation,
    factors: FactorAblation,
    epsilon: EpsilonAblation,
) -> str:
    """Render all three ablations as tables."""
    lines = ["E11: initial placement (Algorithm 4 vs random)"]
    lines.append(render_table(
        ["start", "initial cost", "ops to converge", "final cost"],
        [
            ("Algorithm 4", initial.greedy_initial_cost,
             initial.greedy_ops_to_converge, initial.converged_cost_greedy),
            ("random", initial.random_initial_cost,
             initial.random_ops_to_converge, initial.converged_cost_random),
        ],
    ))
    lines.append("")
    lines.append("E12: replication factors (Algorithm 3 vs Scarlett)")
    lines.append(render_table(
        ["scheme", "max per-replica popularity"],
        [
            ("Algorithm 3 (Aurora)", factors.aurora_max_share),
            ("Scarlett priority", factors.priority_max_share),
            ("Scarlett round-robin", factors.round_robin_max_share),
        ],
    ))
    lines.append("")
    lines.append("E10: epsilon admissibility semantics")
    lines.append(render_table(
        ["epsilon", "semantics", "ops", "blocks moved", "final cost",
         "Theorem 9 bound"],
        [
            (row["epsilon"], row["semantics"], row["operations"],
             row["blocks_moved"], row["final_cost"], row["theorem9_bound"])
            for row in epsilon.rows
        ],
    ))
    return "\n".join(lines)
