"""Bit-rot chaos: silent corruption against the data-integrity plane.

Replication answers *loss*; this scenario attacks the other half of
durability — replicas that are still present but silently wrong.  A
seeded stream of bit-rot and torn-write strikes damages stored replicas
in place (no liveness change, no error from the node) while a light
client read workload runs and a rate-limited background
:class:`~repro.dfs.integrity.BlockScrubber` sweeps the cluster.  The
run measures the race the integrity plane exists to win:

* **corrupt-read rate** — how often a client's verified read hit a
  rotten replica first (the failover makes these invisible to the
  caller; an *unverified* read path would have returned garbage);
* **time to detection** — per detector: how long each corruption
  festered before the scrubber or a client read reported it.  With the
  default knobs the scrubber's full-cluster cadence is shorter than the
  expected time for the read workload to sample any one replica, so
  scrub detection beats client detection;
* **time to repair** — from first detection until the block is back to
  full verified replication and the quarantined copies are purged;
* **durability** — blocks left with no verified replica (none, whenever
  a verified source survives: re-replication always copies from a
  verified replica and the last copy is never deleted).

Deterministic for a given config; the final state is cross-checked with
:meth:`~repro.dfs.namenode.Namenode.audit` and a deep
:func:`~repro.dfs.fsck.run_fsck` sweep with ``verify_checksums=True``,
so any rot that slipped past both detectors still fails the run's
health check instead of hiding.
"""

from __future__ import annotations

import logging
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.fsck import FsckReport, run_fsck
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.integrity import BlockScrubber, ScrubConfig
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import (
    ChecksumError,
    DatanodeUnavailableError,
    InvalidProblemError,
)
from repro.faults import BitRotProfile, FaultInjector, TornWriteProfile
from repro.obs.slo import availability_slo, latency_slo
from repro.obs.telemetry import TelemetrySession
from repro.overload.admission import AdmissionController
from repro.simulation.engine import Simulation

__all__ = [
    "BitRotConfig",
    "BitRotResult",
    "run_bit_rot",
    "render_bit_rot",
    "default_integrity_slos",
]

_LOG = logging.getLogger(__name__)


@dataclass(frozen=True)
class BitRotConfig:
    """One bit-rot run: cluster shape, rot rates and scrub cadence."""

    num_racks: int = 3
    machines_per_rack: int = 3
    capacity_blocks: int = 120
    num_files: int = 12
    blocks_per_file: int = 4
    block_size: int = 64 * 1024 * 1024
    replication: int = 3
    rack_spread: int = 2
    horizon: float = 2 * 3600.0
    heartbeat_interval: float = 3.0
    heartbeat_expiry: float = 30.0
    #: Deliberately light read workload: the scenario's headline claim
    #: is that the scrubber finds rot before clients trip over it, so
    #: reads must be sparse relative to the scrub cadence.
    read_interval: float = 60.0
    reads_per_tick: int = 2
    replication_check_interval: float = 60.0
    replication_throttle: Optional[int] = 8
    #: Per-machine mean time between silent corruption strikes.
    bitrot_mtbf: float = 3600.0
    tornwrite_mtbf: float = 2 * 3600.0
    scrub_interval: float = 30.0
    scrub_bytes_per_second: float = 4 * 64 * 1024 * 1024
    #: Admission tokens/second for scrub ticks (None = priced like
    #: re-replication traffic, the AdmissionController default).
    scrub_admission_rate: Optional[float] = None
    drain: float = 1800.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise InvalidProblemError("horizon must be positive")
        if self.read_interval <= 0:
            raise InvalidProblemError("read_interval must be positive")
        if self.bitrot_mtbf <= 0 or self.tornwrite_mtbf <= 0:
            raise InvalidProblemError("corruption MTBFs must be positive")
        if not 1 <= self.rack_spread <= self.replication:
            raise InvalidProblemError("rack_spread must be in [1, replication]")

    def scrub_config(self) -> ScrubConfig:
        """The scrubber slice of this config."""
        return ScrubConfig(
            interval=self.scrub_interval,
            bytes_per_second=self.scrub_bytes_per_second,
        )


@dataclass
class BitRotResult:
    """What a bit-rot run observed."""

    config: BitRotConfig
    total_blocks: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    reads_attempted: int = 0
    reads_served: int = 0
    reads_failed: int = 0
    #: Reads that raised ChecksumError: no replica served verified data.
    reads_failed_checksum: int = 0
    #: Read attempts that hit a corrupt replica and failed over.
    corrupt_read_attempts: int = 0
    read_failovers: int = 0
    #: Corrupt-replica reports per detector ("scrub" / "client").
    detections: Dict[str, int] = field(default_factory=dict)
    #: Seconds from corruption to detection, per detector.
    detection_latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: Seconds from first detection to full verified replication.
    repair_times: List[float] = field(default_factory=list)
    episodes_unrepaired: int = 0
    quarantined_remaining: int = 0
    replicas_purged: int = 0
    blocks_permanently_lost: int = 0
    replications_completed: int = 0
    scrub_replicas_scanned: int = 0
    scrub_bytes_scanned: int = 0
    scrub_corrupt_found: int = 0
    scrub_full_scans: int = 0
    scrub_ticks_deferred: int = 0
    scrub_last_scan_duration: Optional[float] = None
    fsck: Optional[FsckReport] = None
    slo_statuses: List = field(default_factory=list)

    @property
    def corrupt_read_rate(self) -> float:
        """Fraction of read attempts that first hit a corrupt replica."""
        if self.reads_attempted == 0:
            return 0.0
        return self.corrupt_read_attempts / self.reads_attempted

    @property
    def episodes_repaired(self) -> int:
        """Corruption episodes driven back to full verified replication."""
        return len(self.repair_times)

    @property
    def repair_rate(self) -> float:
        """Fraction of detected corruption episodes fully repaired."""
        total = self.episodes_repaired + self.episodes_unrepaired
        if total == 0:
            return 1.0
        return self.episodes_repaired / total

    def mean_detection_seconds(self, detector: str) -> Optional[float]:
        """Mean corruption-to-detection latency for one detector."""
        latencies = self.detection_latencies.get(detector)
        if not latencies:
            return None
        return statistics.fmean(latencies)

    @property
    def scrub_beats_client(self) -> Optional[bool]:
        """Whether the scrubber won the detection race.

        True when mean scrub latency undercuts mean client latency —
        or when the scrubber found every corruption before any client
        read tripped over one (the strongest possible win).  None only
        when nothing was ever detected.
        """
        scrub = self.mean_detection_seconds("scrub")
        client = self.mean_detection_seconds("client")
        if scrub is None and client is None:
            return None
        if scrub is None:
            return False
        if client is None:
            return True
        return scrub < client

    @property
    def mean_repair_seconds(self) -> float:
        """Mean detection-to-repair time across episodes (0 if none)."""
        if not self.repair_times:
            return 0.0
        return statistics.fmean(self.repair_times)

    @property
    def max_repair_seconds(self) -> float:
        """Worst-case detection-to-repair time (0 if never corrupted)."""
        return max(self.repair_times, default=0.0)

    def summary(self) -> Dict[str, object]:
        """Deterministic scalars for regression baselines."""
        return {
            "total_blocks": self.total_blocks,
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "reads_attempted": self.reads_attempted,
            "reads_served": self.reads_served,
            "reads_failed": self.reads_failed,
            "reads_failed_checksum": self.reads_failed_checksum,
            "corrupt_read_attempts": self.corrupt_read_attempts,
            "detections": dict(sorted(self.detections.items())),
            "episodes_repaired": self.episodes_repaired,
            "episodes_unrepaired": self.episodes_unrepaired,
            "quarantined_remaining": self.quarantined_remaining,
            "replicas_purged": self.replicas_purged,
            "blocks_permanently_lost": self.blocks_permanently_lost,
            "scrub_full_scans": self.scrub_full_scans,
            "scrub_corrupt_found": self.scrub_corrupt_found,
            "fsck_healthy": (self.fsck.healthy
                             if self.fsck is not None else None),
        }


def default_integrity_slos(config: BitRotConfig) -> List:
    """The SLO set a bit-rot run is judged against."""
    window = max(config.read_interval * 15, 600.0)
    return [
        availability_slo(
            "data-durability",
            good_series="repro_dfs_reads_total",
            bad_series="repro_dfs_read_errors_total",
            target=0.999, window=window,
            description="99.9% of block reads return verified data from "
                        "some replica while rot accumulates",
        ),
        latency_slo(
            "corruption-time-to-detection",
            series="repro_dfs_integrity_detection_seconds",
            threshold=600.0, target=0.9,
            window=max(window * 6, 3600.0),
            description="90% of corrupt replicas are detected within 10 "
                        "simulated minutes of the damage",
        ),
        latency_slo(
            "corruption-time-to-repair",
            series="repro_dfs_integrity_repair_seconds",
            threshold=900.0, target=0.9,
            window=max(window * 6, 3600.0),
            description="90% of corruption episodes return to full "
                        "verified replication within 15 simulated minutes",
        ),
    ]


def run_bit_rot(
    config: BitRotConfig,
    telemetry: Optional[TelemetrySession] = None,
) -> BitRotResult:
    """Run one seeded silent-corruption schedule and collect the result.

    Deterministic for a given config.  Corruption strikes are one-shot
    (rot has no recovery event — only re-replication repairs it), so
    after the horizon the run simply drains long enough for the
    scrubber to complete further full passes and the prioritized
    repair queue to settle; :meth:`~repro.dfs.namenode.Namenode.audit`
    and a ``verify_checksums=True`` fsck then assert nothing slipped
    through.
    """
    sim = Simulation()
    topology = ClusterTopology.uniform(
        config.num_racks, config.machines_per_rack, config.capacity_blocks
    )
    transfers = TransferService(
        topology, sim=sim, rng=random.Random(config.seed + 1)
    )
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(config.seed + 2)),
        sim=sim,
        transfer_service=transfers,
        default_replication=config.replication,
        default_rack_spread=config.rack_spread,
        rng=random.Random(config.seed + 3),
        replication_throttle=config.replication_throttle,
    )
    # Scrub I/O goes through the same admission gate as repair traffic.
    namenode.admission = AdmissionController(
        scrub_rate=config.scrub_admission_rate,
    )
    heartbeats = HeartbeatService(
        sim, namenode,
        interval=config.heartbeat_interval,
        expiry=config.heartbeat_expiry,
    )
    heartbeats.start()
    client = DfsClient(
        namenode,
        trace_sampler=(
            telemetry.sampler() if telemetry is not None else None
        ),
    )
    if telemetry is not None:
        telemetry.install(sim)
        if not telemetry.slo.objectives:
            for objective in default_integrity_slos(config):
                telemetry.add_objective(objective)

    blocks: List[int] = []
    for index in range(config.num_files):
        meta = client.write_file(
            f"/bitrot/{index}",
            num_blocks=config.blocks_per_file,
            block_size=config.block_size,
        )
        blocks.extend(meta.block_ids)

    injector = FaultInjector(
        sim, namenode,
        [
            BitRotProfile(mtbf=config.bitrot_mtbf),
            TornWriteProfile(mtbf=config.tornwrite_mtbf),
        ],
        horizon=config.horizon, seed=config.seed, heartbeats=heartbeats,
    )
    injector.install()

    scrubber = BlockScrubber(sim, namenode, config.scrub_config())
    scrubber.start()

    result = BitRotResult(config=config, total_blocks=len(blocks))
    reader_rng = random.Random(config.seed + 4)

    def read_tick() -> None:
        for _ in range(config.reads_per_tick):
            block = reader_rng.choice(blocks)
            reader = reader_rng.randrange(topology.num_machines)
            result.reads_attempted += 1
            try:
                outcome = client.read_block(block, reader)
            except ChecksumError:
                # Every live replica failed verification — the client
                # surfaced an error rather than corrupt bytes.
                result.reads_failed += 1
                result.reads_failed_checksum += 1
            except DatanodeUnavailableError:
                result.reads_failed += 1
            else:
                result.reads_served += 1
                if outcome.failed_over:
                    result.read_failovers += 1

    reader_token = sim.schedule_periodic(config.read_interval, read_tick)
    check_token = sim.schedule_periodic(
        config.replication_check_interval, namenode.check_replication
    )

    sim.run(until=config.horizon)
    reader_token.cancel()
    # Rot is one-shot and bounded by the horizon; the drain just has to
    # be long enough for full scrub passes over the post-storm cluster
    # and for the repair queue to settle.
    sim.run(until=config.horizon + config.drain)
    check_token.cancel()
    scrubber.stop()
    heartbeats.stop()

    namenode.audit()  # quarantine vs block map must reconcile
    result.fsck = run_fsck(namenode, verify_checksums=True)

    ledger = namenode.integrity
    result.faults_injected = dict(injector.injected)
    result.corrupt_read_attempts = client.checksum_failures
    result.detections = dict(ledger.detections)
    result.detection_latencies = {
        detector: list(latencies)
        for detector, latencies in ledger.detection_latencies.items()
    }
    result.repair_times = list(ledger.repair_times)
    result.episodes_unrepaired = sum(
        1 for block in set(blocks) if ledger.has_open_episode(block)
    )
    result.quarantined_remaining = ledger.quarantined_count
    result.replicas_purged = ledger.replicas_purged
    result.blocks_permanently_lost = sum(
        1 for block in set(blocks)
        if not namenode.verified_locations(block)
    )
    result.replications_completed = namenode.replications_completed
    result.scrub_replicas_scanned = scrubber.replicas_scanned
    result.scrub_bytes_scanned = scrubber.bytes_scanned
    result.scrub_corrupt_found = scrubber.corrupt_found
    result.scrub_full_scans = scrubber.full_scans
    result.scrub_ticks_deferred = scrubber.ticks_deferred
    result.scrub_last_scan_duration = scrubber.last_scan_duration
    if telemetry is not None:
        result.slo_statuses = telemetry.finish(sim.now)
    _LOG.info(
        "bit-rot run done: strikes=%s detections=%s repaired=%d/%d "
        "lost=%d corrupt_read_rate=%.4f",
        result.faults_injected, result.detections,
        result.episodes_repaired,
        result.episodes_repaired + result.episodes_unrepaired,
        result.blocks_permanently_lost, result.corrupt_read_rate,
    )
    return result


def render_bit_rot(result: BitRotResult) -> str:
    """The bit-rot run as a readable report."""
    config = result.config

    def fmt_latency(detector: str) -> str:
        mean = result.mean_detection_seconds(detector)
        count = result.detections.get(detector, 0)
        if mean is None:
            return f"{count} detections"
        return f"{count} detections, mean latency {mean:.1f}s"

    lines = [
        "bit-rot chaos "
        f"(seed={config.seed}, horizon={config.horizon / 3600.0:.1f}h, "
        f"bitrot_mtbf={config.bitrot_mtbf:.0f}s, "
        f"tornwrite_mtbf={config.tornwrite_mtbf:.0f}s, "
        f"scrub={config.scrub_interval:.0f}s/"
        f"{config.scrub_bytes_per_second / (1024 * 1024):.0f}MBps)",
        "",
        f"  blocks tracked            {result.total_blocks}",
        f"  corruption strikes        "
        + (", ".join(
            f"{kind}={count}"
            for kind, count in sorted(result.faults_injected.items())
        ) or "none"),
        "",
        f"  reads attempted           {result.reads_attempted}",
        f"  reads served verified     {result.reads_served}",
        f"  corrupt replicas hit      {result.corrupt_read_attempts} "
        f"(rate {result.corrupt_read_rate:.4f}, all failed over)",
        f"  reads failed (checksum)   {result.reads_failed_checksum}",
        f"  reads failed (other)      "
        f"{result.reads_failed - result.reads_failed_checksum}",
        "",
        f"  detection by scrubber     {fmt_latency('scrub')}",
        f"  detection by client read  {fmt_latency('client')}",
        f"  scrubber beats client     "
        + {True: "yes", False: "NO", None: "n/a"}[result.scrub_beats_client],
        "",
        f"  episodes repaired         {result.episodes_repaired} "
        f"(rate {result.repair_rate:.4f})",
        f"  episodes still open       {result.episodes_unrepaired}",
        f"  mean time to repair       {result.mean_repair_seconds:.1f}s",
        f"  max time to repair        {result.max_repair_seconds:.1f}s",
        f"  corrupt replicas purged   {result.replicas_purged}",
        f"  still quarantined         {result.quarantined_remaining}",
        f"  blocks permanently lost   {result.blocks_permanently_lost}",
        "",
        f"  scrub full passes         {result.scrub_full_scans}"
        + (f" (last took {result.scrub_last_scan_duration:.1f}s)"
           if result.scrub_last_scan_duration is not None else ""),
        f"  scrub replicas verified   {result.scrub_replicas_scanned}",
        f"  scrub bytes read back     {result.scrub_bytes_scanned}",
        f"  scrub ticks deferred      {result.scrub_ticks_deferred}",
        f"  re-replications completed {result.replications_completed}",
    ]
    if result.fsck is not None:
        lines.append(
            "  deep fsck                 "
            + ("healthy"
               if result.fsck.healthy
               else f"{len(result.fsck.violations)} violation(s)")
        )
    if result.slo_statuses:
        lines.append("")
        lines.append("  SLOs:")
        for status in result.slo_statuses:
            lines.append(
                f"    {status.objective.name:<28}"
                f"{'PASS' if status.compliant else 'VIOLATED':<10}"
                f"sli={status.overall_sli:.4f} "
                f"target={status.objective.target:.4f} "
                f"violation_min={status.violation_minutes:.1f}"
            )
    return "\n".join(lines)
