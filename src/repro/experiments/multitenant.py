"""Multi-tenant study: quota-bounded replication on a shared cluster.

A scenario the paper's mechanisms enable but never evaluates: two
tenants share one cluster and one Aurora instance; a directory space
quota caps how much of the replication budget the noisy tenant's hot
data may consume, protecting the quiet tenant's locality.

Built entirely from library pieces: two synthesized traces merged with
:func:`repro.workload.transform.merge_traces`, per-tenant directories,
:class:`repro.dfs.quota.QuotaManager` on the noisy tenant, and per-tenant
locality accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.quota import QuotaManager
from repro.dfs.replication import TransferService
from repro.experiments.report import render_table
from repro.scheduler.capacity import MapReduceScheduler
from repro.scheduler.delay import DelaySchedulingPolicy
from repro.scheduler.job import Job, TaskLocality
from repro.scheduler.runtime import TaskRuntimeModel
from repro.simulation.engine import Simulation
from repro.workload.transform import merge_traces
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace

__all__ = ["TenantOutcome", "MultiTenantResult", "run_multitenant_study",
           "render_multitenant"]

_SECONDS_PER_HOUR = 3600.0


@dataclass
class TenantOutcome:
    """Per-tenant locality and replication accounting."""

    name: str
    local_tasks: int = 0
    remote_tasks: int = 0
    replicated_blocks: int = 0

    @property
    def remote_fraction(self) -> float:
        """Remote-task fraction for this tenant's jobs."""
        total = self.local_tasks + self.remote_tasks
        if total == 0:
            return 0.0
        return self.remote_tasks / total


@dataclass
class MultiTenantResult:
    """Outcomes with and without the quota on the noisy tenant."""

    without_quota: Dict[str, TenantOutcome]
    with_quota: Dict[str, TenantOutcome]
    quota_rejections: int


def _tenant_traces(seed: int, duration_hours: float):
    noisy = generate_yahoo_trace(YahooTraceConfig(
        num_files=40, jobs_per_hour=400.0, duration_hours=duration_hours,
        mean_task_duration=90.0, popularity_skew=1.3, seed=seed,
    ))
    quiet = generate_yahoo_trace(YahooTraceConfig(
        num_files=40, jobs_per_hour=120.0, duration_hours=duration_hours,
        mean_task_duration=90.0, popularity_skew=0.8, seed=seed + 1,
    ))
    return noisy, quiet


def _run(
    seed: int,
    duration_hours: float,
    noisy_quota_headroom: Optional[int],
) -> Tuple[Dict[str, TenantOutcome], int]:
    sim = Simulation()
    topo = ClusterTopology.uniform(6, 5, capacity=300)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed + 2)),
        sim=sim,
        transfer_service=TransferService(topo, sim=sim,
                                         rng=random.Random(seed + 3)),
        rng=random.Random(seed + 4),
    )
    aurora = AuroraSystem(nn, AuroraConfig(
        epsilon=0.1, replication_budget=2500,
    ))
    quotas = QuotaManager(nn)
    nn.mkdir("/noisy")
    nn.mkdir("/quiet")
    token = sim.schedule_periodic(_SECONDS_PER_HOUR, aurora.optimize)

    scheduler = MapReduceScheduler(
        sim, nn, slots_per_machine=4,
        runtime=TaskRuntimeModel(jitter=0.05, rng=random.Random(seed + 5)),
        delay_policy=DelaySchedulingPolicy(),
        rng=random.Random(seed + 6),
    )

    noisy, quiet = _tenant_traces(seed, duration_hours)
    merged = merge_traces(noisy, quiet)
    tenant_of_file: Dict[int, str] = {}
    for f in noisy.files:
        tenant_of_file[f.file_id] = "noisy"
    offset = 1 + max(f.file_id for f in noisy.files)
    for f in quiet.files:
        tenant_of_file[f.file_id + offset] = "quiet"

    file_blocks: Dict[int, List[int]] = {}
    block_tenant: Dict[int, str] = {}
    for f in merged.files:
        tenant = tenant_of_file[f.file_id]
        meta = nn.create_file(
            f"/{tenant}/{f.file_id}", num_blocks=f.num_blocks
        )
        file_blocks[f.file_id] = list(meta.block_ids)
        for block in meta.block_ids:
            block_tenant[block] = tenant

    if noisy_quota_headroom is not None:
        # Cap the noisy tenant just above its base footprint so Aurora
        # can only spend a bounded slice of the budget on it.
        _files, base = quotas.usage("/noisy")
        quotas.set_quota(
            "/noisy", max_replicated_blocks=base + noisy_quota_headroom
        )

    jobs: Dict[int, str] = {}
    for tj in merged.jobs:
        tenant = tenant_of_file[tj.file_id]
        job = Job(job_id=tj.job_id, submit_time=tj.submit_time,
                  block_ids=file_blocks[tj.file_id],
                  task_duration=tj.task_duration)
        jobs[tj.job_id] = tenant
        sim.schedule_at(tj.submit_time, lambda j=job: scheduler.submit_job(j))

    sim.run(until=merged.horizon)
    token.cancel()
    sim.run(until=merged.horizon + 4 * _SECONDS_PER_HOUR)

    outcomes = {
        "noisy": TenantOutcome(name="noisy"),
        "quiet": TenantOutcome(name="quiet"),
    }
    for job in scheduler.completed_jobs:
        tenant = jobs[job.job_id]
        for task in job.tasks:
            if task.locality is None:
                continue
            if task.locality is TaskLocality.NODE_LOCAL:
                outcomes[tenant].local_tasks += 1
            else:
                outcomes[tenant].remote_tasks += 1
    for block, tenant in block_tenant.items():
        extra = nn.blockmap.meta(block).replication_factor - 3
        if extra > 0:
            outcomes[tenant].replicated_blocks += extra
    return outcomes, quotas.rejections


def run_multitenant_study(
    seed: int = 0,
    duration_hours: float = 2.0,
    noisy_quota_headroom: int = 40,
) -> MultiTenantResult:
    """Run the shared cluster with and without the noisy tenant's quota.

    ``noisy_quota_headroom`` is how many extra replicated blocks beyond
    its base footprint the noisy tenant is allowed.
    """
    unbounded, _ = _run(seed, duration_hours, noisy_quota_headroom=None)
    bounded, rejections = _run(
        seed, duration_hours, noisy_quota_headroom=noisy_quota_headroom
    )
    return MultiTenantResult(
        without_quota=unbounded,
        with_quota=bounded,
        quota_rejections=rejections,
    )


def render_multitenant(result: MultiTenantResult) -> str:
    """Table: per-tenant locality and extra replicas, both regimes."""
    rows = []
    for regime, outcomes in (("no quota", result.without_quota),
                             ("quota on /noisy", result.with_quota)):
        for tenant in ("noisy", "quiet"):
            outcome = outcomes[tenant]
            rows.append((
                regime, tenant,
                outcome.remote_fraction * 100,
                outcome.replicated_blocks,
            ))
    table = render_table(
        ["regime", "tenant", "remote %", "extra replicas"], rows
    )
    return (
        "Multi-tenant study (E17)\n"
        f"{table}\n"
        f"quota rejections absorbed by Aurora: {result.quota_rejections}"
    )
