"""Experiment harnesses regenerating the paper's evaluation section."""

from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
    run_experiment,
)
from repro.experiments.report import (
    cdf_series,
    format_number,
    render_cdf,
    render_table,
)

__all__ = [
    "ClusterConfig",
    "ExperimentConfig",
    "RunResult",
    "SystemKind",
    "run_experiment",
    "cdf_series",
    "format_number",
    "render_cdf",
    "render_table",
]
