"""Figure 5 — Case 3: dynamic replication, Aurora versus Scarlett.

Both systems get the same extra-replica budget (the paper used beta =
70 000 additional blocks on its 845-machine trace; the default here
scales proportionally to the workload).  The paper's headline: Scarlett
already halves remote tasks versus stock HDFS, and Aurora cuts them a
further 26.9%, with near-perfect load balancing and the movement
overhead dropping to fractions of a block per machine per hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.fig3 import DEFAULT_EPSILONS, default_trace
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
)
from repro.experiments.report import cdf_series, render_table
from repro.experiments.runner import TrialCase, run_trials
from repro.workload.trace import WorkloadTrace

__all__ = ["Fig5Result", "run_fig5", "render_fig5", "default_budget"]


def default_budget(trace: WorkloadTrace) -> int:
    """Extra-replica budget scaled from the paper's beta.

    The paper grants 70 000 additional blocks; relative to its trace that
    is on the order of half the base replica count, so we default to
    ``0.5 * 3 * total_blocks`` extra replicas.
    """
    return max(1, (3 * trace.total_blocks) // 2)


@dataclass
class Fig5Result:
    """Scarlett baseline plus Aurora runs per epsilon."""

    scarlett: RunResult
    aurora: Dict[float, RunResult] = field(default_factory=dict)

    def best_reduction(self) -> float:
        """Largest remote-task reduction versus Scarlett."""
        base = self.scarlett.remote_tasks_per_hour
        if base == 0:
            return 0.0
        best = min(run.remote_tasks_per_hour for run in self.aurora.values())
        return (base - best) / base


def _case_config(
    system: SystemKind,
    epsilon: float,
    cluster: ClusterConfig,
    budget_extra: int,
    seed: int,
) -> ExperimentConfig:
    return ExperimentConfig(
        system=system,
        cluster=cluster,
        replication=3,
        rack_spread=2,
        epsilon=epsilon,
        budget_extra_blocks=budget_extra,
        seed=seed,
    )


def run_fig5(
    trace: Optional[WorkloadTrace] = None,
    cluster: Optional[ClusterConfig] = None,
    epsilons: Tuple[float, ...] = DEFAULT_EPSILONS,
    budget_extra: Optional[int] = None,
    seed: int = 0,
    jobs: int = 1,
) -> Fig5Result:
    """Regenerate Figure 5's data points (``jobs`` fans cases out)."""
    trace = trace or default_trace(seed)
    cluster = cluster or ClusterConfig()
    budget = default_budget(trace) if budget_extra is None else budget_extra
    cases = [TrialCase(
        label="scarlett",
        trace=trace,
        config=_case_config(SystemKind.SCARLETT, 0.0, cluster, budget, seed),
    )]
    for epsilon in epsilons:
        cases.append(TrialCase(
            label=f"eps={epsilon}",
            trace=trace,
            config=_case_config(
                SystemKind.AURORA, epsilon, cluster, budget, seed
            ),
        ))
    runs = run_trials(cases, jobs=jobs)
    result = Fig5Result(scarlett=runs[0])
    for epsilon, run in zip(epsilons, runs[1:]):
        result.aurora[epsilon] = run
    return result


def render_fig5(result: Fig5Result) -> str:
    """Render the three panels as the paper's rows/series."""
    rows = [(
        "Scarlett",
        result.scarlett.remote_tasks_per_hour,
        result.scarlett.remote_fraction * 100,
        result.scarlett.data_movement_per_machine_per_hour,
    )]
    for epsilon, run in sorted(result.aurora.items()):
        rows.append((
            f"Aurora eps={epsilon}",
            run.remote_tasks_per_hour,
            run.remote_fraction * 100,
            run.data_movement_per_machine_per_hour,
        ))
    panel_a = render_table(
        ["system", "remote tasks/h", "remote %", "moves+reps/machine/h"],
        rows,
    )
    lines = ["Figure 5(a,c): remote tasks and movement overhead", panel_a, ""]
    lines.append("Figure 5(b): machine load CDF (tasks per machine)")
    cdf_rows = []
    for value, prob in cdf_series(result.scarlett.machine_task_loads, points=5):
        cdf_rows.append(("Scarlett", value, prob))
    for epsilon, run in sorted(result.aurora.items()):
        for value, prob in cdf_series(run.machine_task_loads, points=5):
            cdf_rows.append((f"eps={epsilon}", value, prob))
    lines.append(render_table(["series", "load", "P(X<=x)"], cdf_rows))
    lines.append("")
    lines.append(
        "max remote-task reduction vs Scarlett: "
        f"{result.best_reduction() * 100:.1f}% (paper: 26.9%)"
    )
    return "\n".join(lines)
