"""End-to-end experiment harness.

Builds the full stack — DES + DFS + scheduler + (optionally) Aurora or
Scarlett — loads a workload trace, replays its job stream and collects
the metrics the paper's figures report:

* average remote tasks per hour (Figures 3a/4a/5a);
* per-machine task counts, whose CDF is the "machine load" distribution
  (Figures 3b/4b/5b);
* block movements per machine per hour (Figures 3c/4c/5c);
* the fraction of remote tasks, per-job completion times and block
  movement durations (Figure 6).

Cluster scale defaults to a 13-rack cluster like the paper's, with 13
machines per rack instead of 65 so the harness runs on a laptop; pass
``machines_per_rack=65`` for the paper's full 845-machine setup.
"""

from __future__ import annotations

import enum
import logging
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.baselines.scarlett import ScarlettConfig, ScarlettScheme, ScarlettSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import InvalidProblemError
from repro.obs.exporters import write_snapshot
from repro.obs.telemetry import TelemetrySession
from repro.scheduler.capacity import MapReduceScheduler
from repro.scheduler.delay import DelaySchedulingPolicy
from repro.scheduler.runtime import TaskRuntimeModel
from repro.simulation.engine import Simulation
from repro.workload.trace import WorkloadTrace
from repro.scheduler.job import Job

__all__ = ["SystemKind", "ClusterConfig", "ExperimentConfig", "RunResult",
           "run_experiment"]

_LOG = logging.getLogger(__name__)

_SECONDS_PER_HOUR = 3600.0


class SystemKind(enum.Enum):
    """Which block management system drives the run."""

    HDFS = "hdfs"
    SCARLETT = "scarlett"
    AURORA = "aurora"


@dataclass(frozen=True)
class ClusterConfig:
    """Physical cluster shape.

    Defaults keep the paper's 13 racks but scale machines per rack (65 to
    5) and task slots (14 to 4) down together so the calibrated default
    workload drives the same hot-machine slot contention the paper's
    845-machine trace produced; pass ``machines_per_rack=65,
    slots_per_machine=14`` for the full-scale setup.
    """

    num_racks: int = 13
    machines_per_rack: int = 5
    capacity_blocks: int = 200
    slots_per_machine: int = 4

    @property
    def num_machines(self) -> int:
        """Total machines."""
        return self.num_racks * self.machines_per_rack

    def topology(self) -> ClusterTopology:
        """Materialize the topology."""
        return ClusterTopology.uniform(
            self.num_racks, self.machines_per_rack, self.capacity_blocks
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment run: system, cluster and algorithm knobs."""

    system: SystemKind
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    replication: int = 3
    rack_spread: int = 2
    epsilon: float = 0.1
    period: float = _SECONDS_PER_HOUR
    window: float = 2 * _SECONDS_PER_HOUR
    max_replication_ops: int = 20_000
    budget_extra_blocks: Optional[int] = None
    delay_scheduling_skips: int = 3
    compression_ratio: float = 1.0
    drain_hours: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.rack_spread <= self.replication:
            raise InvalidProblemError(
                "rack_spread must be in [1, replication]"
            )
        if self.drain_hours < 0:
            raise InvalidProblemError("drain_hours must be non-negative")


@dataclass
class RunResult:
    """Everything a figure needs from one run."""

    system: SystemKind
    epsilon: float
    horizon_hours: float
    num_machines: int
    local_tasks: int = 0
    remote_tasks: int = 0
    machine_task_loads: List[int] = field(default_factory=list)
    moves_completed: int = 0
    replications_completed: int = 0
    movement_durations: List[float] = field(default_factory=list)
    job_completions: Dict[int, float] = field(default_factory=dict)
    jobs_completed: int = 0
    jobs_submitted: int = 0

    @property
    def total_tasks(self) -> int:
        """Launched map tasks."""
        return self.local_tasks + self.remote_tasks

    @property
    def remote_fraction(self) -> float:
        """Paper's locality metric: remote tasks over all tasks."""
        if self.total_tasks == 0:
            return 0.0
        return self.remote_tasks / self.total_tasks

    @property
    def remote_tasks_per_hour(self) -> float:
        """Average remote tasks per simulated hour (Figures 3a/4a/5a)."""
        if self.horizon_hours == 0:
            return 0.0
        return self.remote_tasks / self.horizon_hours

    @property
    def moves_per_machine_per_hour(self) -> float:
        """Block migrations per machine per hour (Figures 3c/4c/5c)."""
        denominator = self.num_machines * self.horizon_hours
        if denominator == 0:
            return 0.0
        return self.moves_completed / denominator

    @property
    def data_movement_per_machine_per_hour(self) -> float:
        """Migrations plus replications per machine-hour (Figure 5c)."""
        denominator = self.num_machines * self.horizon_hours
        if denominator == 0:
            return 0.0
        return (self.moves_completed + self.replications_completed) / denominator


def run_experiment(
    trace: WorkloadTrace,
    config: ExperimentConfig,
    metrics_out: Optional[Path] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> RunResult:
    """Replay ``trace`` under ``config`` and collect the metrics.

    Deterministic for a given (trace, config) pair.  The job stream runs
    to its horizon, periodic optimizers are then cancelled, and the
    simulation drains (bounded by ``drain_hours``) so in-flight jobs and
    transfers finish.

    When ``metrics_out`` is given, a JSON snapshot of the observability
    registry (and tracer spans) is written there after the drain.  The
    registry must already be enabled (``repro.obs.enable()``) for the
    snapshot to contain anything; this function neither enables nor
    resets it, so callers control accumulation across runs.

    When ``telemetry`` is given, the session's recorder is installed on
    this run's simulation clock (and on the Aurora period loop, if any),
    and :meth:`~repro.obs.telemetry.TelemetrySession.finish` is called
    after the drain so SLOs evaluate over the full run.  The session
    resets the registry on install — don't combine with cross-run
    accumulation.
    """
    _LOG.info(
        "run start system=%s machines=%d epsilon=%.2f seed=%d",
        config.system.value, config.cluster.num_machines, config.epsilon,
        config.seed,
    )
    sim = Simulation()
    if telemetry is not None:
        telemetry.install(sim)
    topology = config.cluster.topology()
    transfers = TransferService(
        topology,
        sim=sim,
        compression_ratio=config.compression_ratio,
        rng=random.Random(config.seed + 1),
    )
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(config.seed + 2)),
        sim=sim,
        transfer_service=transfers,
        default_replication=config.replication,
        default_rack_spread=config.rack_spread,
        rng=random.Random(config.seed + 3),
    )
    tokens = []

    aurora: Optional[AuroraSystem] = None
    scarlett: Optional[ScarlettSystem] = None
    if config.system is SystemKind.AURORA:
        budget = None
        if config.budget_extra_blocks is not None:
            budget = (
                trace.total_blocks * config.replication
                + config.budget_extra_blocks
            )
        aurora = AuroraSystem(
            namenode,
            AuroraConfig(
                epsilon=config.epsilon,
                window=config.window,
                period=config.period,
                max_replication_ops=config.max_replication_ops,
                replication_budget=budget,
                min_replication=config.replication,
                rack_spread=config.rack_spread,
            ),
        )
        if telemetry is not None:
            aurora.telemetry = telemetry.recorder
        tokens.append(
            sim.schedule_periodic(config.period, aurora.optimize)
        )
    elif config.system is SystemKind.SCARLETT:
        extra = config.budget_extra_blocks or 0
        scarlett = ScarlettSystem(
            namenode,
            ScarlettConfig(
                budget_blocks=extra,
                scheme=ScarlettScheme.PRIORITY,
                base_replication=config.replication,
                window=config.window,
                period=config.period,
            ),
        )
        tokens.append(
            sim.schedule_periodic(config.period, scarlett.optimize)
        )

    scheduler = MapReduceScheduler(
        sim,
        namenode,
        slots_per_machine=config.cluster.slots_per_machine,
        runtime=TaskRuntimeModel(jitter=0.05, rng=random.Random(config.seed + 4)),
        delay_policy=DelaySchedulingPolicy(
            max_skips=config.delay_scheduling_skips
        ),
        rng=random.Random(config.seed + 5),
    )

    # Load the trace's files into the DFS before the job stream starts.
    file_blocks: Dict[int, List[int]] = {}
    for trace_file in trace.files:
        meta = namenode.create_file(
            f"/data/{trace_file.file_id}",
            num_blocks=trace_file.num_blocks,
            block_size=trace_file.block_size,
            replication=config.replication,
            rack_spread=config.rack_spread,
        )
        file_blocks[trace_file.file_id] = list(meta.block_ids)
    # File loading happens at t=0 and costs no measured movement.
    setup_moves = namenode.moves_completed
    setup_replications = namenode.replications_completed
    setup_durations = len(transfers.durations)

    for trace_job in trace.jobs:
        job = Job(
            job_id=trace_job.job_id,
            submit_time=trace_job.submit_time,
            block_ids=file_blocks[trace_job.file_id],
            task_duration=trace_job.task_duration,
        )
        sim.schedule_at(
            trace_job.submit_time,
            lambda job=job: scheduler.submit_job(job),
        )

    horizon = trace.horizon
    sim.run(until=horizon)
    for token in tokens:
        token.cancel()
    sim.run(until=horizon + config.drain_hours * _SECONDS_PER_HOUR)

    horizon_hours = max(horizon / _SECONDS_PER_HOUR, 1e-9)
    result = RunResult(
        system=config.system,
        epsilon=config.epsilon,
        horizon_hours=horizon_hours,
        num_machines=config.cluster.num_machines,
        local_tasks=int(scheduler.metrics.counters.get("local_tasks")),
        remote_tasks=int(scheduler.metrics.counters.get("remote_tasks")),
        machine_task_loads=scheduler.tasks_per_machine(),
        moves_completed=namenode.moves_completed - setup_moves,
        replications_completed=(
            namenode.replications_completed - setup_replications
        ),
        movement_durations=transfers.durations.samples[setup_durations:],
        job_completions={
            job.job_id: job.completion_time
            for job in scheduler.completed_jobs
        },
        jobs_completed=scheduler.jobs_completed,
        jobs_submitted=scheduler.jobs_submitted,
    )
    _LOG.info(
        "run done system=%s jobs=%d/%d remote_fraction=%.3f moves=%d",
        config.system.value, result.jobs_completed, result.jobs_submitted,
        result.remote_fraction, result.moves_completed,
    )
    if telemetry is not None:
        telemetry.finish(sim.now)
    if metrics_out is not None:
        write_snapshot(metrics_out)
        _LOG.info("metrics snapshot written to %s", metrics_out)
    return result
