"""Parameter sensitivity: the operator knobs the paper leaves open.

Section V: "the exact value of W can be controlled by the operator" and
"we can limit the maximum number of iterations in Algorithm 3 to a
constant K, which is a tunable parameter".  This study sweeps both on
the standard workload so an operator can see what each knob buys:

* **W (usage window)** — too short and the popularity estimate is
  noisy (churny reconfiguration); too long and Aurora reacts slowly to
  drift;
* **K (replication-op cap)** — bounds per-period replication traffic at
  the price of converging to the optimal factors over more periods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
)
from repro.experiments.report import render_table
from repro.experiments.runner import TrialCase, run_trials
from repro.workload.trace import WorkloadTrace

__all__ = [
    "SensitivityRow",
    "run_window_sensitivity",
    "run_cap_sensitivity",
    "render_sensitivity",
]

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class SensitivityRow:
    """One parameter setting's outcome."""

    parameter: str
    value: float
    result: RunResult

    @property
    def remote_fraction(self) -> float:
        """Remote-task fraction at this setting."""
        return self.result.remote_fraction

    @property
    def movement(self) -> float:
        """Data movement (moves + replications) per machine-hour."""
        return self.result.data_movement_per_machine_per_hour


def _config(
    cluster: ClusterConfig,
    trace: WorkloadTrace,
    window_hours: float,
    cap: int,
    seed: int,
) -> ExperimentConfig:
    return ExperimentConfig(
        system=SystemKind.AURORA,
        cluster=cluster,
        epsilon=0.1,
        window=window_hours * _SECONDS_PER_HOUR,
        max_replication_ops=cap,
        budget_extra_blocks=trace.total_blocks,
        seed=seed,
    )


def run_window_sensitivity(
    trace: WorkloadTrace,
    cluster: Optional[ClusterConfig] = None,
    windows_hours: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    seed: int = 0,
    jobs: int = 1,
) -> List[SensitivityRow]:
    """Sweep the usage-monitor window ``W`` (paper default: 2 h)."""
    cluster = cluster or ClusterConfig()
    cases = [
        TrialCase(
            label=f"W={hours}",
            trace=trace,
            config=_config(cluster, trace, hours, 20_000, seed),
        )
        for hours in windows_hours
    ]
    runs = run_trials(cases, jobs=jobs)
    return [
        SensitivityRow(parameter="W_hours", value=hours, result=run)
        for hours, run in zip(windows_hours, runs)
    ]


def run_cap_sensitivity(
    trace: WorkloadTrace,
    cluster: Optional[ClusterConfig] = None,
    caps: Tuple[int, ...] = (10, 100, 1000, 20_000),
    seed: int = 0,
    jobs: int = 1,
) -> List[SensitivityRow]:
    """Sweep Algorithm 3's per-period cap ``K`` (paper default: 20 000)."""
    cluster = cluster or ClusterConfig()
    cases = [
        TrialCase(
            label=f"K={cap}",
            trace=trace,
            config=_config(cluster, trace, 2.0, cap, seed),
        )
        for cap in caps
    ]
    runs = run_trials(cases, jobs=jobs)
    return [
        SensitivityRow(parameter="K", value=float(cap), result=run)
        for cap, run in zip(caps, runs)
    ]


def render_sensitivity(rows: List[SensitivityRow], title: str) -> str:
    """Table: parameter value vs locality and movement."""
    table = render_table(
        ["value", "remote %", "movement/machine/h", "jobs done"],
        [
            (
                row.value,
                row.remote_fraction * 100,
                row.movement,
                row.result.jobs_completed,
            )
            for row in rows
        ],
    )
    return f"{title}\n{table}"
