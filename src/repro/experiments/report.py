"""Textual rendering of experiment results.

Each figure harness returns structured results; these helpers print them
as the rows/series the paper reports — plain ASCII tables and CDF series,
so benchmark output is directly comparable to the published plots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.aurora.system import PeriodReport
    from repro.core.local_search import SearchStats

__all__ = [
    "render_table",
    "cdf_series",
    "render_cdf",
    "format_number",
    "render_period_reports",
    "describe_search_stats",
]


def format_number(value: float, digits: int = 2) -> str:
    """Human-friendly fixed-point formatting ('-' for NaN)."""
    if value != value:  # NaN
        return "-"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{digits}f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """ASCII table with right-aligned numeric columns."""
    text_rows: List[List[str]] = [
        [cell if isinstance(cell, str) else format_number(cell) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_period_reports(reports: Sequence["PeriodReport"]) -> str:
    """Aurora's per-period outcomes, one row per Algorithm 5 period.

    Includes the wall-clock ``elapsed_seconds`` and the operation-kind
    breakdown the observability layer records.
    """
    rows = [
        (
            index,
            report.time / 3600.0,
            report.cost_before,
            report.cost_after,
            report.replication_increases,
            report.replication_decreases,
            report.replay.blocks_transferred,
            report.elapsed_seconds,
            describe_search_stats(report.search),
        )
        for index, report in enumerate(reports)
    ]
    return render_table(
        ["period", "hour", "cost before", "cost after", "k+", "k-",
         "blocks moved", "wall (s)", "ops by kind"],
        rows,
    )


def describe_search_stats(stats: "SearchStats") -> str:
    """Compact ``move=3 swap=1 ...`` rendering of a search's op mix."""
    if stats is None:
        return "-"
    parts = [
        f"{kind}={count}"
        for kind, count in stats.operations_by_kind.items()
        if count
    ]
    return " ".join(parts) if parts else "none"


def cdf_series(
    samples: Sequence[float], points: int = 10
) -> List[Tuple[float, float]]:
    """Empirical CDF of ``samples`` as ``points`` (value, prob) pairs."""
    if len(samples) == 0:
        return []
    ordered = np.sort(np.asarray(samples, dtype=np.float64))
    n = len(ordered)
    indices = np.linspace(0, n - 1, num=min(points, n)).astype(int)
    return [(float(ordered[i]), float((i + 1) / n)) for i in indices]


def render_cdf(
    label: str, samples: Sequence[float], points: int = 10
) -> str:
    """A CDF as a two-column table headed by ``label``."""
    series = cdf_series(samples, points)
    rows = [(format_number(v), format_number(p, 3)) for v, p in series]
    table = render_table(["value", "P(X<=x)"], rows)
    return f"{label}\n{table}"
