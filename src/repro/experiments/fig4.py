"""Figure 4 — Case 2: fixed factors with rack-level fault tolerance.

Identical setup to Figure 3 but every block must span two racks
(``rho = 2``), so Aurora runs the full Algorithm 2 operation set
(``RackMove``/``RackSwap``).  The paper reports an 8% locality
improvement at the ``epsilon = 0.7`` sweet spot with ~0.5 moved blocks
per machine per hour under compression.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.fig3 import (
    DEFAULT_EPSILONS,
    Fig3Result,
    default_trace,
    render_fig3,
)
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    SystemKind,
)
from repro.experiments.runner import TrialCase, run_trials
from repro.workload.trace import WorkloadTrace

__all__ = ["Fig4Result", "run_fig4", "render_fig4"]

# Case 2 shares Figure 3's result shape: a baseline plus per-epsilon runs.
Fig4Result = Fig3Result


def _case_config(
    system: SystemKind,
    epsilon: float,
    cluster: ClusterConfig,
    seed: int,
) -> ExperimentConfig:
    return ExperimentConfig(
        system=system,
        cluster=cluster,
        replication=3,
        rack_spread=2,  # Case 2: rack-level reliability required
        epsilon=epsilon,
        seed=seed,
    )


def run_fig4(
    trace: Optional[WorkloadTrace] = None,
    cluster: Optional[ClusterConfig] = None,
    epsilons: Tuple[float, ...] = DEFAULT_EPSILONS,
    seed: int = 0,
    jobs: int = 1,
) -> Fig4Result:
    """Regenerate Figure 4's data points (``jobs`` fans cases out)."""
    trace = trace or default_trace(seed)
    cluster = cluster or ClusterConfig()
    cases = [TrialCase(
        label="baseline",
        trace=trace,
        config=_case_config(SystemKind.HDFS, 0.0, cluster, seed),
    )]
    for epsilon in epsilons:
        cases.append(TrialCase(
            label=f"eps={epsilon}",
            trace=trace,
            config=_case_config(SystemKind.AURORA, epsilon, cluster, seed),
        ))
    runs = run_trials(cases, jobs=jobs)
    result = Fig4Result(baseline=runs[0])
    for epsilon, run in zip(epsilons, runs[1:]):
        result.aurora[epsilon] = run
    return result


def render_fig4(result: Fig4Result) -> str:
    """Render the three panels as the paper's rows/series."""
    return render_fig3(result, label="Figure 4")
