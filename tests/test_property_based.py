"""Property-based tests (hypothesis) for core invariants.

Each property pins an invariant the unit tests only sample:

* :class:`~repro.faults.retry.RetryPolicy` backoff is bounded and
  monotone for every valid configuration;
* :class:`~repro.dfs.blockmap.BlockMap` location bookkeeping round
  trips under arbitrary add/remove interleavings;
* :class:`~repro.overload.queueing.BoundedServiceQueue` conserves
  requests (``offered == served + shed + depth``) and never exceeds
  its capacity, for every offer schedule and shed policy.

``deadline=None`` everywhere: the suite runs under coverage and in CI
containers where per-example wall-clock limits only produce flakes.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import BlockMeta
from repro.dfs.blockmap import BlockMap
from repro.faults.retry import RetryPolicy
from repro.overload.queueing import BoundedServiceQueue, Priority, ShedPolicy

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_delay=st.floats(min_value=0.0, max_value=10.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=10.0, max_value=120.0),
    jitter=st.floats(min_value=0.0, max_value=0.99),
)


class TestRetryPolicyProperties:
    @settings(deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=1, max_value=30),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_delay_is_bounded(self, policy, attempt, seed):
        delay = policy.delay(attempt, random.Random(seed))
        assert 0.0 <= delay <= policy.max_delay * (1.0 + policy.jitter)

    @settings(deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=1, max_value=29))
    def test_jitter_free_delay_is_monotone(self, policy, attempt):
        assert policy.delay(attempt) <= policy.delay(attempt + 1)

    @settings(deadline=None)
    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_full_sequence_respects_attempt_cap(self, policy, seed):
        delays = list(policy.delays(random.Random(seed)))
        assert len(delays) <= policy.max_attempts - 1
        assert all(d >= 0.0 for d in delays)

    @settings(deadline=None)
    @given(policy=policies)
    def test_admits_is_monotone_in_attempts(self, policy):
        admitted = [policy.admits(n) for n in range(0, policy.max_attempts + 2)]
        # Once the policy refuses, it never admits again.
        assert admitted == sorted(admitted, reverse=True)
        assert not policy.admits(policy.max_attempts)


# An interleaving of location operations: (block index, node, add?).
location_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=7),
        st.booleans(),
    ),
    max_size=60,
)


class TestBlockMapProperties:
    @settings(deadline=None)
    @given(ops=location_ops)
    def test_locations_round_trip(self, ops):
        blockmap = BlockMap(ClusterTopology.uniform(2, 4, capacity=60))
        for block_id in range(5):
            blockmap.register(BlockMeta(
                block_id=block_id, file_id=0, size=1,
                replication_factor=3, rack_spread=2,
            ))
        shadow = {block_id: set() for block_id in range(5)}
        for block_id, node, add in ops:
            if add and node not in shadow[block_id]:
                blockmap.add_location(block_id, node)
                shadow[block_id].add(node)
            elif not add and node in shadow[block_id]:
                blockmap.remove_location(block_id, node)
                shadow[block_id].remove(node)
        for block_id in range(5):
            assert blockmap.locations(block_id) == shadow[block_id]
            assert blockmap.replica_count(block_id) == len(shadow[block_id])
        for node in range(8):
            assert blockmap.blocks_on(node) == {
                b for b, nodes in shadow.items() if node in nodes
            }

    @settings(deadline=None)
    @given(ops=location_ops)
    def test_unregister_clears_every_index(self, ops):
        blockmap = BlockMap(ClusterTopology.uniform(2, 4, capacity=60))
        for block_id in range(5):
            blockmap.register(BlockMeta(
                block_id=block_id, file_id=0, size=1,
                replication_factor=3, rack_spread=2,
            ))
        seen = {block_id: set() for block_id in range(5)}
        for block_id, node, add in ops:
            if add and node not in seen[block_id]:
                blockmap.add_location(block_id, node)
                seen[block_id].add(node)
        for block_id in range(5):
            blockmap.unregister(block_id)
        assert blockmap.num_blocks == 0
        for node in range(8):
            assert not blockmap.blocks_on(node)


# An offer schedule: monotone arrival gaps plus priorities and work.
offer_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0),    # gap since last offer
        st.sampled_from(list(Priority)),
        st.floats(min_value=0.1, max_value=4.0),    # work units
    ),
    min_size=1,
    max_size=80,
)


class TestBoundedQueueProperties:
    @settings(deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        rate=st.floats(min_value=0.5, max_value=8.0),
        policy=st.sampled_from(list(ShedPolicy)),
        schedule=offer_schedules,
    )
    def test_requests_are_conserved(self, capacity, rate, policy, schedule):
        queue = BoundedServiceQueue(
            capacity=capacity, service_rate=rate, policy=policy
        )
        now = 0.0
        for gap, priority, work in schedule:
            now += gap
            latency = queue.offer(now, priority, work=work)
            if latency is not None:
                assert latency >= work / rate - 1e-9
            depth = queue.depth(now)
            assert 0 <= depth <= capacity
            assert queue.offered == queue.served + queue.shed + depth
            assert queue.shed == queue.shed_arrivals + queue.shed_evictions
        # After an arbitrarily long drain everything has been served.
        assert queue.depth(now + 1e6) == 0
        assert queue.offered == queue.served + queue.shed

    @settings(deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        schedule=offer_schedules,
    )
    def test_saturation_stays_in_unit_range(self, capacity, schedule):
        queue = BoundedServiceQueue(
            capacity=capacity, service_rate=2.0, policy=ShedPolicy.PRIORITY
        )
        now = 0.0
        for gap, priority, work in schedule:
            now += gap
            queue.offer(now, priority, work=work)
            assert 0.0 <= queue.saturation(now) <= 1.0
