"""Property-based tests (hypothesis) for core invariants.

Each property pins an invariant the unit tests only sample:

* :class:`~repro.faults.retry.RetryPolicy` backoff is bounded and
  monotone for every valid configuration;
* :class:`~repro.dfs.blockmap.BlockMap` location bookkeeping round
  trips under arbitrary add/remove interleavings;
* :class:`~repro.overload.queueing.BoundedServiceQueue` conserves
  requests (``offered == served + shed + depth``) and never exceeds
  its capacity, for every offer schedule and shed policy.

``deadline=None`` everywhere: the suite runs under coverage and in CI
containers where per-example wall-clock limits only produce flakes.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import BlockMeta
from repro.dfs.blockmap import BlockMap
from repro.faults.retry import RetryPolicy
from repro.overload.queueing import BoundedServiceQueue, Priority, ShedPolicy

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_delay=st.floats(min_value=0.0, max_value=10.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=10.0, max_value=120.0),
    jitter=st.floats(min_value=0.0, max_value=0.99),
)


class TestRetryPolicyProperties:
    @settings(deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=1, max_value=30),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_delay_is_bounded(self, policy, attempt, seed):
        delay = policy.delay(attempt, random.Random(seed))
        assert 0.0 <= delay <= policy.max_delay * (1.0 + policy.jitter)

    @settings(deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=1, max_value=29))
    def test_jitter_free_delay_is_monotone(self, policy, attempt):
        assert policy.delay(attempt) <= policy.delay(attempt + 1)

    @settings(deadline=None)
    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_full_sequence_respects_attempt_cap(self, policy, seed):
        delays = list(policy.delays(random.Random(seed)))
        assert len(delays) <= policy.max_attempts - 1
        assert all(d >= 0.0 for d in delays)

    @settings(deadline=None)
    @given(policy=policies)
    def test_admits_is_monotone_in_attempts(self, policy):
        admitted = [policy.admits(n) for n in range(0, policy.max_attempts + 2)]
        # Once the policy refuses, it never admits again.
        assert admitted == sorted(admitted, reverse=True)
        assert not policy.admits(policy.max_attempts)


# An interleaving of location operations: (block index, node, add?).
location_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=7),
        st.booleans(),
    ),
    max_size=60,
)


class TestBlockMapProperties:
    @settings(deadline=None)
    @given(ops=location_ops)
    def test_locations_round_trip(self, ops):
        blockmap = BlockMap(ClusterTopology.uniform(2, 4, capacity=60))
        for block_id in range(5):
            blockmap.register(BlockMeta(
                block_id=block_id, file_id=0, size=1,
                replication_factor=3, rack_spread=2,
            ))
        shadow = {block_id: set() for block_id in range(5)}
        for block_id, node, add in ops:
            if add and node not in shadow[block_id]:
                blockmap.add_location(block_id, node)
                shadow[block_id].add(node)
            elif not add and node in shadow[block_id]:
                blockmap.remove_location(block_id, node)
                shadow[block_id].remove(node)
        for block_id in range(5):
            assert blockmap.locations(block_id) == shadow[block_id]
            assert blockmap.replica_count(block_id) == len(shadow[block_id])
        for node in range(8):
            assert blockmap.blocks_on(node) == {
                b for b, nodes in shadow.items() if node in nodes
            }

    @settings(deadline=None)
    @given(ops=location_ops)
    def test_unregister_clears_every_index(self, ops):
        blockmap = BlockMap(ClusterTopology.uniform(2, 4, capacity=60))
        for block_id in range(5):
            blockmap.register(BlockMeta(
                block_id=block_id, file_id=0, size=1,
                replication_factor=3, rack_spread=2,
            ))
        seen = {block_id: set() for block_id in range(5)}
        for block_id, node, add in ops:
            if add and node not in seen[block_id]:
                blockmap.add_location(block_id, node)
                seen[block_id].add(node)
        for block_id in range(5):
            blockmap.unregister(block_id)
        assert blockmap.num_blocks == 0
        for node in range(8):
            assert not blockmap.blocks_on(node)


# An offer schedule: monotone arrival gaps plus priorities and work.
offer_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0),    # gap since last offer
        st.sampled_from(list(Priority)),
        st.floats(min_value=0.1, max_value=4.0),    # work units
    ),
    min_size=1,
    max_size=80,
)


class TestBoundedQueueProperties:
    @settings(deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        rate=st.floats(min_value=0.5, max_value=8.0),
        policy=st.sampled_from(list(ShedPolicy)),
        schedule=offer_schedules,
    )
    def test_requests_are_conserved(self, capacity, rate, policy, schedule):
        queue = BoundedServiceQueue(
            capacity=capacity, service_rate=rate, policy=policy
        )
        now = 0.0
        for gap, priority, work in schedule:
            now += gap
            latency = queue.offer(now, priority, work=work)
            if latency is not None:
                assert latency >= work / rate - 1e-9
            depth = queue.depth(now)
            assert 0 <= depth <= capacity
            assert queue.offered == queue.served + queue.shed + depth
            assert queue.shed == queue.shed_arrivals + queue.shed_evictions
        # After an arbitrarily long drain everything has been served.
        assert queue.depth(now + 1e6) == 0
        assert queue.offered == queue.served + queue.shed

    @settings(deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        schedule=offer_schedules,
    )
    def test_saturation_stays_in_unit_range(self, capacity, schedule):
        queue = BoundedServiceQueue(
            capacity=capacity, service_rate=2.0, policy=ShedPolicy.PRIORITY
        )
        now = 0.0
        for gap, priority, work in schedule:
            now += gap
            queue.offer(now, priority, work=work)
            assert 0.0 <= queue.saturation(now) <= 1.0


# -- edit-log prefix-crash safety -------------------------------------------
#
# The crash model for the HA journal: a leader dies while its tail is
# in flight, so a recovering replica holds an arbitrary *prefix* of the
# acknowledged entries.  Recovery from any prefix must reproduce
# exactly the state the first k mutations built — and finishing an
# interrupted replay must land in the same state as a clean one.

_SEGMENTS = ("a", "b", "c")
_FILES = tuple(f"/{d}/f{i}" for d in _SEGMENTS for i in range(2))
_DIRS = tuple(f"/{d}" for d in _SEGMENTS)

_edit_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(_FILES),
                  st.integers(min_value=1, max_value=2)),
        st.tuples(st.just("delete"), st.sampled_from(_FILES)),
        st.tuples(st.just("mkdir"), st.sampled_from(_DIRS)),
        st.tuples(st.just("rename"), st.sampled_from(_FILES),
                  st.sampled_from(_FILES)),
        st.tuples(st.just("rmdir"), st.sampled_from(_DIRS)),
        st.tuples(st.just("set_quota"), st.sampled_from(_DIRS),
                  st.integers(min_value=1, max_value=9)),
        st.tuples(st.just("clear_quota"), st.sampled_from(_DIRS)),
    ),
    max_size=25,
)


class TestEditLogPrefixCrashSafety:
    @staticmethod
    def _make_namenode():
        from repro.dfs.namenode import Namenode
        from repro.dfs.policies import DefaultHdfsPolicy

        topo = ClusterTopology.uniform(2, 2, 200)
        return Namenode(
            topo,
            placement_policy=DefaultHdfsPolicy(random.Random(2)),
            rng=random.Random(3),
        )

    @staticmethod
    def _apply(namenode, quota, op):
        from repro.errors import DfsError

        kind = op[0]
        try:
            if kind == "create":
                namenode.create_file(op[1], num_blocks=op[2], block_size=1)
            elif kind == "delete":
                namenode.delete_file(op[1])
            elif kind == "mkdir":
                namenode.mkdir(op[1])
            elif kind == "rename":
                namenode.rename(op[1], op[2])
            elif kind == "rmdir":
                namenode.delete_directory(op[1])
            elif kind == "set_quota":
                quota.set_quota(op[1], max_files=op[2])
            elif kind == "clear_quota":
                quota.clear_quota(op[1])
        except DfsError:
            return False  # rejected ops journal nothing
        return True

    @staticmethod
    def _fingerprint(namenode, quota):
        files = sorted(namenode.namespace.walk_files())
        dirs = sorted(namenode.namespace.walk_directories())
        metas = sorted(
            (fid, meta.path, meta.block_ids)
            for fid, meta in namenode._files_by_id.items()
        )
        blocks = sorted(
            (block_id, block.file_id, block.replication_factor)
            for fid, meta in namenode._files_by_id.items()
            for block_id in meta.block_ids
            for block in [namenode.blockmap.meta(block_id)]
        )
        quotas = sorted(
            (path, limit.max_files, limit.max_replicated_blocks)
            for path, limit in quota._quotas.items()
        )
        return (files, dirs, metas, blocks, quotas,
                namenode._next_file_id, namenode._next_block_id)

    @settings(deadline=None, max_examples=40)
    @given(ops=_edit_ops, cut_percent=st.integers(min_value=0, max_value=100))
    def test_any_journal_prefix_recovers_that_state(self, ops, cut_percent):
        from repro.dfs.editlog import attach_edit_log, replay_entries
        from repro.dfs.quota import QuotaManager

        journaled = self._make_namenode()
        quota = QuotaManager(journaled)
        log = attach_edit_log(journaled, quota=quota)

        # One journal entry per acknowledged op, so snapshots align 1:1
        # with journal prefixes.
        snapshots = [self._fingerprint(journaled, quota)]
        for op in ops:
            if self._apply(journaled, quota, op):
                snapshots.append(self._fingerprint(journaled, quota))
        entries = list(log.entries)
        assert len(entries) == len(snapshots) - 1

        cut = cut_percent * len(entries) // 100
        recovered = self._make_namenode()
        recovered_quota = QuotaManager(recovered)
        replay_entries(recovered, entries[:cut], quota=recovered_quota)
        assert (self._fingerprint(recovered, recovered_quota)
                == snapshots[cut])

        # Resuming the interrupted replay reaches the clean final state.
        replay_entries(recovered, entries[cut:], quota=recovered_quota)
        assert (self._fingerprint(recovered, recovered_quota)
                == snapshots[-1])
