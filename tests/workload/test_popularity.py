"""Unit and property tests for the popularity models."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidProblemError
from repro.workload.popularity import (
    PopularityDrift,
    WeightedSampler,
    gini_coefficient,
    top_share,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(100, skew=1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(99))

    def test_skew_zero_is_uniform(self):
        weights = zipf_weights(10, skew=0.0)
        assert np.allclose(weights, 0.1)

    def test_higher_skew_concentrates(self):
        mild = zipf_weights(50, skew=0.5)
        steep = zipf_weights(50, skew=2.0)
        assert steep[0] > mild[0]

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            zipf_weights(0)
        with pytest.raises(InvalidProblemError):
            zipf_weights(5, skew=-1.0)


class TestWeightedSampler:
    def test_respects_weights_statistically(self):
        sampler = WeightedSampler([0.9, 0.1])
        rng = random.Random(0)
        draws = sampler.sample_many(rng, 5000)
        frequency = draws.count(0) / len(draws)
        assert 0.85 < frequency < 0.95

    def test_zero_weight_never_drawn(self):
        sampler = WeightedSampler([0.0, 1.0, 0.0])
        rng = random.Random(1)
        assert set(sampler.sample_many(rng, 200)) == {1}

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            WeightedSampler([])
        with pytest.raises(InvalidProblemError):
            WeightedSampler([-1.0, 2.0])
        with pytest.raises(InvalidProblemError):
            WeightedSampler([0.0, 0.0])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1_000), size=st.integers(1, 30))
    def test_samples_always_in_range(self, seed, size):
        rng = random.Random(seed)
        weights = [rng.random() + 0.01 for _ in range(size)]
        sampler = WeightedSampler(weights)
        for _ in range(50):
            assert 0 <= sampler.sample(rng) < size


class TestPopularityDrift:
    def test_is_permutation_after_steps(self):
        drift = PopularityDrift(20, swap_fraction=0.3, promotions=2)
        rng = random.Random(0)
        for _ in range(10):
            drift.step(rng)
        assert sorted(drift.permutation) == list(range(20))

    def test_changes_head_over_time(self):
        drift = PopularityDrift(50, swap_fraction=0.1, promotions=1)
        rng = random.Random(3)
        initial_head = drift.item_at_rank(0)
        changed = False
        for _ in range(20):
            drift.step(rng)
            if drift.item_at_rank(0) != initial_head:
                changed = True
                break
        assert changed

    def test_single_item_is_stable(self):
        drift = PopularityDrift(1)
        drift.step(random.Random(0))
        assert drift.permutation == [0]

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            PopularityDrift(5, swap_fraction=1.5)
        with pytest.raises(InvalidProblemError):
            PopularityDrift(5, promotions=-1)


class TestInequalityMetrics:
    def test_gini_extremes(self):
        assert gini_coefficient([1.0, 1.0, 1.0]) == pytest.approx(0.0)
        strongly_unequal = gini_coefficient([0.0, 0.0, 0.0, 100.0])
        assert strongly_unequal > 0.7

    def test_gini_zero_mass(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_gini_validation(self):
        with pytest.raises(InvalidProblemError):
            gini_coefficient([])
        with pytest.raises(InvalidProblemError):
            gini_coefficient([-1.0, 1.0])

    def test_top_share_long_tail(self):
        weights = zipf_weights(600, skew=1.1)
        # The long-tail shape the paper cites: a small head owns a
        # disproportionate share.
        assert top_share(weights, fraction=1.0 / 6.0) > 0.45

    def test_top_share_uniform(self):
        share = top_share([1.0] * 100, fraction=0.25)
        assert share == pytest.approx(0.25, abs=0.01)

    def test_top_share_validation(self):
        with pytest.raises(InvalidProblemError):
            top_share([1.0], fraction=0.0)
        with pytest.raises(InvalidProblemError):
            top_share([], fraction=0.5)
