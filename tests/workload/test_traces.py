"""Unit tests for trace records and the Yahoo!/SWIM synthesizers."""

import pytest

from repro.errors import InvalidProblemError, TraceFormatError
from repro.workload.swim import SwimTraceConfig, generate_swim_trace, scale_down
from repro.workload.trace import TraceFile, TraceJob, WorkloadTrace
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


class TestTraceRecords:
    def test_file_properties(self):
        f = TraceFile(file_id=1, num_blocks=8, block_size=64)
        assert f.total_bytes == 512

    def test_file_validation(self):
        with pytest.raises(TraceFormatError):
            TraceFile(file_id=-1, num_blocks=1)
        with pytest.raises(TraceFormatError):
            TraceFile(file_id=0, num_blocks=0)
        with pytest.raises(TraceFormatError):
            TraceFile(file_id=0, num_blocks=1, block_size=0)

    def test_job_validation(self):
        with pytest.raises(TraceFormatError):
            TraceJob(job_id=-1, submit_time=0.0, file_id=0, task_duration=1.0)
        with pytest.raises(TraceFormatError):
            TraceJob(job_id=0, submit_time=-1.0, file_id=0, task_duration=1.0)
        with pytest.raises(TraceFormatError):
            TraceJob(job_id=0, submit_time=0.0, file_id=0, task_duration=0.0)

    def test_trace_validation(self):
        files = (TraceFile(0, 2),)
        with pytest.raises(TraceFormatError):
            WorkloadTrace(files=files, jobs=(
                TraceJob(0, 0.0, file_id=9, task_duration=1.0),
            ))
        with pytest.raises(TraceFormatError):
            WorkloadTrace(files=(TraceFile(0, 1), TraceFile(0, 2)), jobs=())
        with pytest.raises(TraceFormatError):
            WorkloadTrace(files=files, jobs=(
                TraceJob(0, 5.0, 0, 1.0), TraceJob(1, 1.0, 0, 1.0),
            ))

    def test_trace_stats(self):
        files = (TraceFile(0, 3), TraceFile(1, 5))
        jobs = (
            TraceJob(0, 1.0, 0, 10.0),
            TraceJob(1, 2.0, 0, 10.0),
            TraceJob(2, 3.0, 1, 10.0),
        )
        trace = WorkloadTrace(files=files, jobs=jobs)
        assert trace.num_files == 2
        assert trace.num_jobs == 3
        assert trace.total_blocks == 8
        assert trace.horizon == 3.0
        assert trace.accesses_per_file() == {0: 2, 1: 1}
        assert trace.file(1).num_blocks == 5
        with pytest.raises(TraceFormatError):
            trace.file(9)

    def test_round_trip_serialization(self, tmp_path):
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=10, jobs_per_hour=20, duration_hours=1.0, seed=3,
        ))
        path = tmp_path / "trace.jsonl"
        trace.dump(path)
        loaded = WorkloadTrace.load(path)
        assert loaded == trace

    def test_load_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError):
            WorkloadTrace.load(path)
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(TraceFormatError):
            WorkloadTrace.load(path)
        path.write_text('{"type": "file", "bogus_field": 1}\n')
        with pytest.raises(TraceFormatError):
            WorkloadTrace.load(path)


class TestYahooSynthesizer:
    def test_deterministic(self):
        config = YahooTraceConfig(num_files=20, duration_hours=2.0, seed=9)
        assert generate_yahoo_trace(config) == generate_yahoo_trace(config)

    def test_mean_blocks_near_target(self):
        config = YahooTraceConfig(num_files=800, seed=1)
        trace = generate_yahoo_trace(config)
        mean = trace.total_blocks / trace.num_files
        assert 6.0 < mean < 10.0  # target 8

    def test_popularity_is_long_tailed(self):
        config = YahooTraceConfig(
            num_files=100, jobs_per_hour=400, duration_hours=4.0, seed=2,
            drift_swap_fraction=0.0, drift_promotions=0,
        )
        trace = generate_yahoo_trace(config)
        counts = sorted(trace.accesses_per_file().values(), reverse=True)
        top_decile = sum(counts[:10])
        assert top_decile > 0.4 * sum(counts)

    def test_jobs_within_horizon_and_ordered(self):
        config = YahooTraceConfig(duration_hours=3.0, seed=4)
        trace = generate_yahoo_trace(config)
        times = [j.submit_time for j in trace.jobs]
        assert times == sorted(times)
        assert all(0 <= t < 3 * 3600 for t in times)

    def test_drift_changes_hot_file(self):
        hot_early = generate_yahoo_trace(YahooTraceConfig(
            num_files=50, jobs_per_hour=300, duration_hours=6.0, seed=5,
            drift_swap_fraction=0.2, drift_promotions=3,
        ))
        early = [j.file_id for j in hot_early.jobs if j.submit_time < 3600]
        late = [j.file_id for j in hot_early.jobs if j.submit_time > 5 * 3600]
        top_early = max(set(early), key=early.count)
        top_late = max(set(late), key=late.count)
        # With aggressive drift the hot file should change across hours.
        assert top_early != top_late

    def test_config_validation(self):
        with pytest.raises(InvalidProblemError):
            YahooTraceConfig(num_files=0)
        with pytest.raises(InvalidProblemError):
            YahooTraceConfig(jobs_per_hour=0)
        with pytest.raises(InvalidProblemError):
            YahooTraceConfig(mean_blocks_per_file=0.5)
        with pytest.raises(InvalidProblemError):
            YahooTraceConfig(duration_hours=-1)


class TestSwimSynthesizer:
    def test_deterministic(self):
        config = SwimTraceConfig(seed=7, duration_hours=1.0)
        assert generate_swim_trace(config) == generate_swim_trace(config)

    def test_heavy_tail_in_file_sizes(self):
        config = SwimTraceConfig(num_files=400, seed=8)
        trace = generate_swim_trace(config)
        sizes = sorted((f.num_blocks for f in trace.files), reverse=True)
        # Most files are small, some are much larger.
        assert sizes[0] >= 8 * sizes[len(sizes) // 2]

    def test_scale_down_shrinks_files_only(self):
        trace = generate_swim_trace(SwimTraceConfig(seed=9, duration_hours=1.0))
        scaled = scale_down(trace, source_nodes=600, target_nodes=10)
        assert scaled.num_jobs == trace.num_jobs
        assert scaled.total_blocks < trace.total_blocks
        assert all(f.num_blocks >= 1 for f in scaled.files)
        assert [j.submit_time for j in scaled.jobs] == [
            j.submit_time for j in trace.jobs
        ]

    def test_scale_down_validation(self):
        trace = generate_swim_trace(SwimTraceConfig(seed=1, duration_hours=0.5))
        with pytest.raises(InvalidProblemError):
            scale_down(trace, source_nodes=10, target_nodes=600)
        with pytest.raises(InvalidProblemError):
            scale_down(trace, source_nodes=0, target_nodes=1)

    def test_config_validation(self):
        with pytest.raises(InvalidProblemError):
            SwimTraceConfig(pareto_alpha=0.9)
        with pytest.raises(InvalidProblemError):
            SwimTraceConfig(large_job_fraction=1.5)
        with pytest.raises(InvalidProblemError):
            SwimTraceConfig(hourly_burstiness=())
        with pytest.raises(InvalidProblemError):
            SwimTraceConfig(hourly_burstiness=(1.0, -1.0))

    def test_burstiness_modulates_arrivals(self):
        config = SwimTraceConfig(
            seed=11, duration_hours=2.0, jobs_per_hour=300,
            hourly_burstiness=(2.0, 0.2),
        )
        trace = generate_swim_trace(config)
        first = sum(1 for j in trace.jobs if j.submit_time < 3600)
        second = trace.num_jobs - first
        assert first > 2 * second
