"""Tests for trace statistics."""

import math

import pytest

from repro.errors import TraceFormatError
from repro.workload.stats import compute_trace_stats, describe_trace
from repro.workload.swim import SwimTraceConfig, generate_swim_trace
from repro.workload.trace import TraceFile, TraceJob, WorkloadTrace
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


class TestComputeTraceStats:
    def test_basic_counts(self):
        trace = WorkloadTrace(
            files=(TraceFile(0, 4), TraceFile(1, 2)),
            jobs=(
                TraceJob(0, 0.0, 0, 10.0),
                TraceJob(1, 1800.0, 0, 20.0),
                TraceJob(2, 3600.0, 1, 30.0),
            ),
        )
        stats = compute_trace_stats(trace)
        assert stats.num_files == 2
        assert stats.num_jobs == 3
        assert stats.total_blocks == 6
        assert stats.horizon_hours == pytest.approx(1.0)
        assert stats.mean_blocks_per_file == pytest.approx(3.0)
        assert stats.max_blocks_per_file == 4
        assert stats.jobs_per_hour == pytest.approx(3.0)
        assert stats.mean_task_duration == pytest.approx(20.0)

    def test_yahoo_trace_is_long_tailed(self):
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=100, jobs_per_hour=400, duration_hours=3.0, seed=0,
        ))
        stats = compute_trace_stats(trace)
        assert stats.is_long_tailed()
        assert stats.access_gini > 0.4

    def test_swim_trace_stats(self):
        trace = generate_swim_trace(SwimTraceConfig(
            num_files=50, jobs_per_hour=100, duration_hours=2.0, seed=1,
        ))
        stats = compute_trace_stats(trace)
        assert stats.arrival_cv > 0.5  # Poisson-like or burstier
        assert stats.max_blocks_per_file >= stats.mean_blocks_per_file

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceFormatError):
            compute_trace_stats(WorkloadTrace(files=(), jobs=()))

    def test_single_job_arrival_cv_is_nan(self):
        trace = WorkloadTrace(
            files=(TraceFile(0, 1),),
            jobs=(TraceJob(0, 10.0, 0, 5.0),),
        )
        stats = compute_trace_stats(trace)
        assert math.isnan(stats.arrival_cv)

    def test_no_jobs(self):
        trace = WorkloadTrace(files=(TraceFile(0, 1),), jobs=())
        stats = compute_trace_stats(trace)
        assert stats.jobs_per_hour == 0.0
        assert stats.access_gini == 0.0
        assert stats.top_sixth_share == 0.0


class TestDescribeTrace:
    def test_mentions_key_numbers(self):
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=30, jobs_per_hour=60, duration_hours=1.0, seed=2,
        ))
        text = describe_trace(trace)
        assert "files: 30" in text
        assert "jobs:" in text
        assert "popularity:" in text
        assert "long-tailed" in text or "flat" in text
