"""Tests for trace transformations."""

import pytest

from repro.errors import TraceFormatError
from repro.workload.trace import TraceFile, TraceJob, WorkloadTrace
from repro.workload.transform import (
    merge_traces,
    scale_arrival_rate,
    slice_trace,
    truncate_jobs,
)
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


def toy_trace():
    files = (TraceFile(0, 2), TraceFile(1, 3))
    jobs = (
        TraceJob(0, 100.0, 0, 10.0),
        TraceJob(1, 200.0, 1, 10.0),
        TraceJob(2, 300.0, 0, 10.0),
        TraceJob(3, 400.0, 1, 10.0),
    )
    return WorkloadTrace(files=files, jobs=jobs)


class TestSliceTrace:
    def test_window_and_rebase(self):
        sliced = slice_trace(toy_trace(), start=150.0, end=350.0)
        assert [j.job_id for j in sliced.jobs] == [1, 2]
        assert [j.submit_time for j in sliced.jobs] == [50.0, 150.0]
        assert sliced.num_files == 2

    def test_without_rebase(self):
        sliced = slice_trace(toy_trace(), 150.0, 350.0, rebase=False)
        assert [j.submit_time for j in sliced.jobs] == [200.0, 300.0]

    def test_empty_window(self):
        sliced = slice_trace(toy_trace(), 500.0, 600.0)
        assert sliced.num_jobs == 0

    def test_validation(self):
        with pytest.raises(TraceFormatError):
            slice_trace(toy_trace(), 200.0, 100.0)
        with pytest.raises(TraceFormatError):
            slice_trace(toy_trace(), -1.0, 100.0)


class TestMergeTraces:
    def test_ids_are_disjoint_and_jobs_interleave(self):
        merged = merge_traces(toy_trace(), toy_trace())
        assert merged.num_files == 4
        assert merged.num_jobs == 8
        file_ids = [f.file_id for f in merged.files]
        assert len(set(file_ids)) == 4
        times = [j.submit_time for j in merged.jobs]
        assert times == sorted(times)
        # Second tenant's jobs reference its shifted files.
        late_jobs = [j for j in merged.jobs if j.job_id >= 4]
        assert all(j.file_id >= 2 for j in late_jobs)

    def test_merge_with_empty(self):
        empty = WorkloadTrace(files=(), jobs=())
        merged = merge_traces(empty, toy_trace())
        assert merged.num_jobs == 4

    def test_merge_generated_traces_valid(self):
        a = generate_yahoo_trace(YahooTraceConfig(
            num_files=5, jobs_per_hour=20, duration_hours=1.0, seed=1))
        b = generate_yahoo_trace(YahooTraceConfig(
            num_files=7, jobs_per_hour=30, duration_hours=1.0, seed=2))
        merged = merge_traces(a, b)
        assert merged.num_files == 12
        assert merged.num_jobs == a.num_jobs + b.num_jobs


class TestScaleArrivalRate:
    def test_compression(self):
        fast = scale_arrival_rate(toy_trace(), factor=2.0)
        assert [j.submit_time for j in fast.jobs] == [50.0, 100.0, 150.0,
                                                      200.0]
        assert fast.horizon == 200.0

    def test_stretch(self):
        slow = scale_arrival_rate(toy_trace(), factor=0.5)
        assert slow.horizon == 800.0

    def test_validation(self):
        with pytest.raises(TraceFormatError):
            scale_arrival_rate(toy_trace(), factor=0.0)


class TestTruncateJobs:
    def test_keeps_prefix(self):
        cut = truncate_jobs(toy_trace(), 2)
        assert [j.job_id for j in cut.jobs] == [0, 1]

    def test_zero_and_overlong(self):
        assert truncate_jobs(toy_trace(), 0).num_jobs == 0
        assert truncate_jobs(toy_trace(), 99).num_jobs == 4

    def test_validation(self):
        with pytest.raises(TraceFormatError):
            truncate_jobs(toy_trace(), -1)
