"""Tests for the bounded virtual-time service queue."""

import pytest

from repro.errors import OverloadConfigError
from repro.overload.queueing import BoundedServiceQueue, Priority, ShedPolicy


def invariant(queue, now):
    assert queue.offered == queue.served + queue.shed + queue.depth(now)


class TestVirtualTime:
    def test_empty_queue_serves_at_service_time(self):
        q = BoundedServiceQueue(capacity=4, service_rate=2.0)
        assert q.offer(0.0) == pytest.approx(0.5)
        assert q.depth(0.0) == 1
        assert q.depth(0.5) == 0
        assert q.served == 1

    def test_latencies_accumulate_fifo(self):
        q = BoundedServiceQueue(capacity=4, service_rate=1.0)
        assert q.offer(0.0) == pytest.approx(1.0)
        assert q.offer(0.0) == pytest.approx(2.0)
        assert q.offer(0.0) == pytest.approx(3.0)
        assert q.wait(0.0) == pytest.approx(3.0)
        invariant(q, 0.0)

    def test_idle_time_is_not_carried_forward(self):
        q = BoundedServiceQueue(capacity=4, service_rate=1.0)
        q.offer(0.0)
        # Long idle gap: the next request must not inherit old virtual time.
        assert q.offer(100.0) == pytest.approx(1.0)

    def test_work_scales_service_time(self):
        q = BoundedServiceQueue(capacity=4, service_rate=2.0)
        assert q.offer(0.0, work=3.0) == pytest.approx(1.5)

    def test_clock_must_not_move_backwards(self):
        q = BoundedServiceQueue(capacity=4, service_rate=1.0)
        q.offer(5.0)
        with pytest.raises(OverloadConfigError):
            q.offer(4.0)

    def test_estimate_matches_next_offer(self):
        q = BoundedServiceQueue(capacity=8, service_rate=2.0)
        q.offer(0.0)
        q.offer(0.0)
        estimated = q.estimate(0.25)
        assert q.offer(0.25) == pytest.approx(estimated)

    def test_utilization_tracks_busy_fraction(self):
        q = BoundedServiceQueue(capacity=4, service_rate=1.0)
        q.offer(0.0)  # busy [0, 1]
        q.offer(2.0)  # idle [1, 2], busy [2, 3]
        assert q.utilization(4.0) == pytest.approx(0.5)


class TestRejectPolicy:
    def test_overflow_is_shed(self):
        q = BoundedServiceQueue(capacity=2, service_rate=1.0,
                                policy=ShedPolicy.REJECT)
        assert q.offer(0.0) is not None
        assert q.offer(0.0) is not None
        assert q.offer(0.0) is None
        assert q.shed == 1
        assert q.shed_arrivals == 1
        invariant(q, 0.0)

    def test_draining_reopens_the_queue(self):
        q = BoundedServiceQueue(capacity=1, service_rate=1.0,
                                policy=ShedPolicy.REJECT)
        q.offer(0.0)
        assert q.offer(0.5) is None
        assert q.offer(1.5) is not None


class TestDropOldestPolicy:
    def test_oldest_waiter_is_dropped(self):
        q = BoundedServiceQueue(capacity=2, service_rate=1.0,
                                policy=ShedPolicy.DROP_OLDEST)
        q.offer(0.0)
        q.offer(0.0)
        latency = q.offer(0.0)
        assert latency is not None
        assert q.shed_evictions == 1
        invariant(q, 0.0)

    def test_evicting_in_service_head_keeps_sunk_work(self):
        q = BoundedServiceQueue(capacity=1, service_rate=1.0,
                                policy=ShedPolicy.DROP_OLDEST)
        q.offer(0.0)  # completes at 1.0
        # At t=0.6 the head has 0.4s of service left: the replacement
        # can start only after the sunk work, i.e. finish at 1.6.
        latency = q.offer(0.6)
        assert latency == pytest.approx(1.0)
        invariant(q, 0.6)


class TestPriorityPolicy:
    def build_full(self):
        q = BoundedServiceQueue(capacity=3, service_rate=1.0,
                                policy=ShedPolicy.PRIORITY)
        q.offer(0.0, Priority.CLIENT_READ)
        q.offer(0.0, Priority.RE_REPLICATION)
        q.offer(0.0, Priority.MIGRATION)
        return q

    def test_read_evicts_migration(self):
        q = self.build_full()
        assert q.offer(0.0, Priority.CLIENT_READ) is not None
        assert q.shed_evictions == 1
        invariant(q, 0.0)

    def test_migration_cannot_evict_anyone(self):
        q = self.build_full()
        assert q.offer(0.0, Priority.MIGRATION) is None
        assert q.shed_arrivals == 1

    def test_equal_priority_does_not_evict(self):
        q = BoundedServiceQueue(capacity=1, service_rate=1.0,
                                policy=ShedPolicy.PRIORITY)
        q.offer(0.0, Priority.CLIENT_READ)
        assert q.offer(0.0, Priority.CLIENT_READ) is None

    def test_eviction_speeds_up_later_requests(self):
        q = BoundedServiceQueue(capacity=3, service_rate=1.0,
                                policy=ShedPolicy.PRIORITY)
        q.offer(0.0, Priority.CLIENT_READ)
        q.offer(0.0, Priority.MIGRATION)
        third = q.offer(0.0, Priority.CLIENT_READ)
        assert third == pytest.approx(3.0)
        # A fourth read evicts the migration waiter; it takes over the
        # freed slot and the whole chain finishes one service earlier.
        fourth = q.offer(0.0, Priority.CLIENT_READ)
        assert fourth == pytest.approx(3.0)
        assert q.depth(2.999) > 0
        assert q.depth(3.0) == 0
        invariant(q, 3.0)


class TestValidation:
    def test_capacity_and_rate_validated(self):
        with pytest.raises(OverloadConfigError):
            BoundedServiceQueue(capacity=0, service_rate=1.0)
        with pytest.raises(OverloadConfigError):
            BoundedServiceQueue(capacity=1, service_rate=0.0)
        q = BoundedServiceQueue(capacity=1, service_rate=1.0)
        with pytest.raises(OverloadConfigError):
            q.offer(0.0, work=0.0)
