"""Regression: circuit breakers must observe hedged-read outcomes.

The caller of ``_serve`` only records an outcome for the *winning*
replica, so before the fix a hedge left the losing primary's breaker
blind — fatal in HALF_OPEN, where ``allow()`` consumes the only probe
and a breaker that never hears the outcome stays stuck open.
"""

import random

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.overload.breaker import BreakerState
from repro.overload.protection import (
    OverloadConfig,
    install_overload_protection,
)
from repro.overload.queueing import Priority


def build(queue_capacity=8, hedge_budget=2.0):
    topo = ClusterTopology.uniform(2, 4, capacity=60)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(11)),
        rng=random.Random(11),
    )
    protection = install_overload_protection(
        nn, OverloadConfig(
            queue_capacity=queue_capacity, service_rate=1.0,
            hedge_latency_budget=hedge_budget,
        )
    )
    meta = nn.create_file("/hot", num_blocks=1)
    return nn, protection, meta.block_ids[0]


def trip_at(breaker, when, times=10):
    for _ in range(times):
        breaker.record_failure(when)
    assert breaker.state(when) is BreakerState.OPEN


def test_half_open_primary_closes_when_hedge_wins():
    nn, protection, block = build()
    breakers = protection.breakers()
    client = DfsClient(nn, breakers=breakers, hedge_latency_budget=2.0)
    ranked = list(nn.replica_preference(block, reader=0))
    primary, alt = ranked[0], ranked[1]

    # Trip the primary's breaker far enough in the past that the
    # cool-down has elapsed: at read time it is HALF_OPEN and the read
    # consumes its only probe.
    trip_at(breakers[primary], -100.0)
    assert breakers[primary].state(0.0) is BreakerState.HALF_OPEN

    # Load the primary well past the hedge budget; the idle alternate
    # wins the race and serves the read.
    for _ in range(5):
        protection.queues[primary].offer(0.0, Priority.CLIENT_READ)
    result = client.read_block(block, reader=0)
    assert result.hedged
    assert result.source == alt
    assert client.hedge_wins == 1

    # The losing primary still served (slowly); its breaker heard the
    # outcome and resolved the probe.  Before the fix it stayed
    # HALF_OPEN with zero probes — open forever.
    assert breakers[primary].state(0.0) is BreakerState.CLOSED
    assert breakers[primary].allow(0.0)
    # The winner's breaker stays closed with a clean record.
    assert breakers[alt].state(0.0) is BreakerState.CLOSED
    assert breakers[alt].failure_rate(0.0) == 0.0


def test_shed_hedge_records_failure_on_the_alternate():
    nn, protection, block = build()
    breakers = protection.breakers()
    client = DfsClient(nn, breakers=breakers, hedge_latency_budget=2.0)
    ranked = list(nn.replica_preference(block, reader=0))
    primary, alt = ranked[0], ranked[1]

    for _ in range(5):
        protection.queues[primary].offer(0.0, Priority.CLIENT_READ)
    # Shrink the alternate's bound to its current depth: the projection
    # (which ignores bounds) still beats the loaded primary, but the
    # actual hedge offer sheds — a real failure signal the alternate's
    # breaker must hear.
    alt_queue = protection.queues[alt]
    for _ in range(2):
        alt_queue.offer(0.0, Priority.CLIENT_READ)
    alt_queue.capacity = 2

    result = client.read_block(block, reader=0)
    assert result.hedged
    assert result.source == primary
    assert client.hedged_reads == 1
    assert client.hedge_wins == 0
    assert breakers[alt].failure_rate(0.0) == 1.0
    # The primary served its own (slow) read; its breaker saw success.
    assert breakers[primary].failure_rate(0.0) == 0.0


def test_hedge_that_loses_the_race_records_success_on_the_alternate(
    monkeypatch,
):
    nn, protection, block = build()
    breakers = protection.breakers()
    client = DfsClient(nn, breakers=breakers, hedge_latency_budget=2.0)
    ranked = list(nn.replica_preference(block, reader=0))
    primary, alt = ranked[0], ranked[1]

    for _ in range(5):
        protection.queues[primary].offer(0.0, Priority.CLIENT_READ)
    # The projection races the actual service: make the alternate look
    # fast at hedge-candidate time but serve slower than the primary.
    alt_queue = protection.queues[alt]
    monkeypatch.setattr(
        alt_queue, "offer", lambda now, priority=None, work=1.0: 50.0
    )
    successes = []
    original = breakers[alt].record_success
    monkeypatch.setattr(
        breakers[alt], "record_success",
        lambda now: (successes.append(now), original(now)),
    )

    result = client.read_block(block, reader=0)
    assert result.hedged
    assert result.source == primary
    assert client.hedge_wins == 0
    # The alternate *did* serve — it just lost the race; that is still
    # a success from its breaker's point of view.
    assert successes == [0.0]
