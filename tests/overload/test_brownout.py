"""Tests for the Aurora brownout hysteresis controller."""

import pytest

from repro.errors import OverloadConfigError
from repro.overload.brownout import BrownoutController


class TestBrownoutController:
    def test_starts_inactive(self):
        ctrl = BrownoutController(enter_threshold=0.7, exit_threshold=0.4)
        assert not ctrl.active
        assert ctrl.entered == 0

    def test_enters_at_threshold(self):
        ctrl = BrownoutController(enter_threshold=0.7, exit_threshold=0.4)
        assert not ctrl.update(0.0, 0.69)
        assert ctrl.update(1.0, 0.7)
        assert ctrl.entered == 1
        assert ctrl.transitions == [(1.0, "enter", 0.7)]

    def test_hysteresis_band_holds_both_ways(self):
        ctrl = BrownoutController(enter_threshold=0.7, exit_threshold=0.4)
        # In the band while inactive: stays out.
        assert not ctrl.update(0.0, 0.5)
        ctrl.update(1.0, 0.9)
        # In the band while active: stays in.
        assert ctrl.update(2.0, 0.5)
        assert ctrl.update(3.0, 0.41)
        assert ctrl.exited == 0

    def test_exits_at_exit_threshold(self):
        ctrl = BrownoutController(enter_threshold=0.7, exit_threshold=0.4)
        ctrl.update(0.0, 0.8)
        assert not ctrl.update(5.0, 0.4)
        assert ctrl.exited == 1
        assert ctrl.transitions[-1] == (5.0, "exit", 0.4)

    def test_reentry_is_counted(self):
        ctrl = BrownoutController(enter_threshold=0.7, exit_threshold=0.4)
        for t, s in enumerate((0.8, 0.1, 0.9, 0.2)):
            ctrl.update(float(t), s)
        assert ctrl.entered == 2
        assert ctrl.exited == 2
        assert [d for _, d, _ in ctrl.transitions] == [
            "enter", "exit", "enter", "exit"
        ]

    def test_last_saturation_tracked(self):
        ctrl = BrownoutController()
        ctrl.update(0.0, 0.33)
        assert ctrl.last_saturation == pytest.approx(0.33)

    def test_validation(self):
        with pytest.raises(OverloadConfigError):
            BrownoutController(enter_threshold=0.0)
        with pytest.raises(OverloadConfigError):
            BrownoutController(enter_threshold=1.5)
        with pytest.raises(OverloadConfigError):
            BrownoutController(enter_threshold=0.5, exit_threshold=0.5)
        with pytest.raises(OverloadConfigError):
            BrownoutController(enter_threshold=0.5, exit_threshold=-0.1)
        ctrl = BrownoutController()
        with pytest.raises(OverloadConfigError):
            ctrl.update(0.0, -0.2)
