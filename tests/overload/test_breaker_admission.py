"""Tests for circuit breakers, token buckets and admission control."""

import pytest

from repro.errors import OverloadConfigError
from repro.overload.admission import AdmissionController, TokenBucket
from repro.overload.breaker import BreakerState, CircuitBreaker


def make_breaker(**kwargs):
    defaults = dict(failure_threshold=0.5, min_volume=4, window=60.0,
                    cooldown=30.0, half_open_probes=1)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        b = make_breaker()
        assert b.state(0.0) is BreakerState.CLOSED
        assert b.allow(0.0)

    def test_trips_at_threshold_with_min_volume(self):
        b = make_breaker()
        for _ in range(3):
            b.record_failure(0.0)
        assert b.state(0.0) is BreakerState.CLOSED  # volume not met
        b.record_failure(0.0)
        assert b.state(0.0) is BreakerState.OPEN
        assert b.trips == 1
        assert not b.allow(1.0)

    def test_successes_dilute_the_failure_rate(self):
        b = make_breaker()
        for _ in range(6):
            b.record_success(0.0)
        for _ in range(4):
            b.record_failure(0.0)
        assert b.state(0.0) is BreakerState.CLOSED  # 40% < 50%
        assert b.failure_rate(0.0) == pytest.approx(0.4)

    def test_window_expires_old_outcomes(self):
        b = make_breaker(window=10.0)
        for _ in range(4):
            b.record_failure(0.0)
        assert b.state(0.0) is BreakerState.OPEN
        b = make_breaker(window=10.0)
        for _ in range(3):
            b.record_failure(0.0)
        # The early failures scroll out of the window before the fourth.
        b.record_failure(20.0)
        assert b.state(20.0) is BreakerState.CLOSED

    def test_half_open_probe_success_closes(self):
        b = make_breaker(cooldown=30.0)
        for _ in range(4):
            b.record_failure(0.0)
        assert b.state(29.9) is BreakerState.OPEN
        assert b.state(30.0) is BreakerState.HALF_OPEN
        assert b.allow(30.0)       # consumes the probe slot
        assert not b.allow(30.0)   # no more probes until an outcome
        b.record_success(31.0)
        assert b.state(31.0) is BreakerState.CLOSED
        assert b.allow(31.0)

    def test_half_open_probe_failure_reopens(self):
        b = make_breaker(cooldown=30.0)
        for _ in range(4):
            b.record_failure(0.0)
        assert b.state(30.0) is BreakerState.HALF_OPEN
        b.record_failure(30.5)
        assert b.state(31.0) is BreakerState.OPEN
        assert b.trips == 2
        # A fresh cool-down applies from the re-trip.
        assert b.state(59.0) is BreakerState.OPEN
        assert b.state(60.5) is BreakerState.HALF_OPEN

    def test_validation(self):
        with pytest.raises(OverloadConfigError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(OverloadConfigError):
            CircuitBreaker(min_volume=0)
        with pytest.raises(OverloadConfigError):
            CircuitBreaker(window=0.0)
        with pytest.raises(OverloadConfigError):
            CircuitBreaker(half_open_probes=0)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        for _ in range(4):
            assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.5)  # one token back after 0.5s
        assert not bucket.try_acquire(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.try_acquire(0.0)
        assert bucket.available(100.0) == pytest.approx(2.0)

    def test_clock_must_be_monotonic(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.try_acquire(5.0)
        with pytest.raises(OverloadConfigError):
            bucket.try_acquire(4.0)

    def test_validation(self):
        with pytest.raises(OverloadConfigError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(OverloadConfigError):
            TokenBucket(rate=1.0, burst=0.0)
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(OverloadConfigError):
            bucket.try_acquire(0.0, tokens=0.0)


class TestAdmissionController:
    def test_admits_within_rate(self):
        ctrl = AdmissionController(replication_rate=4.0, burst=2.0)
        assert ctrl.admit("replication", 0.0)
        assert ctrl.admit("replication", 0.0)
        assert not ctrl.admit("replication", 0.0)
        assert ctrl.admitted["replication"] == 2
        assert ctrl.deferred["replication"] == 1

    def test_kinds_are_isolated(self):
        ctrl = AdmissionController(replication_rate=4.0,
                                   migration_rate=2.0, burst=1.0)
        assert ctrl.admit("replication", 0.0)
        assert ctrl.admit("migration", 0.0)  # its own bucket
        assert not ctrl.admit("migration", 0.0)

    def test_unknown_kind_rejected(self):
        ctrl = AdmissionController()
        with pytest.raises(OverloadConfigError):
            ctrl.admit("gossip", 0.0)

    def test_pressure_scales_cost(self):
        ctrl = AdmissionController(pressure=lambda: 0.5)
        assert ctrl.cost() == pytest.approx(2.0)
        ctrl = AdmissionController(pressure=lambda: 0.0)
        assert ctrl.cost() == pytest.approx(1.0)

    def test_full_pressure_clamps_to_max_scale(self):
        ctrl = AdmissionController(pressure=lambda: 1.0, max_cost_scale=20.0)
        assert ctrl.cost() == pytest.approx(20.0)
        ctrl = AdmissionController(pressure=lambda: 5.0)  # clamped to 1
        assert ctrl.cost() == pytest.approx(20.0)

    def test_saturated_cluster_starves_background_traffic(self):
        ctrl = AdmissionController(replication_rate=4.0, burst=8.0,
                                   pressure=lambda: 0.9)
        # Cost 10 against burst 8: nothing gets through.
        assert not ctrl.admit("replication", 0.0)
        calm = AdmissionController(replication_rate=4.0, burst=8.0,
                                   pressure=lambda: 0.0)
        assert calm.admit("replication", 0.0)
