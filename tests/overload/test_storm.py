"""Seeded overload storm: the end-to-end acceptance scenario, shrunk.

Runs the protected/unprotected A/B pair at 1.5x capacity on a short
horizon.  The full-length sweep (with committed results) lives in
``benchmarks/test_overload.py``; this standalone suite keeps the same
qualitative claims cheap enough for CI (``pytest -m overload``).
"""

import pytest

from repro.experiments.overload import (
    OverloadStormConfig,
    render_overload_pair,
    run_overload_pair,
)

pytestmark = pytest.mark.overload


@pytest.fixture(scope="module")
def storm_pair():
    config = OverloadStormConfig(
        horizon=200.0,
        drain=80.0,
        load_multiplier=1.5,
        zipf_s=1.2,
        aurora_period=60.0,
        seed=7,
    )
    return run_overload_pair(config)


class TestOverloadStorm:
    def test_protection_wins_on_availability(self, storm_pair):
        protected, unprotected = storm_pair
        assert protected.availability > unprotected.availability

    def test_protected_tail_is_bounded(self, storm_pair):
        protected, unprotected = storm_pair
        # Bounded queues cap the wait at capacity/rate; the unbounded
        # baseline's backlog grows without limit for the whole storm.
        assert protected.p99_latency <= 10.0
        assert unprotected.p99_latency > 30.0

    def test_load_is_actually_shed(self, storm_pair):
        protected, unprotected = storm_pair
        assert protected.reads_shed > 0
        assert protected.queue_shed > 0
        assert unprotected.reads_shed == 0

    def test_brownout_engages_only_under_protection(self, storm_pair):
        protected, unprotected = storm_pair
        assert protected.brownout_periods > 0
        assert unprotected.brownout_periods == 0

    def test_fsck_healthy_after_both_storms(self, storm_pair):
        for result in storm_pair:
            assert result.fsck is not None
            assert result.fsck.healthy, result.fsck.counts_by_check()

    def test_report_renders(self, storm_pair):
        protected, unprotected = storm_pair
        text = render_overload_pair(protected, unprotected)
        assert "protected" in text
        assert "availability" in text
