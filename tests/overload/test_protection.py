"""Tests for the installed overload stack and the client's use of it."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import OverloadSheddedError
from repro.overload.breaker import BreakerState
from repro.overload.protection import (
    OverloadConfig,
    install_overload_protection,
)
from repro.overload.queueing import Priority


def make_namenode(seed=0):
    topo = ClusterTopology.uniform(2, 4, capacity=60)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed),
    )


class TestInstall:
    def test_every_datanode_gets_a_queue(self):
        nn = make_namenode()
        protection = install_overload_protection(nn)
        for dn in nn.datanodes:
            assert dn.service_queue is protection.queues[dn.node_id]
        assert nn.admission is protection.admission

    def test_uninstall_detaches_everything(self):
        nn = make_namenode()
        protection = install_overload_protection(nn)
        protection.uninstall()
        assert all(dn.service_queue is None for dn in nn.datanodes)
        assert nn.admission is None

    def test_breakers_are_fresh_per_client(self):
        nn = make_namenode()
        protection = install_overload_protection(nn)
        a, b = protection.breakers(), protection.breakers()
        assert set(a) == {dn.node_id for dn in nn.datanodes}
        assert all(a[node] is not b[node] for node in a)


class TestClusterSaturation:
    def test_idle_cluster_is_zero(self):
        protection = install_overload_protection(make_namenode())
        assert protection.cluster_saturation(0.0) == 0.0

    def test_tracks_mean_queue_occupancy(self):
        nn = make_namenode()
        protection = install_overload_protection(
            nn, OverloadConfig(queue_capacity=4, service_rate=1.0)
        )
        full = protection.queues[0]
        for _ in range(4):
            full.offer(0.0, Priority.CLIENT_READ)
        assert protection.cluster_saturation(0.0) == pytest.approx(
            1.0 / len(nn.datanodes)
        )
        assert protection.max_saturation(0.0) == pytest.approx(1.0)

    def test_no_live_nodes_is_maximally_overloaded(self):
        nn = make_namenode()
        protection = install_overload_protection(nn)
        for dn in nn.datanodes:
            nn.fail_node(dn.node_id, re_replicate=False)
        assert protection.cluster_saturation(0.0) == 1.0

    def test_saturation_pressure_starves_admission(self):
        nn = make_namenode()
        protection = install_overload_protection(
            nn, OverloadConfig(queue_capacity=2, service_rate=1.0,
                               admission_burst=8.0)
        )
        assert nn.admission.admit("replication", 0.0)
        for queue in protection.queues.values():
            queue.offer(0.0, Priority.CLIENT_READ)
            queue.offer(0.0, Priority.CLIENT_READ)
        # Every queue full: cost hits max_cost_scale, above the burst.
        assert not nn.admission.admit("replication", 0.0)


class TestClientUnderOverload:
    """The read path: shed failover, breakers, hedging."""

    def _cluster(self, **config_kwargs):
        nn = make_namenode(seed=11)
        config_kwargs.setdefault("queue_capacity", 2)
        config_kwargs.setdefault("service_rate", 1.0)
        protection = install_overload_protection(
            nn, OverloadConfig(**config_kwargs)
        )
        meta = nn.create_file("/hot", num_blocks=1)
        return nn, protection, meta.block_ids[0]

    def test_shed_read_fails_over_without_backoff(self):
        nn, protection, block = self._cluster()
        client = DfsClient(nn, breakers=protection.breakers())
        primary = next(iter(nn.replica_preference(block, reader=0)))
        queue = protection.queues[primary]
        while queue.offer(0.0, Priority.CLIENT_READ) is not None:
            pass
        result = client.read_block(block, reader=0)
        assert result.failed_over
        assert result.source != primary
        assert result.backoff == 0.0  # shed answers are instant
        assert client.reads_shed == 1

    def test_all_replicas_shedding_raises(self):
        nn, protection, block = self._cluster()
        for node in nn.blockmap.locations(block):
            queue = protection.queues[node]
            while queue.offer(0.0, Priority.CLIENT_READ) is not None:
                pass
        client = DfsClient(nn)
        with pytest.raises(OverloadSheddedError):
            client.read_block(block, reader=0)
        assert client.read_errors == 1

    def test_tripped_breaker_skips_the_node(self):
        nn, protection, block = self._cluster()
        breakers = protection.breakers()
        client = DfsClient(nn, breakers=breakers)
        primary = next(iter(nn.replica_preference(block, reader=0)))
        for _ in range(10):
            breakers[primary].record_failure(0.0)
        assert breakers[primary].state(0.0) is BreakerState.OPEN
        result = client.read_block(block, reader=0)
        assert result.source != primary
        assert primary not in result.attempts
        assert client.breaker_skips == 1

    def test_hedge_beats_a_deep_primary_queue(self):
        nn, protection, block = self._cluster(
            queue_capacity=8, hedge_latency_budget=2.0
        )
        client = DfsClient(
            nn, breakers=protection.breakers(), hedge_latency_budget=2.0
        )
        ranked = list(nn.replica_preference(block, reader=0))
        # Load the primary well past the hedge budget; the next replica
        # in preference order stays idle and wins the race.
        for _ in range(5):
            protection.queues[ranked[0]].offer(0.0, Priority.CLIENT_READ)
        result = client.read_block(block, reader=0)
        assert result.hedged
        assert result.source == ranked[1]
        assert result.latency < 2.0
        assert client.hedged_reads == 1
        assert client.hedge_wins == 1

    def test_no_hedge_when_primary_is_fast(self):
        nn, protection, block = self._cluster(hedge_latency_budget=5.0)
        client = DfsClient(nn, hedge_latency_budget=5.0)
        result = client.read_block(block, reader=0)
        assert not result.hedged
        assert client.hedged_reads == 0
