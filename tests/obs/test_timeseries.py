"""Unit tests for the sim-clock time-series recorder."""

import pytest

from repro.errors import MetricsError
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import (
    HistogramSample,
    TimeSeries,
    TimeSeriesRecorder,
    bucket_fraction_below,
    bucket_percentile,
)
from repro.simulation.engine import Simulation


class TestTimeSeries:
    def test_append_and_points(self):
        series = TimeSeries("x_total", "counter")
        series.append(0.0, 0.0)
        series.append(10.0, 4.0)
        assert series.points() == [(0.0, 0.0), (10.0, 4.0)]
        assert series.latest() == (10.0, 4.0)

    def test_capacity_evicts_oldest(self):
        series = TimeSeries("x", "gauge", capacity=3)
        for i in range(5):
            series.append(float(i), float(i * i))
        assert series.times() == [2.0, 3.0, 4.0]
        assert len(series) == 3

    def test_capacity_must_hold_a_delta(self):
        with pytest.raises(MetricsError):
            TimeSeries("x", "gauge", capacity=1)

    def test_at_or_before(self):
        series = TimeSeries("x", "gauge")
        series.append(10.0, 1.0)
        series.append(20.0, 2.0)
        assert series.at_or_before(5.0) is None
        assert series.at_or_before(10.0) == (10.0, 1.0)
        assert series.at_or_before(15.0) == (10.0, 1.0)
        assert series.at_or_before(99.0) == (20.0, 2.0)

    def test_counter_rates(self):
        series = TimeSeries("x_total", "counter")
        for t, v in [(0.0, 0.0), (10.0, 5.0), (20.0, 5.0), (30.0, 11.0)]:
            series.append(t, v)
        assert series.rates() == [(10.0, 0.5), (20.0, 0.0), (30.0, 0.6)]

    def test_rates_clamp_counter_resets_to_zero(self):
        series = TimeSeries("x_total", "counter")
        series.append(0.0, 100.0)
        series.append(10.0, 3.0)  # registry reset between samples
        assert series.rates() == [(10.0, 0.0)]

    def test_delta_over_window(self):
        series = TimeSeries("x_total", "counter")
        series.append(0.0, 2.0)
        series.append(10.0, 6.0)
        series.append(20.0, 7.0)
        assert series.delta(0.0, 20.0) == 5.0
        assert series.delta(10.0, 20.0) == 1.0
        # No sample before t0: delta counts from zero.
        assert series.delta(-5.0, 10.0) == 6.0

    def test_window_histogram_differences_cumulative_buckets(self):
        series = TimeSeries(
            "lat", "histogram", bucket_bounds=(0.1, 1.0)
        )
        series.append(0.0, HistogramSample(2, 0.3, (1, 2, 2)))
        series.append(10.0, HistogramSample(5, 4.0, (2, 4, 5)))
        window = series.window_histogram(0.0, 10.0)
        assert window.count == 3
        assert window.sum == pytest.approx(3.7)
        assert window.buckets == (1, 2, 3)

    def test_round_trip(self):
        series = TimeSeries(
            "lat", "histogram", labels='kind="read"',
            bucket_bounds=(0.5,),
        )
        series.append(1.0, HistogramSample(1, 0.2, (1, 1)))
        clone = TimeSeries.from_dict(series.to_dict())
        assert clone.name == "lat"
        assert clone.labels == 'kind="read"'
        assert clone.bucket_bounds == (0.5,)
        (point,) = clone.points()
        assert point[0] == 1.0
        assert point[1].buckets == (1, 1)


class TestBucketMath:
    def test_percentile_interpolates(self):
        sample = HistogramSample(10, 5.0, (5, 10, 10))
        # p50 lands exactly at the first bound.
        assert bucket_percentile((1.0, 2.0), sample, 50.0) == 1.0
        # p75 is halfway through the (1, 2] bucket.
        assert bucket_percentile((1.0, 2.0), sample, 75.0) == 1.5

    def test_percentile_unbounded_bucket_falls_back(self):
        sample = HistogramSample(4, 100.0, (0, 0, 4))
        assert bucket_percentile((1.0, 2.0), sample, 99.0) == 2.0

    def test_percentile_empty_window(self):
        assert bucket_percentile((1.0,), HistogramSample(0, 0.0, (0, 0)),
                                 99.0) == 0.0

    def test_fraction_below(self):
        sample = HistogramSample(10, 5.0, (5, 10, 10))
        assert bucket_fraction_below((1.0, 2.0), sample, 2.0) == 1.0
        assert bucket_fraction_below((1.0, 2.0), sample, 1.0) == 0.5
        # Interpolated: halfway into the second bucket.
        assert bucket_fraction_below((1.0, 2.0), sample, 1.5) == 0.75

    def test_fraction_below_empty_window_is_compliant(self):
        assert bucket_fraction_below((1.0,), HistogramSample(0, 0.0, (0, 0)),
                                     0.5) == 1.0


class TestTimeSeriesRecorder:
    def make_registry(self):
        reg = MetricsRegistry()
        handles = {
            "ops": reg.counter("ops_total", "Ops", labelnames=["kind"]),
            "depth": reg.gauge("depth", "Depth"),
            "lat": reg.histogram("lat_seconds", "Latency",
                                 buckets=(0.1, 1.0)),
        }
        return reg, handles

    def test_samples_every_registry_leaf(self):
        reg, handles = self.make_registry()
        handles["ops"].labels(kind="move").inc(3)
        handles["depth"].set(2.0)
        handles["lat"].observe(0.5)
        recorder = TimeSeriesRecorder(reg, interval=10.0)
        recorder.sample(10.0)
        counter = recorder.get("ops_total", labels="move")
        assert counter.points() == [(10.0, 3.0)]
        assert recorder.get("depth").points() == [(10.0, 2.0)]
        hist = recorder.get("lat_seconds")
        assert hist.bucket_bounds == (0.1, 1.0)
        (point,) = hist.points()
        assert point[1].count == 1

    def test_sample_is_monotonic_in_sim_time(self):
        recorder = TimeSeriesRecorder(self.make_registry()[0], interval=10.0)
        recorder.sample(10.0)
        recorder.sample(10.0)  # period-boundary + periodic-event collision
        recorder.sample(5.0)
        assert recorder.samples_taken == 1

    def test_install_samples_on_the_simulation_clock(self):
        reg, handles = self.make_registry()
        counter = handles["ops"].labels(kind="move")
        sim = Simulation()
        recorder = TimeSeriesRecorder(reg, interval=10.0)
        recorder.install(sim)
        sim.schedule_at(15.0, lambda: counter.inc(7))
        sim.run(until=40.0)
        series = recorder.get("ops_total", labels="move")
        times = series.times()
        assert times[0] == pytest.approx(10.0)
        assert 20.0 in times
        # The sample at t=20 sees the t=15 increment.
        assert series.at_or_before(20.0)[1] == 7.0

    def test_probes_record_gauge_series(self):
        recorder = TimeSeriesRecorder(self.make_registry()[0], interval=1.0)
        ticks = [0]
        recorder.add_probe("engine_events", lambda: float(ticks[0]))
        recorder.sample(1.0)
        ticks[0] = 5
        recorder.sample(2.0)
        assert recorder.get("engine_events").values() == [0.0, 5.0]

    def test_summed_delta_across_labels(self):
        reg, handles = self.make_registry()
        ops = handles["ops"]
        recorder = TimeSeriesRecorder(reg, interval=10.0)
        recorder.sample(0.0)
        ops.labels(kind="move").inc(2)
        ops.labels(kind="swap").inc(3)
        recorder.sample(10.0)
        assert recorder.summed_delta("ops_total", 0.0, 10.0) == 5.0

    def test_round_trip(self):
        reg, handles = self.make_registry()
        handles["depth"].set(4.0)
        recorder = TimeSeriesRecorder(reg, interval=10.0)
        recorder.sample(10.0)
        clone = TimeSeriesRecorder.from_dict(recorder.to_dict())
        assert clone.get("depth").points() == [(10.0, 4.0)]
        assert clone.span() == recorder.span()

    def test_interval_validation(self):
        with pytest.raises(MetricsError):
            TimeSeriesRecorder(MetricsRegistry(), interval=0.0)
