"""Tests for the HTML/markdown telemetry dashboard renderers."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    render_html,
    render_markdown,
    select_panels,
    sparkline_svg,
)
from repro.obs.slo import availability_slo, latency_slo
from repro.obs.telemetry import TelemetryBundle, TelemetrySession
from repro.obs.tracer import Tracer
from repro.simulation.engine import Simulation


@pytest.fixture()
def bundle(tmp_path):
    registry = MetricsRegistry(enabled=False)
    tracer = Tracer(enabled=False)
    session = TelemetrySession(
        label="report-demo", interval=10.0, seed=1,
        registry=registry, tracer=tracer,
    )
    reads = registry.counter("repro_dfs_reads_total", "Reads",
                             labelnames=["locality"])
    errors = registry.counter("repro_dfs_read_errors_total", "Errors")
    lat = registry.histogram(
        "repro_dfs_read_latency_seconds", "Latency", buckets=(0.1, 1.0, 5.0)
    )
    depth = registry.gauge("repro_dfs_replication_queue_depth", "Depth")
    sim = Simulation()
    session.install(sim)
    session.add_objective(availability_slo(
        "availability", "repro_dfs_reads_total",
        "repro_dfs_read_errors_total", target=0.99, window=30.0,
    ))
    session.add_objective(latency_slo(
        "latency-p99", "repro_dfs_read_latency_seconds", threshold=1.0,
        target=0.5, window=30.0,
    ))

    def tick():
        reads.labels(locality="node_local").inc(3)
        errors.inc(1)
        lat.observe(0.05)
        lat.observe(3.0)
        depth.set(sim.now % 20)
        root = tracer.begin("dfs.read", sim_time=sim.now)
        attempt = tracer.begin("dfs.read.attempt", sim_time=sim.now,
                               parent=root.context, node=2)
        tracer.finish(attempt, end_sim=sim.now + 3.0)
        tracer.finish(root, end_sim=sim.now + 3.0)

    sim.schedule_periodic(5.0, tick)
    sim.run(until=90.0)
    session.finish(sim.now)
    return TelemetryBundle.load(session.write(tmp_path / "tel"))


class TestPanelSelection:
    def test_prefers_request_path_series(self, bundle):
        panels = select_panels(bundle)
        assert len(panels) >= 3
        labels = [label for label, _ in panels]
        assert any("repro_dfs_reads_total" in label for label in labels)
        assert any("(p99)" in label for label in labels)

    def test_skips_flat_series(self, bundle):
        labels = [label for label, _ in select_panels(bundle)]
        # The registry also carries never-touched series; all-zero
        # series must not waste a panel.
        assert all("repro_dfs_read_failovers_total" not in label
                   for label in labels)

    def test_limit_respected(self, bundle):
        assert len(select_panels(bundle, limit=3)) == 3


class TestSparkline:
    def test_renders_polyline(self):
        svg = sparkline_svg([(0.0, 1.0), (10.0, 3.0), (20.0, 2.0)])
        assert svg.startswith("<svg")
        assert "polyline" in svg

    def test_flat_and_tiny_series_do_not_crash(self):
        assert "<svg" in sparkline_svg([(0.0, 5.0), (10.0, 5.0)])
        empty = sparkline_svg([])
        assert "<svg" in empty and "polyline" not in empty


class TestMarkdown:
    def test_contains_slo_table_and_traces(self, bundle):
        text = render_markdown(bundle)
        assert "# Telemetry report: report-demo" in text
        assert "| availability |" in text
        assert "| latency-p99 |" in text
        assert "VIOLATED" in text  # 25% of reads error against a 1% budget
        assert "critical path:" in text
        assert "dfs.read (3s) -> dfs.read.attempt (3s)" in text

    def test_top_traces_bounded(self, bundle):
        text = render_markdown(bundle, top_traces=1)
        assert text.count("critical path:") == 1


class TestHtml:
    def test_self_contained_document(self, bundle):
        html = render_html(bundle)
        assert html.lstrip().startswith("<!DOCTYPE html>")
        # Self-contained: no scripts, no external fetches.
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert 'id="slo"' in html

    def test_has_panels_slos_and_traces(self, bundle):
        html = render_html(bundle)
        assert html.count("<svg") >= 3
        assert "availability" in html
        assert 'class="violated"' in html
        assert "critical path:" in html

    def test_escapes_labels(self, tmp_path):
        registry = MetricsRegistry(enabled=False)
        tracer = Tracer(enabled=False)
        session = TelemetrySession(
            label="<b>evil</b>", registry=registry, tracer=tracer,
        )
        sim = Simulation()
        session.install(sim)
        counter = registry.counter("x_total", "X")
        sim.schedule_periodic(5.0, lambda: counter.inc())
        sim.run(until=30.0)
        session.finish(sim.now)
        bundle = TelemetryBundle.load(session.write(tmp_path / "tel"))
        html = render_html(bundle)
        assert "<b>evil</b>" not in html
        assert "&lt;b&gt;evil&lt;/b&gt;" in html
