"""Smoke tests: the instrumented stack populates the default registry."""

import random

import pytest

from repro import obs
from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.core.instance import BlockSpec, PlacementProblem
from repro.core.local_search import balance_rack_aware
from repro.core.placement import PlacementState
from repro.core.rep_factor import compute_replication_factors
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.simulation.engine import Simulation


@pytest.fixture
def observability():
    """Enable the global registry/tracer for one test, clean on exit."""
    obs.enable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    yield obs.get_registry()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    obs.disable()


def make_namenode(num_racks=3, per_rack=4, capacity=200, seed=0, sim=None):
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed), sim=sim,
    )


def counter_total(registry, name):
    """Sum of a counter's series (0 when never incremented)."""
    metric = registry.get(name)
    if metric is None:
        return 0.0
    return sum(leaf.value for _, leaf in metric._series())


class TestCoreInstrumentation:
    def test_local_search_flushes_counters(self, observability):
        rng = random.Random(3)
        topo = ClusterTopology.uniform(2, 3, 100)
        specs = tuple(
            BlockSpec(block_id=i, popularity=rng.uniform(1, 10),
                      replication_factor=1, rack_spread=1)
            for i in range(12)
        )
        problem = PlacementProblem(topology=topo, blocks=specs)
        # Stack everything on one machine so the search must move blocks.
        state = PlacementState.from_assignment(
            problem, {spec.block_id: {0} for spec in specs}
        )
        stats = balance_rack_aware(state)
        assert stats.elapsed_seconds > 0.0
        assert counter_total(
            observability, "repro_core_search_runs_total"
        ) == 1
        ops = counter_total(
            observability, "repro_core_search_operations_total"
        )
        assert ops == stats.total_operations
        assert observability.get("repro_core_search_seconds") is not None

    def test_rep_factor_flushes_counters(self, observability):
        result = compute_replication_factors(
            popularities={0: 10.0, 1: 1.0},
            min_factors={0: 1, 1: 1},
            budget=5,
            num_machines=6,
        )
        assert result.elapsed_seconds > 0.0
        assert result.grants + result.steals == result.iterations
        assert counter_total(
            observability, "repro_core_repfactor_runs_total"
        ) == 1
        assert counter_total(
            observability, "repro_core_repfactor_iterations_total"
        ) == result.iterations


class TestDfsInstrumentation:
    def test_reads_classified_by_locality(self, observability):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        holder = next(iter(nn.blockmap.locations(meta.block_ids[0])))
        nn.record_access(meta.block_ids[0], reader=holder)
        reads = observability.get("repro_dfs_reads_total")
        assert reads.labels(locality="node_local").value == 1

    def test_failure_and_recovery_count_node_events(self, observability):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=2)
        nn.fail_node(0)
        nn.fail_node(0)  # idempotent: second call must not double-count
        nn.recover_node(0)
        events = observability.get("repro_dfs_node_events_total")
        assert events.labels(event="fail").value == 1
        assert events.labels(event="recover").value == 1


class TestAuroraPeriodInstrumentation:
    def test_run_periodic_populates_metrics_and_spans(self, observability):
        sim = Simulation()
        nn = make_namenode(num_racks=2, per_rack=3, sim=sim)
        aurora = AuroraSystem(nn, AuroraConfig(period=3600.0, epsilon=0.0))
        metas = [
            nn.create_file(f"/f{i}", num_blocks=1, replication=1,
                           rack_spread=1, writer=0)
            for i in range(6)
        ]
        for meta in metas:
            for _ in range(10):
                nn.record_access(meta.block_ids[0], reader=0)
        aurora.run_periodic(sim)
        sim.run(until=3600.0 + 1)

        assert len(aurora.reports) == 1
        report = aurora.reports[0]
        assert report.elapsed_seconds > 0.0
        assert set(report.phase_seconds) >= {"snapshot", "local_search",
                                             "replay"}

        assert counter_total(
            observability, "repro_aurora_periods_total"
        ) == 1
        for name in (
            "repro_core_search_runs_total",
            "repro_dfs_reads_total",
            "repro_monitor_accesses_total",
        ):
            assert counter_total(observability, name) > 0, name

        tracer = obs.get_tracer()
        period_spans = tracer.spans("aurora.period")
        assert len(period_spans) == 1
        assert period_spans[0].duration_seconds > 0.0
        assert period_spans[0].sim_time == pytest.approx(3600.0)
        child_names = {
            s.name for s in tracer.spans()
            if s.parent_id == period_spans[0].span_id
        }
        assert {"aurora.snapshot", "aurora.local_search",
                "aurora.replay"} <= child_names

    def test_disabled_registry_records_nothing(self):
        obs.disable()
        obs.get_registry().reset()
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        nn.record_access(meta.block_ids[0], reader=0)
        assert counter_total(
            obs.get_registry(), "repro_dfs_reads_total"
        ) == 0
