"""Tests for the telemetry session/bundle and the regression gate."""

import json

import pytest

from repro.errors import MetricsError
from repro.obs.gate import (
    GateViolation,
    check_bundle,
    compare,
    summarize_telemetry,
    write_baseline,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import availability_slo
from repro.obs.telemetry import TelemetryBundle, TelemetrySession
from repro.obs.tracer import Tracer
from repro.simulation.engine import Simulation


def make_session(**kwargs):
    registry = MetricsRegistry(enabled=False)
    tracer = Tracer(enabled=False)
    kwargs.setdefault("interval", 10.0)
    return TelemetrySession(
        registry=registry, tracer=tracer, **kwargs
    ), registry, tracer


def run_fake_workload(session, registry, tracer, latency=0.5):
    """Drive a tiny simulated run through the session's pipeline."""
    good = registry.counter("reads_total", "Reads")
    bad = registry.counter("read_errors_total", "Errors")
    lat = registry.histogram("latency_seconds", "Latency",
                             buckets=(1.0, 5.0))
    sim = Simulation()
    session.install(sim)
    session.add_objective(availability_slo(
        "availability", "reads_total", "read_errors_total",
        target=0.9, window=30.0,
    ))

    def tick():
        good.inc(9)
        bad.inc(1)
        lat.observe(latency)
        span = tracer.begin("dfs.read", sim_time=sim.now)
        tracer.finish(span, end_sim=sim.now + latency)

    sim.schedule_periodic(5.0, tick)
    sim.run(until=60.0)
    session.finish(sim.now)
    return session


class TestTelemetrySession:
    def test_enables_registry_and_tracer(self):
        session, registry, tracer = make_session()
        assert registry.enabled
        assert tracer.enabled
        assert session.slo.recorder is session.recorder

    def test_install_resets_carried_over_state(self):
        session, registry, tracer = make_session()
        registry.counter("stale_total", "Stale").inc(99)
        with tracer.trace("stale"):
            pass
        session.install(Simulation())
        assert registry.counter("stale_total").value == 0
        assert tracer.spans() == []

    def test_sampler_is_deterministic_per_seed_and_salt(self):
        session, _, _ = make_session(seed=3, trace_sample_rate=0.5)
        first, second, salted = (
            session.sampler(), session.sampler(), session.sampler(salt=1)
        )
        a = [first.sample() for _ in range(100)]
        b = [second.sample() for _ in range(100)]
        c = [salted.sample() for _ in range(100)]
        assert a == b
        assert a != c

    def test_write_and_load_round_trip(self, tmp_path):
        session, registry, tracer = make_session(label="demo", seed=7)
        run_fake_workload(session, registry, tracer)
        directory = session.write(tmp_path / "tel")
        bundle = TelemetryBundle.load(directory)
        assert bundle.meta["label"] == "demo"
        assert bundle.meta["seed"] == 7
        assert bundle.meta["samples_taken"] == session.recorder.samples_taken
        series = bundle.recorder.get("reads_total")
        assert series is not None and len(series) > 0
        (status,) = bundle.statuses
        assert status.objective.name == "availability"
        assert status.overall_sli == pytest.approx(0.9)
        traces = bundle.traces()
        assert traces and traces[0].name == "dfs.read"

    def test_load_rejects_non_telemetry_directory(self, tmp_path):
        (tmp_path / "meta.json").write_text("{}", encoding="utf-8")
        with pytest.raises(MetricsError, match="timeseries.json"):
            TelemetryBundle.load(tmp_path)


class TestRegressionGate:
    def make_bundle(self, tmp_path, latency=0.5, name="tel"):
        session, registry, tracer = make_session(label="gate")
        run_fake_workload(session, registry, tracer, latency=latency)
        return TelemetryBundle.load(session.write(tmp_path / name))

    def test_summary_is_deterministic(self, tmp_path):
        a = summarize_telemetry(self.make_bundle(tmp_path, name="a"))
        b = summarize_telemetry(self.make_bundle(tmp_path, name="b"))
        assert a == b
        assert a["reads_total/total"] > 0
        assert "latency_seconds/p99" in a
        assert a["slo/availability/overall_sli"] == pytest.approx(0.9)

    def test_identical_run_passes(self, tmp_path):
        bundle = self.make_bundle(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, summarize_telemetry(bundle))
        assert check_bundle(bundle, baseline) == []

    def test_flags_2x_latency_inflation(self, tmp_path):
        baseline_bundle = self.make_bundle(tmp_path, latency=2.0, name="a")
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, summarize_telemetry(baseline_bundle))
        inflated = self.make_bundle(tmp_path, latency=4.0, name="b")
        violations = check_bundle(inflated, baseline)
        keys = {v.key for v in violations}
        assert "latency_seconds/mean" in keys

    def test_missing_series_violates(self):
        violations = compare({}, {"reads_total/total": 100.0})
        (violation,) = violations
        assert violation.actual == 0.0
        assert "reads_total" in str(violation)

    def test_new_keys_are_not_regressions(self):
        assert compare({"brand_new/total": 5.0}, {}) == []

    def test_absolute_floor_protects_near_zero_counts(self):
        assert compare({"errors/total": 0.9}, {"errors/total": 0.0}) == []
        (violation,) = compare({"errors/total": 8.0},
                               {"errors/total": 2.0})
        assert violation.relative_delta == pytest.approx(3.0)

    def test_longest_prefix_tolerance_wins(self):
        summary = {"latency_seconds/p99": 2.0}
        baseline = {"latency_seconds/p99": 1.0}
        tolerances = {"latency_seconds": 0.05, "latency_seconds/p99": 2.0}
        assert compare(summary, baseline, tolerances,
                       absolute_floor=0.0) == []
        tolerances = {"latency_seconds": 2.0, "latency_seconds/p99": 0.05}
        violations = compare(summary, baseline, tolerances,
                             absolute_floor=0.0)
        assert len(violations) == 1
        assert violations[0].allowed == 0.05

    def test_baseline_file_round_trips_tolerances(self, tmp_path):
        path = write_baseline(
            tmp_path / "b.json", {"x/total": 1.0},
            tolerances={"x": 0.5}, note="demo",
        )
        raw = json.loads(path.read_text(encoding="utf-8"))
        assert raw["note"] == "demo"
        assert raw["tolerances"] == {"x": 0.5}
        assert raw["summary"] == {"x/total": 1.0}

    def test_violation_renders_readably(self):
        text = str(GateViolation("k/total", 10.0, 25.0, 0.25))
        assert "k/total" in text
        assert "150.0%" in text
