"""Golden-output tests for the Prometheus and JSON exporters."""

import json

from repro.obs.exporters import (
    snapshot_dict,
    to_json,
    to_prometheus_text,
    write_snapshot,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


def make_registry():
    reg = MetricsRegistry()
    c = reg.counter("demo_ops_total", "Operations", labelnames=["kind"])
    c.labels(kind="move").inc(3)
    c.labels(kind="swap").inc(1)
    reg.gauge("demo_depth", "Queue depth").set(2.5)
    h = reg.histogram("demo_latency_seconds", "Latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestPrometheusText:
    def test_golden_output(self):
        text = to_prometheus_text(make_registry())
        assert text == (
            "# HELP demo_depth Queue depth\n"
            "# TYPE demo_depth gauge\n"
            "demo_depth 2.5\n"
            "# HELP demo_latency_seconds Latency\n"
            "# TYPE demo_latency_seconds histogram\n"
            'demo_latency_seconds_bucket{le="0.1"} 1\n'
            'demo_latency_seconds_bucket{le="1.0"} 2\n'
            'demo_latency_seconds_bucket{le="+Inf"} 3\n'
            "demo_latency_seconds_sum 5.55\n"
            "demo_latency_seconds_count 3\n"
            "# HELP demo_ops_total Operations\n"
            "# TYPE demo_ops_total counter\n"
            'demo_ops_total{kind="move"} 3\n'
            'demo_ops_total{kind="swap"} 1\n'
        )

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=["path"]).labels(
            path='a"b\\c\nd'
        ).inc()
        text = to_prometheus_text(reg)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_label_escaping_round_trips_through_merge(self):
        awkward = 'a"b\\c\nd,e{f}'
        source = MetricsRegistry()
        source.counter("x_total", labelnames=["path"]).labels(
            path=awkward
        ).inc(3)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert to_prometheus_text(target) == to_prometheus_text(source)
        restored = target.counter("x_total", labelnames=["path"])
        assert restored.labels(path=awkward).value == 3

    def test_histogram_bucket_bound_formatting(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.25, 1.0, 10.0))
        h.observe(0.1)
        text = to_prometheus_text(reg)
        # Integral bounds render with one decimal, the last bucket is
        # the literal +Inf pseudo-bound.
        assert 'lat_seconds_bucket{le="0.25"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="10.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert text.index('le="+Inf"') > text.index('le="10.0"')


class TestJsonSnapshot:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.trace("phase", sim_time=3.0):
            pass
        doc = json.loads(to_json(make_registry(), tracer))
        assert doc["metrics"]["demo_depth"]["series"][""] == 2.5
        assert doc["spans"][0]["name"] == "phase"

    def test_spans_can_be_omitted(self):
        doc = snapshot_dict(make_registry(), include_spans=False)
        assert "spans" not in doc

    def test_write_snapshot_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "dir" / "snap.json"
        written = write_snapshot(target, make_registry(), Tracer())
        assert written == target
        doc = json.loads(target.read_text())
        assert "demo_ops_total" in doc["metrics"]
        assert doc["spans"] == []

    def test_write_snapshot_includes_spans(self, tmp_path):
        tracer = Tracer()
        root = tracer.begin("dfs.read", sim_time=5.0, block=3)
        tracer.finish(root, end_sim=6.5)
        target = write_snapshot(tmp_path / "snap.json", make_registry(),
                                tracer)
        doc = json.loads(target.read_text())
        (span,) = doc["spans"]
        assert span["name"] == "dfs.read"
        assert span["trace_id"] == root.trace_id
        assert span["end_sim"] == 6.5
        assert span["fields"] == {"block": 3}
        assert not span["in_flight"]
