"""Unit tests for the ring-buffered span tracer."""

import pytest

from repro.errors import MetricsError
from repro.obs.tracer import Tracer


class TestTracer:
    def test_records_span_with_fields_and_duration(self):
        tracer = Tracer()
        with tracer.trace("work", sim_time=42.0, kind="demo") as span:
            span.set(result="ok")
        spans = tracer.spans()
        assert len(spans) == 1
        assert spans[0].name == "work"
        assert spans[0].sim_time == 42.0
        assert spans[0].fields == {"kind": "demo", "result": "ok"}
        assert spans[0].duration_seconds >= 0.0
        assert spans[0].end_wall is not None

    def test_ring_buffer_wraps_keeping_most_recent(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.trace(f"op{i}"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["op2", "op3", "op4"]
        assert tracer.recorded == 5

    def test_nested_spans_record_parent_links(self):
        tracer = Tracer()
        with tracer.trace("outer") as outer:
            with tracer.trace("inner"):
                pass
        inner, outer_span = tracer.spans()
        # Children commit first (they close first).
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer_span.parent_id is None

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.trace("fails"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.fields["error"] == "ValueError"
        assert span.end_wall is not None

    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("ignored") as span:
            span.set(anything="goes")  # must not raise
        assert tracer.spans() == []
        assert tracer.recorded == 0

    def test_name_filter(self):
        tracer = Tracer()
        with tracer.trace("a"):
            pass
        with tracer.trace("b"):
            pass
        assert [s.name for s in tracer.spans("b")] == ["b"]

    def test_clear(self):
        tracer = Tracer()
        with tracer.trace("a"):
            pass
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.recorded == 0

    def test_as_dicts_round_trips(self):
        tracer = Tracer()
        with tracer.trace("a", sim_time=1.0):
            pass
        (d,) = tracer.as_dicts()
        assert d["name"] == "a"
        assert d["sim_time"] == 1.0
        assert "duration_seconds" in d

    def test_capacity_validation(self):
        with pytest.raises(MetricsError):
            Tracer(capacity=0)


class TestOpenSpans:
    def test_in_flight_span_reports_elapsed_duration(self):
        tracer = Tracer()
        span = tracer.begin("slow")
        assert span.in_flight
        first = span.duration_seconds
        assert first >= 0.0
        # Busy-wait a little so elapsed time observably advances.
        while span.duration_seconds == first:
            pass
        assert span.duration_seconds > first
        tracer.finish(span)
        assert not span.in_flight
        assert span.duration_seconds >= first

    def test_begin_finish_crosses_call_stacks(self):
        tracer = Tracer()
        span = tracer.begin("dfs.transfer", sim_time=10.0, size=64)
        assert tracer.spans() == []  # not committed until finished
        tracer.finish(span, end_sim=12.5)
        (committed,) = tracer.spans()
        assert committed.sim_duration == 2.5

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("once")
        tracer.finish(span, end_sim=1.0)
        tracer.finish(span, end_sim=99.0)  # duplicate callback
        (committed,) = tracer.spans()
        assert committed.end_sim == 1.0
        assert tracer.recorded == 1

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        root = tracer.begin("request")
        with tracer.trace("unrelated"):
            child = tracer.begin("work", parent=root.context)
        tracer.finish(child)
        tracer.finish(root)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_stack_nesting_inherits_trace_id(self):
        tracer = Tracer()
        with tracer.trace("outer") as outer:
            with tracer.trace("inner") as inner:
                assert tracer.current_context().span_id == inner.span_id
        assert inner.trace_id == outer.trace_id
        assert tracer.current_context() is None

    def test_roots_get_distinct_trace_ids(self):
        tracer = Tracer()
        with tracer.trace("a") as a:
            pass
        with tracer.trace("b") as b:
            pass
        assert a.trace_id != b.trace_id
