"""Unit tests for the ring-buffered span tracer."""

import pytest

from repro.errors import MetricsError
from repro.obs.tracer import Tracer


class TestTracer:
    def test_records_span_with_fields_and_duration(self):
        tracer = Tracer()
        with tracer.trace("work", sim_time=42.0, kind="demo") as span:
            span.set(result="ok")
        spans = tracer.spans()
        assert len(spans) == 1
        assert spans[0].name == "work"
        assert spans[0].sim_time == 42.0
        assert spans[0].fields == {"kind": "demo", "result": "ok"}
        assert spans[0].duration_seconds >= 0.0
        assert spans[0].end_wall is not None

    def test_ring_buffer_wraps_keeping_most_recent(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.trace(f"op{i}"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["op2", "op3", "op4"]
        assert tracer.recorded == 5

    def test_nested_spans_record_parent_links(self):
        tracer = Tracer()
        with tracer.trace("outer") as outer:
            with tracer.trace("inner"):
                pass
        inner, outer_span = tracer.spans()
        # Children commit first (they close first).
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer_span.parent_id is None

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.trace("fails"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.fields["error"] == "ValueError"
        assert span.end_wall is not None

    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("ignored") as span:
            span.set(anything="goes")  # must not raise
        assert tracer.spans() == []
        assert tracer.recorded == 0

    def test_name_filter(self):
        tracer = Tracer()
        with tracer.trace("a"):
            pass
        with tracer.trace("b"):
            pass
        assert [s.name for s in tracer.spans("b")] == ["b"]

    def test_clear(self):
        tracer = Tracer()
        with tracer.trace("a"):
            pass
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.recorded == 0

    def test_as_dicts_round_trips(self):
        tracer = Tracer()
        with tracer.trace("a", sim_time=1.0):
            pass
        (d,) = tracer.as_dicts()
        assert d["name"] == "a"
        assert d["sim_time"] == 1.0
        assert "duration_seconds" in d

    def test_capacity_validation(self):
        with pytest.raises(MetricsError):
            Tracer(capacity=0)
