"""Unit tests for the labeled metrics registry."""

import math
import random

import pytest

from repro.errors import MetricsError
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.simulation.metrics import Distribution


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_labels_cache_children(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labelnames=["kind"])
        a = c.labels(kind="move")
        b = c.labels(kind="move")
        assert a is b
        a.inc(3)
        assert c.labels(kind="move").value == 3
        assert c.labels(kind="swap").value == 0

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labelnames=["kind"])
        with pytest.raises(MetricsError):
            c.labels(wrong="x")
        with pytest.raises(MetricsError):
            reg.counter("plain_total").labels(kind="x")

    def test_labeled_parent_rejects_direct_observation(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labelnames=["kind"])
        with pytest.raises(MetricsError):
            c.inc()

    def test_disabled_registry_drops_observations(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("requests_total")
        c.inc(10)
        assert c.value == 0
        reg.enable()
        c.inc(10)
        assert c.value == 10


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == pytest.approx(4.0)


class TestHistogram:
    def test_observe_and_cumulative_counts(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(56.2)
        assert h.cumulative_counts() == [2, 3, 4]

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are upper-inclusive: observe(1.0) counts
        # toward le="1.0".
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.cumulative_counts() == [1, 1, 1]

    def test_mean_and_empty_percentile(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert math.isnan(h.mean())
        assert math.isnan(h.percentile(50))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean() == pytest.approx(3.0)

    def test_percentile_close_to_exact_distribution(self):
        # The bucket-interpolated estimate must track the exact empirical
        # percentile to within one bucket width.
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=DEFAULT_BUCKETS)
        exact = Distribution()
        rng = random.Random(7)
        for _ in range(2000):
            v = rng.expovariate(1.0 / 0.05)
            h.observe(v)
            exact.record(v)
        for q in (50, 90, 99):
            estimated = h.percentile(q)
            truth = exact.percentile(q)
            # Bucket width at these magnitudes is <= the next bound up.
            assert estimated == pytest.approx(truth, rel=1.0)
            assert estimated <= h.percentile(100)

    def test_percentile_validation(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        with pytest.raises(MetricsError):
            h.percentile(101)

    def test_bucket_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.histogram("bad", buckets=())
        with pytest.raises(MetricsError):
            reg.histogram("bad2", buckets=(1.0, 1.0))

    def test_labeled_children_share_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", labelnames=["op"], buckets=(1.0, 2.0))
        assert h.labels(op="a").buckets == (1.0, 2.0)


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(MetricsError):
            reg.gauge("x_total")

    def test_label_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=["a"])
        with pytest.raises(MetricsError):
            reg.counter("x_total", labelnames=["b"])

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("")
        with pytest.raises(MetricsError):
            reg.counter("has space")

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=["k"])
        c.labels(k="a").inc(5)
        reg.reset()
        assert reg.get("x_total") is c
        # The handle (and its cached children) stay usable.
        assert c.labels(k="a").value == 0
        c.labels(k="a").inc()
        assert c.labels(k="a").value == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter", labelnames=["k"]).labels(
            k="x"
        ).inc(2)
        reg.gauge("g", "a gauge").set(1.5)
        reg.histogram("h", "a histogram", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["series"]["{k='x'}"] == 2
        assert snap["g"]["series"][""] == 1.5
        hseries = snap["h"]["series"][""]
        assert hseries["count"] == 1
        assert hseries["buckets"]["+Inf"] == 1

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        assert reg.names() == ["a_total", "b_total"]
