"""Unit tests for the declarative SLO engine."""

import pytest

from repro.errors import MetricsError
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    SloEngine,
    SloObjective,
    SloStatus,
    availability_slo,
    latency_slo,
    threshold_slo,
)
from repro.obs.timeseries import TimeSeriesRecorder


def make_stack():
    reg = MetricsRegistry()
    handles = {
        "good": reg.counter("reads_total", "Reads"),
        "bad": reg.counter("read_errors_total", "Errors"),
        "lat": reg.histogram("latency_seconds", "Latency",
                             buckets=(1.0, 5.0)),
        "depth": reg.gauge("queue_depth", "Depth"),
    }
    recorder = TimeSeriesRecorder(reg, interval=10.0)
    return reg, handles, recorder, SloEngine(recorder)


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(MetricsError):
            SloObjective(name="x", kind="nope", target=0.9, window=60.0)

    def test_target_must_be_positive_fraction(self):
        with pytest.raises(MetricsError):
            availability_slo("x", "g", "b", target=0.0)
        with pytest.raises(MetricsError):
            availability_slo("x", "g", "b", target=1.5)

    def test_window_must_be_positive(self):
        with pytest.raises(MetricsError):
            latency_slo("x", "s", threshold=1.0, window=0.0)

    def test_round_trips(self):
        objective = latency_slo("p99", "latency_seconds", threshold=5.0,
                                target=0.95, window=120.0)
        assert SloObjective.from_dict(objective.to_dict()) == objective


class TestRatioSli:
    def test_windows_and_overall(self):
        _, handles, recorder, engine = make_stack()
        engine.add(availability_slo(
            "availability", "reads_total", "read_errors_total",
            target=0.9, window=60.0,
        ))
        recorder.sample(0.0)
        # Window 1: 18 good, 2 bad (0.9, compliant at target).
        handles["good"].inc(18)
        handles["bad"].inc(2)
        recorder.sample(60.0)
        # Window 2: 5 good, 5 bad (0.5, violating).
        handles["good"].inc(5)
        handles["bad"].inc(5)
        recorder.sample(120.0)
        (status,) = engine.evaluate()
        assert [w.compliant for w in status.windows] == [True, False]
        assert status.overall_sli == pytest.approx(23 / 30)
        assert status.windows_violated == 1
        assert status.violation_minutes == pytest.approx(1.0)
        assert not status.compliant

    def test_empty_window_is_compliant(self):
        _, _, recorder, engine = make_stack()
        engine.add(availability_slo(
            "availability", "reads_total", "read_errors_total",
            target=0.99, window=60.0,
        ))
        recorder.sample(0.0)
        recorder.sample(60.0)
        (status,) = engine.evaluate()
        assert all(w.compliant for w in status.windows)
        assert status.compliant


class TestLatencySli:
    def test_threshold_fraction_per_window(self):
        _, handles, recorder, engine = make_stack()
        engine.add(latency_slo(
            "p99", "latency_seconds", threshold=5.0, target=0.9,
            window=60.0,
        ))
        recorder.sample(0.0)
        for _ in range(9):
            handles["lat"].observe(0.5)
        handles["lat"].observe(50.0)  # 10% breach the 5s bound
        recorder.sample(60.0)
        for _ in range(10):
            handles["lat"].observe(50.0)
        recorder.sample(120.0)
        (status,) = engine.evaluate()
        first, second = status.windows
        assert first.sli == pytest.approx(0.9)
        assert first.compliant
        assert second.sli == 0.0
        assert not second.compliant
        # The windowed percentile is reported as the detail.
        assert second.detail == pytest.approx(5.0)

    def test_burn_rate_scales_with_budget(self):
        _, handles, recorder, engine = make_stack()
        engine.add(latency_slo(
            "p99", "latency_seconds", threshold=5.0, target=0.9,
            window=60.0,
        ))
        recorder.sample(0.0)
        for _ in range(8):
            handles["lat"].observe(0.5)
        handles["lat"].observe(50.0)
        handles["lat"].observe(50.0)  # 20% bad vs a 10% budget
        recorder.sample(60.0)
        (status,) = engine.evaluate()
        assert status.budget_consumed == pytest.approx(2.0)
        assert status.burn_rate == pytest.approx(2.0)


class TestThresholdSli:
    def test_window_max_bound(self):
        _, handles, recorder, engine = make_stack()
        engine.add(threshold_slo(
            "queue-bounded", "queue_depth", threshold=10.0, target=0.9,
            window=60.0,
        ))
        handles["depth"].set(3.0)
        recorder.sample(30.0)
        handles["depth"].set(25.0)
        recorder.sample(60.0)
        handles["depth"].set(1.0)
        recorder.sample(120.0)
        (status,) = engine.evaluate(start=0.0, end=120.0)
        first, second = status.windows
        assert not first.compliant
        assert first.detail == 25.0
        assert second.compliant
        # Time-based overall SLI: one of two windows compliant.
        assert status.overall_sli == pytest.approx(0.5)
        assert status.violation_minutes == pytest.approx(1.0)


class TestStatusSerialization:
    def test_round_trips(self):
        _, handles, recorder, engine = make_stack()
        engine.add(availability_slo(
            "availability", "reads_total", "read_errors_total",
            target=0.9, window=60.0,
        ))
        recorder.sample(0.0)
        handles["good"].inc(4)
        handles["bad"].inc(6)
        recorder.sample(60.0)
        (status,) = engine.evaluate()
        clone = SloStatus.from_dict(status.to_dict())
        assert clone.objective == status.objective
        assert clone.overall_sli == status.overall_sli
        assert clone.windows_violated == status.windows_violated
        assert clone.violation_minutes == status.violation_minutes
