"""Unit tests for causal trace assembly and sampling."""

import random

import pytest

from repro.errors import MetricsError
from repro.obs.tracer import Tracer
from repro.obs.tracing import TraceSampler, assemble_traces, format_trace


def make_read_trace(tracer):
    """A synthetic failed-over read: root + two attempts + a transfer."""
    root = tracer.begin("dfs.read", sim_time=100.0, block=7)
    first = tracer.begin("dfs.read.attempt", sim_time=100.0,
                         parent=root.context, node=1)
    first.set(outcome="failed", backoff=2.0)
    tracer.finish(first, end_sim=102.0)
    second = tracer.begin("dfs.read.attempt", sim_time=102.0,
                          parent=root.context, node=4)
    transfer = tracer.begin("dfs.transfer", sim_time=102.0,
                            parent=second.context, size=64)
    tracer.finish(transfer, end_sim=102.5)
    second.set(outcome="served")
    tracer.finish(second, end_sim=102.6)
    tracer.finish(root, end_sim=102.6)
    return root


class TestAssembleTraces:
    def test_rebuilds_the_span_tree(self):
        tracer = Tracer()
        make_read_trace(tracer)
        (trace,) = assemble_traces(tracer=tracer)
        assert trace.name == "dfs.read"
        assert trace.span_count == 4
        assert [c.name for c in trace.root.children] == [
            "dfs.read.attempt", "dfs.read.attempt",
        ]
        # Children are ordered chronologically (span-id order).
        assert trace.root.children[0].fields["node"] == 1

    def test_busy_seconds_prefers_sim_duration(self):
        tracer = Tracer()
        make_read_trace(tracer)
        (trace,) = assemble_traces(tracer=tracer)
        assert trace.duration_seconds == pytest.approx(2.6)
        assert trace.root.children[0].busy_seconds == pytest.approx(2.0)

    def test_critical_path_follows_busiest_child(self):
        tracer = Tracer()
        make_read_trace(tracer)
        (trace,) = assemble_traces(tracer=tracer)
        names = [node.name for node in trace.critical_path()]
        # The failed attempt (2.0s backoff) beats the served one (0.6s).
        assert names == ["dfs.read", "dfs.read.attempt"]
        assert trace.critical_path()[1].fields["outcome"] == "failed"

    def test_traces_sorted_slowest_first(self):
        tracer = Tracer()
        quick = tracer.begin("op", sim_time=0.0)
        tracer.finish(quick, end_sim=1.0)
        slow = tracer.begin("op", sim_time=0.0)
        tracer.finish(slow, end_sim=9.0)
        first, second = assemble_traces(tracer=tracer)
        assert first.duration_seconds == 9.0
        assert second.duration_seconds == 1.0

    def test_orphan_becomes_partial_trace_root(self):
        tracer = Tracer(capacity=2)
        root = tracer.begin("dfs.read", sim_time=0.0)
        tracer.finish(root, end_sim=3.0)  # commits first, evicted below
        for i in range(3):
            child = tracer.begin("dfs.read.attempt", sim_time=float(i),
                                 parent=root.context)
            tracer.finish(child, end_sim=float(i) + 0.5)
        traces = assemble_traces(tracer=tracer)
        # The two retained attempts lost their parent span; each becomes
        # the root of a partial trace instead of vanishing.
        assert len(traces) == 2
        assert all(t.name == "dfs.read.attempt" for t in traces)
        assert all(t.trace_id == root.trace_id for t in traces)

    def test_round_trips_through_span_dicts(self):
        tracer = Tracer()
        make_read_trace(tracer)
        from_dicts = assemble_traces(tracer.as_dicts())
        from_spans = assemble_traces(tracer=tracer)
        assert from_dicts[0].to_dict() == from_spans[0].to_dict()

    def test_needs_spans_or_tracer(self):
        with pytest.raises(MetricsError):
            assemble_traces()


class TestFormatTrace:
    def test_marks_critical_path_and_fields(self):
        tracer = Tracer()
        make_read_trace(tracer)
        (trace,) = assemble_traces(tracer=tracer)
        text = format_trace(trace)
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert "dfs.read (2.6s busy, 4 spans)" in lines[0]
        starred = [line for line in lines[1:] if line.startswith("*")]
        # Root and the failed attempt are on the critical path.
        assert len(starred) == 2
        assert "outcome=failed" in starred[1]


class TestTraceSampler:
    def test_deterministic_for_a_seed(self):
        a = TraceSampler(0.5, random.Random(7))
        b = TraceSampler(0.5, random.Random(7))
        assert [a.sample() for _ in range(20)] == [
            b.sample() for _ in range(20)
        ]

    def test_rate_one_always_samples(self):
        sampler = TraceSampler(1.0)
        assert all(sampler.sample() for _ in range(10))
        assert sampler.sampled == sampler.decisions == 10

    def test_rate_zero_never_samples(self):
        sampler = TraceSampler(0.0)
        assert not any(sampler.sample() for _ in range(10))
        assert sampler.sampled == 0

    def test_rate_validation(self):
        with pytest.raises(MetricsError):
            TraceSampler(1.5)
