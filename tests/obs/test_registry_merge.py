"""Tests for folding worker registry snapshots into a parent registry."""

import math

import pytest

from repro.errors import MetricsError
from repro.obs.registry import MetricsRegistry


def make_registry():
    return MetricsRegistry(enabled=True)


class TestCounterAndGaugeMerge:
    def test_counters_add(self):
        parent, worker = make_registry(), make_registry()
        parent.counter("jobs_total").inc(3)
        worker.counter("jobs_total").inc(5)
        parent.merge(worker.snapshot())
        assert parent.counter("jobs_total").value == 8

    def test_labeled_counters_add_per_series(self):
        parent, worker = make_registry(), make_registry()
        c = parent.counter("ops_total", labelnames=["kind"])
        c.labels(kind="move").inc(2)
        w = worker.counter("ops_total", labelnames=["kind"])
        w.labels(kind="move").inc(1)
        w.labels(kind="swap").inc(7)
        parent.merge(worker.snapshot())
        assert c.labels(kind="move").value == 3
        # A series absent in the parent is created by the merge.
        assert c.labels(kind="swap").value == 7

    def test_gauges_take_incoming_value(self):
        parent, worker = make_registry(), make_registry()
        parent.gauge("queue_depth").set(10)
        worker.gauge("queue_depth").set(4)
        parent.merge(worker.snapshot())
        assert parent.gauge("queue_depth").value == 4

    def test_merge_order_is_last_write_wins_for_gauges(self):
        parent = make_registry()
        for value in (1.0, 9.0, 5.0):
            worker = make_registry()
            worker.gauge("g").set(value)
            parent.merge(worker.snapshot())
        assert parent.gauge("g").value == 5.0

    def test_missing_metric_created_with_metadata(self):
        parent, worker = make_registry(), make_registry()
        worker.counter("new_total", "fresh help", ["mode"]).labels(
            mode="x"
        ).inc(2)
        parent.merge(worker.snapshot())
        metric = parent.get("new_total")
        assert metric is not None
        assert metric.kind == "counter"
        assert metric.help == "fresh help"
        assert metric.labelnames == ("mode",)
        assert metric.labels(mode="x").value == 2

    def test_merge_ignores_enabled_flag(self):
        # The snapshot was already paid for in the worker; a disabled
        # parent must still absorb it.
        parent = MetricsRegistry(enabled=False)
        worker = make_registry()
        worker.counter("c").inc(4)
        parent.merge(worker.snapshot())
        assert parent.counter("c").value == 4

    def test_unknown_kind_rejected(self):
        parent = make_registry()
        with pytest.raises(MetricsError):
            parent.merge({
                "weird": {
                    "kind": "summary", "help": "", "labelnames": [],
                    "series": {"": 1.0},
                },
            })


class TestHistogramMerge:
    BUCKETS = (1.0, 5.0, 10.0)

    def test_counts_sum_and_extremes_combine(self):
        parent, worker = make_registry(), make_registry()
        h = parent.histogram("lat", buckets=self.BUCKETS)
        for value in (0.5, 7.0):
            h.observe(value)
        w = worker.histogram("lat", buckets=self.BUCKETS)
        for value in (0.2, 3.0, 42.0):
            w.observe(value)
        parent.merge(worker.snapshot())
        assert h.count == 5
        assert h.sum == pytest.approx(0.5 + 7.0 + 0.2 + 3.0 + 42.0)
        assert h._min == pytest.approx(0.2)
        assert h._max == pytest.approx(42.0)
        assert h.cumulative_counts() == [2, 3, 4, 5]

    def test_merged_equals_single_registry(self):
        # Observing a sample stream split across two registries and
        # merging must equal observing it all in one.
        samples_a = [0.1, 0.9, 4.0]
        samples_b = [2.0, 8.0, 100.0]
        combined = make_registry()
        reference = combined.histogram("h", buckets=self.BUCKETS)
        for value in samples_a + samples_b:
            reference.observe(value)
        parent, worker = make_registry(), make_registry()
        for value in samples_a:
            parent.histogram("h", buckets=self.BUCKETS).observe(value)
        for value in samples_b:
            worker.histogram("h", buckets=self.BUCKETS).observe(value)
        parent.merge(worker.snapshot())
        merged = parent.histogram("h", buckets=self.BUCKETS)
        assert merged.cumulative_counts() == reference.cumulative_counts()
        assert merged.sum == pytest.approx(reference.sum)
        assert merged.count == reference.count
        assert merged.percentile(50) == pytest.approx(
            reference.percentile(50)
        )

    def test_empty_incoming_histogram_keeps_extremes(self):
        parent, worker = make_registry(), make_registry()
        h = parent.histogram("lat", buckets=self.BUCKETS)
        h.observe(2.0)
        worker.histogram("lat", buckets=self.BUCKETS)  # no samples
        parent.merge(worker.snapshot())
        assert h.count == 1
        assert h._min == pytest.approx(2.0)
        assert h._max == pytest.approx(2.0)

    def test_missing_histogram_recreated_with_worker_buckets(self):
        parent, worker = make_registry(), make_registry()
        worker.histogram("lat", buckets=self.BUCKETS).observe(3.0)
        parent.merge(worker.snapshot())
        recreated = parent.get("lat")
        assert recreated.buckets == self.BUCKETS
        assert recreated.count == 1
        assert math.isclose(recreated.sum, 3.0)

    def test_bucket_layout_mismatch_rejected(self):
        parent, worker = make_registry(), make_registry()
        parent.histogram("lat", buckets=(1.0, 2.0))
        worker.histogram("lat", buckets=self.BUCKETS).observe(0.5)
        with pytest.raises(MetricsError):
            parent.merge(worker.snapshot())

    def test_labeled_histograms_merge_per_series(self):
        parent, worker = make_registry(), make_registry()
        w = worker.histogram("t", labelnames=["phase"],
                             buckets=self.BUCKETS)
        w.labels(phase="snapshot").observe(0.5)
        w.labels(phase="replay").observe(6.0)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        merged = parent.get("t")
        assert merged.labels(phase="snapshot").count == 2
        assert merged.labels(phase="replay").sum == pytest.approx(12.0)
