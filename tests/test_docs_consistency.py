"""Meta-tests keeping the documentation honest.

DESIGN.md promises a bench target per experiment and a module per
subsystem; these tests verify the promises against the file tree so the
docs cannot silently rot.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text(encoding="utf-8")


class TestDesignDocument:
    def test_every_bench_target_exists(self):
        design = read("DESIGN.md")
        targets = set(re.findall(r"`benchmarks/(test_\w+\.py)", design))
        assert targets, "DESIGN.md lists no bench targets"
        for target in targets:
            assert (REPO / "benchmarks" / target).exists(), target

    def test_every_named_module_imports(self):
        import importlib

        design = read("DESIGN.md")
        modules = set(re.findall(r"`(repro\.[a-z_.]+)`", design))
        assert modules
        for module in modules:
            importlib.import_module(module)

    def test_experiment_ids_are_continuous(self):
        design = read("DESIGN.md")
        ids = sorted(
            int(m) for m in re.findall(r"\| E(\d+) \|", design)
        )
        assert ids == list(range(1, len(ids) + 1))

    def test_mentions_paper_check(self):
        assert "Paper-text check" in read("DESIGN.md")


class TestExperimentsDocument:
    def test_every_experiment_section_has_a_bench(self):
        text = read("EXPERIMENTS.md")
        benches = set(re.findall(r"`benchmarks/(test_\w+\.py)`", text))
        for bench in benches:
            assert (REPO / "benchmarks" / bench).exists(), bench

    def test_mentions_every_figure(self):
        text = read("EXPERIMENTS.md")
        for figure in ("Figure 3", "Figure 4", "Figure 5", "Figure 6"):
            assert figure in text


class TestReadme:
    def test_quickstart_code_runs(self):
        readme = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README has no python examples"
        namespace = {}
        for block in blocks:
            exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102

    def test_examples_directory_matches_claims(self):
        examples = sorted(p.name for p in (REPO / "examples").glob("*.py"))
        assert "quickstart.py" in examples
        assert len(examples) >= 3  # the deliverable's minimum

    def test_install_instructions_present(self):
        readme = read("README.md")
        assert "pip install -e ." in readme
        assert "pytest benchmarks/ --benchmark-only" in readme
