"""Tests for the fair scheduler variant."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.scheduler.fair import FairScheduler
from repro.scheduler.capacity import MapReduceScheduler
from repro.scheduler.job import Job
from repro.scheduler.runtime import TaskRuntimeModel
from repro.simulation.engine import Simulation


def build(scheduler_cls, slots=1, seed=0):
    sim = Simulation()
    topo = ClusterTopology.uniform(1, 2, capacity=100)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        sim=sim, rng=random.Random(seed),
    )
    scheduler = scheduler_cls(
        sim, nn, slots_per_machine=slots,
        runtime=TaskRuntimeModel(jitter=0.0),
    )
    return sim, nn, scheduler


def test_fifo_drains_first_job_before_second():
    sim, nn, scheduler = build(MapReduceScheduler)
    meta = nn.create_file("/a", num_blocks=6, replication=1, rack_spread=1)
    big = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
              task_duration=10.0)
    small_meta = nn.create_file("/b", num_blocks=1, replication=1,
                                rack_spread=1)
    small = Job(job_id=1, submit_time=0.0,
                block_ids=list(small_meta.block_ids), task_duration=10.0)
    scheduler.submit_job(big)
    scheduler.submit_job(small)
    sim.run()
    # FIFO: the small job waits behind the big one's task backlog.
    assert small.finish_time >= big.tasks[0].finish_time


def test_fair_scheduler_interleaves_jobs():
    def finish_times(scheduler_cls):
        sim, nn, scheduler = build(scheduler_cls)
        big_meta = nn.create_file("/a", num_blocks=8, replication=1,
                                  rack_spread=1)
        small_meta = nn.create_file("/b", num_blocks=1, replication=1,
                                    rack_spread=1)
        big = Job(job_id=0, submit_time=0.0,
                  block_ids=list(big_meta.block_ids), task_duration=10.0)
        small = Job(job_id=1, submit_time=0.0,
                    block_ids=list(small_meta.block_ids), task_duration=10.0)
        scheduler.submit_job(big)
        scheduler.submit_job(small)
        sim.run()
        return big.finish_time, small.finish_time

    fifo_big, fifo_small = finish_times(MapReduceScheduler)
    fair_big, fair_small = finish_times(FairScheduler)
    # Fairness: the small job finishes much earlier than under FIFO at
    # the cost of delaying the big job by at most one task slot-time.
    assert fair_small < fifo_small
    assert fair_big <= fifo_big + 10.0 + 1e-9


def test_fair_scheduler_completes_everything():
    sim, nn, scheduler = build(FairScheduler, slots=2, seed=3)
    jobs = []
    for i in range(5):
        meta = nn.create_file(f"/f{i}", num_blocks=i + 1, replication=2)
        job = Job(job_id=i, submit_time=float(i), block_ids=list(meta.block_ids),
                  task_duration=5.0)
        jobs.append(job)
        sim.schedule_at(job.submit_time, lambda j=job: scheduler.submit_job(j))
    sim.run()
    assert all(job.is_complete() for job in jobs)
    assert scheduler.jobs_completed == 5


def test_fair_ordering_prefers_fewest_running():
    sim, nn, scheduler = build(FairScheduler, slots=1)
    meta_a = nn.create_file("/a", num_blocks=4, replication=1, rack_spread=1)
    meta_b = nn.create_file("/b", num_blocks=4, replication=1, rack_spread=1)
    job_a = Job(job_id=0, submit_time=0.0, block_ids=list(meta_a.block_ids),
                task_duration=10.0)
    job_b = Job(job_id=1, submit_time=0.0, block_ids=list(meta_b.block_ids),
                task_duration=10.0)
    scheduler.submit_job(job_a)
    scheduler.submit_job(job_b)
    # Job A grabbed both slots on submission (B did not exist yet), but
    # from the second wave on, fair ordering hands freed slots to the
    # job with fewer running tasks — so both jobs make progress.
    sim.run(until=15.0)
    started_a = sum(1 for t in job_a.tasks if t.start_time is not None)
    started_b = sum(1 for t in job_b.tasks if t.start_time is not None)
    assert started_b >= 1
    assert started_a <= 3
    sim.run()
    # Equal work, fair shares: both jobs finish at the same time.
    assert job_a.finish_time == pytest.approx(job_b.finish_time, abs=10.0)
