"""Scheduler fuzz: slot accounting survives random failures + speculation.

Random job streams, machine failures/recoveries and speculative backups
run concurrently; at every checkpoint the slot ledger must balance
(used slots == live attempts on that machine) and at the end every job
must complete with all slots free.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.scheduler.capacity import MapReduceScheduler
from repro.scheduler.job import Job
from repro.scheduler.runtime import TaskRuntimeModel
from repro.scheduler.speculation import SpeculativeExecutor
from repro.simulation.engine import Simulation


def _slot_ledger_balanced(scheduler):
    """used_slots per machine equals its live attempt count."""
    per_machine = {m.machine_id: 0 for m in scheduler.machines}
    for attempts in scheduler._attempts.values():
        for attempt in attempts:
            if not attempt.cancelled:
                per_machine[attempt.machine_id] += 1
    for machine in scheduler.machines:
        if machine.alive:
            if machine.used_slots != per_machine[machine.machine_id]:
                return False
    return True


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_slot_ledger_balances_under_chaos(seed):
    rng = random.Random(seed)
    sim = Simulation()
    topo = ClusterTopology.uniform(2, 4, capacity=100)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed + 1)),
        sim=sim, rng=random.Random(seed + 2),
    )
    scheduler = MapReduceScheduler(
        sim, nn, slots_per_machine=2,
        runtime=TaskRuntimeModel(jitter=0.2, rng=random.Random(seed + 3)),
    )
    executor = SpeculativeExecutor(
        sim, scheduler, check_interval=7.0, slowdown_threshold=1.2,
    )
    executor.start()

    jobs = []
    for i in range(rng.randint(3, 8)):
        meta = nn.create_file(f"/f{i}", num_blocks=rng.randint(1, 4))
        job = Job(job_id=i, submit_time=rng.uniform(0, 60),
                  block_ids=list(meta.block_ids),
                  task_duration=rng.uniform(5, 25))
        jobs.append(job)
        sim.schedule_at(job.submit_time, lambda j=job: scheduler.submit_job(j))

    # Random failure/recovery churn, never sinking below quorum.
    for _ in range(rng.randint(1, 4)):
        victim = rng.randrange(topo.num_machines)
        down_at = rng.uniform(5, 80)
        up_at = down_at + rng.uniform(10, 40)
        sim.schedule_at(down_at, lambda v=victim: (
            nn.datanode(v).crash() if len(nn.live_nodes()) > 4 else None,
            scheduler.fail_machine(v) if len(nn.live_nodes()) > 4 else None,
        ))
        sim.schedule_at(up_at, lambda v=victim: (
            nn.recover_node(v),
            scheduler.recover_machine(v),
        ))

    checkpoints = [20.0, 60.0, 120.0]
    for checkpoint in checkpoints:
        sim.run(until=checkpoint)
        assert _slot_ledger_balanced(scheduler)

    executor.stop()
    # Recover everything and drain the backlog.
    for dn in nn.datanodes:
        if not dn.alive:
            nn.recover_node(dn.node_id)
            scheduler.recover_machine(dn.node_id)
    nn.check_replication()
    sim.run(until=5000.0)
    assert scheduler.jobs_completed == len(jobs)
    assert all(job.is_complete() for job in jobs)
    assert all(m.used_slots == 0 for m in scheduler.machines)
    assert _slot_ledger_balanced(scheduler)
