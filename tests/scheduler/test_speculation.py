"""Tests for speculative execution and task attempts."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import SchedulerError
from repro.scheduler.capacity import MapReduceScheduler
from repro.scheduler.job import Job, TaskState
from repro.scheduler.runtime import TaskRuntimeModel
from repro.scheduler.speculation import SpeculativeExecutor
from repro.simulation.engine import Simulation


def build(num_racks=2, per_rack=3, slots=1, seed=0):
    sim = Simulation()
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity=100)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        sim=sim, rng=random.Random(seed),
    )
    scheduler = MapReduceScheduler(
        sim, nn, slots_per_machine=slots,
        runtime=TaskRuntimeModel(jitter=0.0),
    )
    return sim, nn, scheduler


class TestTaskAttempts:
    def test_primary_attempt_tracked_and_cleared(self):
        sim, nn, scheduler = build()
        meta = nn.create_file("/a", num_blocks=1)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=10.0)
        scheduler.submit_job(job)
        assert len(scheduler.live_attempts(0, 0)) == 1
        sim.run()
        assert scheduler.live_attempts(0, 0) == []
        assert job.is_complete()

    def test_speculative_attempt_wins_when_faster(self):
        sim, nn, scheduler = build(slots=2)
        meta = nn.create_file("/a", num_blocks=1, replication=1,
                              rack_spread=1)
        block = meta.block_ids[0]
        holder = next(iter(nn.blockmap.locations(block)))
        # Pin the holder so the primary goes remote (2x slower).
        scheduler.machines[holder].reserve_slot()
        scheduler.machines[holder].reserve_slot()
        job = Job(job_id=0, submit_time=0.0, block_ids=[block],
                  task_duration=10.0)
        scheduler.submit_job(job)
        task = job.tasks[0]
        assert task.state is TaskState.RUNNING
        assert task.locality.is_remote
        # Free the holder and launch a backup: it reads locally and wins.
        scheduler.machines[holder].release_slot()
        scheduler.machines[holder].release_slot()
        sim.run(until=5.0)
        assert scheduler.launch_speculative(job, task)
        assert len(scheduler.live_attempts(0, 0)) == 2
        sim.run()
        assert job.is_complete()
        assert task.machine == holder
        assert scheduler.speculative_wins == 1
        # The loser's slot was released.
        assert all(m.used_slots == 0 for m in scheduler.machines)

    def test_speculative_attempt_loses_when_slower(self):
        sim, nn, scheduler = build(slots=2)
        meta = nn.create_file("/a", num_blocks=1)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=10.0)
        scheduler.submit_job(job)
        task = job.tasks[0]
        primary_machine = task.machine
        sim.run(until=8.0)
        # Backup started near the end: primary finishes first.
        scheduler.launch_speculative(job, task)
        sim.run()
        assert task.machine == primary_machine
        assert scheduler.speculative_wins == 0
        assert all(m.used_slots == 0 for m in scheduler.machines)

    def test_failed_machine_with_backup_keeps_task_running(self):
        sim, nn, scheduler = build(slots=2)
        meta = nn.create_file("/a", num_blocks=1)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=50.0)
        scheduler.submit_job(job)
        task = job.tasks[0]
        sim.run(until=5.0)
        assert scheduler.launch_speculative(job, task)
        primary_machine = task.machine
        scheduler.fail_machine(primary_machine)
        nn.fail_node(primary_machine)
        # The surviving backup finishes the task without a re-queue.
        assert task.state is TaskState.RUNNING
        sim.run()
        assert job.is_complete()
        assert task.machine != primary_machine


class TestSpeculativeExecutor:
    def test_scan_backs_up_stragglers(self):
        sim, nn, scheduler = build(slots=2)
        # Model a genuinely sick machine: remote execution is 4x slower,
        # the regime speculation targets (a 2x remote task cannot be
        # beaten once detection has already cost one local task-time).
        scheduler.runtime = TaskRuntimeModel(
            rack_local_factor=4.0, remote_factor=4.0, jitter=0.0,
        )
        meta = nn.create_file("/a", num_blocks=1, replication=1,
                              rack_spread=1)
        block = meta.block_ids[0]
        holder = next(iter(nn.blockmap.locations(block)))
        scheduler.machines[holder].reserve_slot()
        scheduler.machines[holder].reserve_slot()
        job = Job(job_id=0, submit_time=0.0, block_ids=[block],
                  task_duration=10.0)
        scheduler.submit_job(job)
        scheduler.machines[holder].release_slot()
        scheduler.machines[holder].release_slot()
        executor = SpeculativeExecutor(
            sim, scheduler, check_interval=4.0, slowdown_threshold=1.2,
        )
        executor.start()
        sim.run(until=100.0)  # bounded: the periodic scan never drains
        executor.stop()
        sim.run()
        assert scheduler.speculative_launches >= 1
        assert job.is_complete()
        # The backup (local, 10s) beats the remote primary (20s).
        assert scheduler.speculative_wins == 1
        assert job.tasks[0].machine == holder

    def test_no_backups_for_healthy_tasks(self):
        sim, nn, scheduler = build(slots=2)
        meta = nn.create_file("/a", num_blocks=2)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=10.0)
        scheduler.submit_job(job)
        executor = SpeculativeExecutor(
            sim, scheduler, check_interval=3.0, slowdown_threshold=1.5,
        )
        executor.start()
        sim.run(until=60.0)
        executor.stop()
        sim.run()
        assert scheduler.speculative_launches == 0

    def test_validation_and_double_start(self):
        sim, nn, scheduler = build()
        with pytest.raises(SchedulerError):
            SpeculativeExecutor(sim, scheduler, check_interval=0.0)
        with pytest.raises(SchedulerError):
            SpeculativeExecutor(sim, scheduler, slowdown_threshold=1.0)
        with pytest.raises(SchedulerError):
            SpeculativeExecutor(sim, scheduler, max_backups_per_scan=0)
        executor = SpeculativeExecutor(sim, scheduler)
        executor.start()
        with pytest.raises(SchedulerError):
            executor.start()
        executor.stop()
        executor.stop()  # idempotent
