"""Unit and integration tests for the MapReduce scheduler substrate."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import SchedulerError
from repro.scheduler.capacity import MapReduceScheduler, QueueConfig
from repro.scheduler.delay import DelaySchedulingPolicy, NoDelayPolicy
from repro.scheduler.job import Job, MapTask, TaskLocality, TaskState
from repro.scheduler.runtime import TaskRuntimeModel
from repro.simulation.engine import Simulation


def build_cluster(num_racks=2, per_rack=3, capacity=100, slots=2, seed=0):
    sim = Simulation()
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        sim=sim, rng=random.Random(seed),
    )
    scheduler = MapReduceScheduler(
        sim, nn, slots_per_machine=slots,
        runtime=TaskRuntimeModel(jitter=0.0), rng=random.Random(seed),
    )
    return sim, nn, scheduler


class TestJobAndTask:
    def test_job_builds_one_task_per_block(self):
        job = Job(job_id=0, submit_time=0.0, block_ids=[5, 6, 7],
                  task_duration=10.0)
        assert job.num_tasks == 3
        assert [t.block_id for t in job.tasks] == [5, 6, 7]
        assert len(job.pending_tasks()) == 3
        assert not job.is_complete()

    def test_job_validation(self):
        with pytest.raises(SchedulerError):
            Job(job_id=0, submit_time=0.0, block_ids=[], task_duration=1.0)
        with pytest.raises(SchedulerError):
            Job(job_id=0, submit_time=0.0, block_ids=[1], task_duration=0.0)

    def test_task_lifecycle(self):
        task = MapTask(task_id=0, job_id=0, block_id=1)
        task.start(3, TaskLocality.NODE_LOCAL, now=5.0)
        assert task.state is TaskState.RUNNING
        task.finish(now=15.0)
        assert task.state is TaskState.DONE
        assert task.finish_time == 15.0
        with pytest.raises(SchedulerError):
            task.start(3, TaskLocality.NODE_LOCAL, now=20.0)

    def test_task_reset(self):
        task = MapTask(task_id=0, job_id=0, block_id=1)
        task.start(3, TaskLocality.REMOTE, now=1.0)
        task.reset()
        assert task.state is TaskState.PENDING
        assert task.machine is None
        with pytest.raises(SchedulerError):
            task.reset()

    def test_completion_time_requires_finish(self):
        job = Job(job_id=0, submit_time=2.0, block_ids=[1], task_duration=1.0)
        with pytest.raises(SchedulerError):
            _ = job.completion_time
        job.finish_time = 10.0
        assert job.completion_time == 8.0

    def test_locality_remote_classification(self):
        assert not TaskLocality.NODE_LOCAL.is_remote
        assert TaskLocality.RACK_LOCAL.is_remote
        assert TaskLocality.REMOTE.is_remote


class TestRuntimeModel:
    def test_factors(self):
        model = TaskRuntimeModel(jitter=0.0)
        assert model.duration(10.0, TaskLocality.NODE_LOCAL) == 10.0
        assert model.duration(10.0, TaskLocality.REMOTE) == 20.0
        assert model.duration(10.0, TaskLocality.RACK_LOCAL) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(SchedulerError):
            TaskRuntimeModel(rack_local_factor=0.5)
        with pytest.raises(SchedulerError):
            TaskRuntimeModel(rack_local_factor=2.0, remote_factor=1.5)
        with pytest.raises(SchedulerError):
            TaskRuntimeModel(jitter=1.0)
        model = TaskRuntimeModel(jitter=0.0)
        with pytest.raises(SchedulerError):
            model.duration(0.0, TaskLocality.REMOTE)


class TestDelayPolicies:
    def test_no_delay_never_waits(self):
        task = MapTask(task_id=0, job_id=0, block_id=1)
        assert not NoDelayPolicy().should_wait(task)

    def test_delay_policy_budget_is_per_task(self):
        policy = DelaySchedulingPolicy(max_skips=2)
        task_a = MapTask(task_id=0, job_id=0, block_id=1)
        task_b = MapTask(task_id=1, job_id=0, block_id=2)
        assert policy.should_wait(task_a)
        assert policy.should_wait(task_a)
        assert not policy.should_wait(task_a)
        # Task B has its own untouched budget.
        assert policy.should_wait(task_b)

    def test_validation(self):
        with pytest.raises(SchedulerError):
            DelaySchedulingPolicy(max_skips=0)


class TestSchedulerIntegration:
    def test_single_job_completes(self):
        sim, nn, scheduler = build_cluster()
        meta = nn.create_file("/a", num_blocks=4)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=10.0)
        scheduler.submit_job(job)
        sim.run()
        assert job.is_complete()
        assert scheduler.jobs_completed == 1
        assert scheduler.pending_jobs() == 0
        assert job.completion_time >= 10.0
        assert scheduler.metrics.distribution("job_completion").mean() > 0

    def test_local_tasks_finish_faster_than_remote(self):
        sim, nn, scheduler = build_cluster(slots=1)
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        holders = nn.blockmap.locations(block)
        job = Job(job_id=0, submit_time=0.0, block_ids=[block],
                  task_duration=10.0)
        scheduler.submit_job(job)
        sim.run()
        task = job.tasks[0]
        # With free slots everywhere, the dispatcher finds a local match.
        assert task.machine in holders
        assert task.locality is TaskLocality.NODE_LOCAL
        assert task.finish_time - task.start_time == pytest.approx(10.0)

    def test_remote_task_pays_2x(self):
        sim, nn, scheduler = build_cluster(num_racks=2, per_rack=2, slots=1)
        meta = nn.create_file("/a", num_blocks=1, replication=1, rack_spread=1)
        block = meta.block_ids[0]
        holder = next(iter(nn.blockmap.locations(block)))
        # Occupy the holder's only slot with a long-running filler job on
        # a different block so the real task must go remote.
        filler_meta = nn.create_file("/filler", num_blocks=1)
        filler = Job(job_id=1, submit_time=0.0,
                     block_ids=list(filler_meta.block_ids),
                     task_duration=1000.0)
        scheduler.machines[holder].reserve_slot()  # pin the local slot
        job = Job(job_id=0, submit_time=0.0, block_ids=[block],
                  task_duration=10.0)
        scheduler.submit_job(job)
        sim.run()
        task = job.tasks[0]
        assert task.machine != holder
        assert task.locality.is_remote
        duration = task.finish_time - task.start_time
        assert duration == pytest.approx(20.0) or duration == pytest.approx(16.0)
        assert filler.job_id == 1  # silence unused warning

    def test_slots_limit_parallelism(self):
        sim, nn, scheduler = build_cluster(num_racks=1, per_rack=1, slots=2)
        meta = nn.create_file("/a", num_blocks=6, replication=1, rack_spread=1)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=10.0)
        scheduler.submit_job(job)
        sim.run()
        # 6 tasks, 2 slots, 10s each -> 30s makespan.
        assert sim.now == pytest.approx(30.0)

    def test_delay_scheduling_improves_locality(self):
        def run(policy):
            sim, nn, scheduler = build_cluster(
                num_racks=2, per_rack=4, slots=1, seed=3
            )
            scheduler.delay_policy = policy
            metas = [
                nn.create_file(f"/f{i}", num_blocks=2) for i in range(6)
            ]
            for i, meta in enumerate(metas):
                job = Job(job_id=i, submit_time=0.0,
                          block_ids=list(meta.block_ids), task_duration=30.0)
                scheduler.submit_job(job)
            sim.run()
            return scheduler.remote_fraction()

        eager = run(NoDelayPolicy())
        patient = run(DelaySchedulingPolicy(max_skips=8))
        assert patient <= eager

    def test_capacity_queues_share_cluster(self):
        sim, nn, scheduler = build_cluster()
        scheduler = MapReduceScheduler(
            sim, nn, slots_per_machine=1,
            runtime=TaskRuntimeModel(jitter=0.0),
            queues=[QueueConfig("a", 0.5), QueueConfig("b", 0.5)],
        )
        meta = nn.create_file("/a", num_blocks=3)
        job_a = Job(job_id=0, submit_time=0.0,
                    block_ids=list(meta.block_ids), task_duration=5.0)
        job_b = Job(job_id=1, submit_time=0.0,
                    block_ids=list(meta.block_ids), task_duration=5.0)
        scheduler.submit_job(job_a, queue="a")
        scheduler.submit_job(job_b, queue="b")
        sim.run()
        assert job_a.is_complete() and job_b.is_complete()

    def test_submit_validation(self):
        sim, nn, scheduler = build_cluster()
        meta = nn.create_file("/a", num_blocks=1)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=1.0)
        with pytest.raises(SchedulerError):
            scheduler.submit_job(job, queue="nope")
        scheduler.submit_job(job)
        with pytest.raises(SchedulerError):
            scheduler.submit_job(job)

    def test_machine_failure_requeues_tasks(self):
        sim, nn, scheduler = build_cluster(num_racks=2, per_rack=2, slots=1)
        meta = nn.create_file("/a", num_blocks=4)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=50.0)
        scheduler.submit_job(job)
        sim.run(until=10.0)
        running = [t for t in job.tasks if t.state is TaskState.RUNNING]
        assert running
        victim = running[0].machine
        scheduler.fail_machine(victim)
        nn.fail_node(victim)
        sim.run()
        assert job.is_complete()
        assert all(t.machine != victim or t.finish_time is not None
                   for t in job.tasks)

    def test_tasks_per_machine_counts(self):
        sim, nn, scheduler = build_cluster()
        meta = nn.create_file("/a", num_blocks=5)
        job = Job(job_id=0, submit_time=0.0, block_ids=list(meta.block_ids),
                  task_duration=5.0)
        scheduler.submit_job(job)
        sim.run()
        assert sum(scheduler.tasks_per_machine()) == 5

    def test_remote_fraction_zero_without_tasks(self):
        _, _, scheduler = build_cluster()
        assert scheduler.remote_fraction() == 0.0
