"""Every example script must run clean — examples are executable docs."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print their findings"


def test_expected_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "hotspot_mitigation.py",
            "failure_recovery.py", "epsilon_tuning.py",
            "dfs_admin.py", "custom_policy.py"} <= names
