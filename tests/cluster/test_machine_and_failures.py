"""Unit tests for machine runtime state and failure plans."""

import random

import pytest

from repro.cluster.failures import (
    FailureKind,
    generate_failure_plan,
)
from repro.cluster.machine import MachineState
from repro.cluster.topology import ClusterTopology
from repro.errors import InvalidProblemError, SchedulerError


class TestMachineState:
    def test_slot_accounting(self):
        machine = MachineState(machine_id=0, task_slots=2)
        assert machine.free_slots == 2
        machine.reserve_slot()
        machine.reserve_slot()
        assert machine.free_slots == 0
        assert machine.tasks_executed == 2
        with pytest.raises(SchedulerError):
            machine.reserve_slot()
        machine.release_slot()
        assert machine.free_slots == 1

    def test_release_without_reserve_raises(self):
        machine = MachineState(machine_id=0, task_slots=1)
        with pytest.raises(SchedulerError):
            machine.release_slot()

    def test_failure_clears_slots(self):
        machine = MachineState(machine_id=0, task_slots=4)
        machine.reserve_slot()
        machine.fail()
        assert not machine.alive
        assert machine.free_slots == 0
        assert machine.failures == 1
        with pytest.raises(SchedulerError):
            machine.reserve_slot()
        machine.recover()
        assert machine.alive
        assert machine.free_slots == 4


class TestFailurePlan:
    def topo(self):
        return ClusterTopology.uniform(3, 4, capacity=10)

    def test_deterministic_for_seed(self):
        plan_a = generate_failure_plan(
            self.topo(), horizon=50_000.0, rng=random.Random(5),
            machine_mtbf=20_000.0,
        )
        plan_b = generate_failure_plan(
            self.topo(), horizon=50_000.0, rng=random.Random(5),
            machine_mtbf=20_000.0,
        )
        assert plan_a == plan_b

    def test_events_sorted_and_paired(self):
        plan = generate_failure_plan(
            self.topo(), horizon=100_000.0, rng=random.Random(1),
            machine_mtbf=30_000.0, rack_mtbf=80_000.0, repair_time=600.0,
        )
        times = [e.time for e in plan]
        assert times == sorted(times)
        down = set()
        for event in plan:
            key = (event.kind, event.target)
            if event.is_recovery:
                assert key in down
                down.discard(key)
            else:
                # No double-failure while a target is already down.
                assert key not in down
                down.add(key)

    def test_recovery_follows_repair_time(self):
        plan = generate_failure_plan(
            self.topo(), horizon=1_000_000.0, rng=random.Random(2),
            machine_mtbf=100_000.0, repair_time=500.0,
        )
        failures = {}
        for event in plan:
            key = (event.kind, event.target)
            if not event.is_recovery:
                failures[key] = event.time
            else:
                assert event.time == pytest.approx(failures[key] + 500.0)

    def test_counts(self):
        plan = generate_failure_plan(
            self.topo(), horizon=500_000.0, rng=random.Random(3),
            machine_mtbf=50_000.0, rack_mtbf=200_000.0,
        )
        assert plan.machine_outages() > 0
        assert plan.rack_outages() > 0
        assert len(plan) == sum(1 for _ in plan)

    def test_no_failures_without_mtbf(self):
        plan = generate_failure_plan(
            self.topo(), horizon=1_000.0, rng=random.Random(0)
        )
        assert len(plan) == 0

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            generate_failure_plan(self.topo(), horizon=0.0, rng=random.Random(0))
        with pytest.raises(InvalidProblemError):
            generate_failure_plan(
                self.topo(), horizon=10.0, rng=random.Random(0),
                machine_mtbf=-1.0,
            )
        with pytest.raises(InvalidProblemError):
            generate_failure_plan(
                self.topo(), horizon=10.0, rng=random.Random(0),
                repair_time=0.0,
            )

    def test_zero_mtbf_rejected(self):
        with pytest.raises(InvalidProblemError):
            generate_failure_plan(
                self.topo(), horizon=10.0, rng=random.Random(0),
                machine_mtbf=0.0,
            )
        with pytest.raises(InvalidProblemError):
            generate_failure_plan(
                self.topo(), horizon=10.0, rng=random.Random(0),
                rack_mtbf=0.0,
            )

    def test_same_seed_replay_identical_with_both_classes(self):
        def make():
            return generate_failure_plan(
                self.topo(), horizon=200_000.0, rng=random.Random(8),
                machine_mtbf=40_000.0, rack_mtbf=90_000.0,
                repair_time=700.0,
            )

        plan_a, plan_b = make(), make()
        assert plan_a == plan_b
        assert list(plan_a) == list(plan_b)

    def test_recovery_never_precedes_its_failure(self):
        plan = generate_failure_plan(
            self.topo(), horizon=500_000.0, rng=random.Random(9),
            machine_mtbf=30_000.0, rack_mtbf=80_000.0,
        )
        last = {}
        for event in plan:
            key = (event.kind, event.target)
            previous = last.get(key)
            if event.is_recovery:
                assert previous is not None and not previous.is_recovery
                assert event.time > previous.time
            elif previous is not None:
                # A target only fails again after it recovered.
                assert previous.is_recovery
                assert event.time >= previous.time
            last[key] = event

    def test_overlapping_machine_and_rack_outages_are_independent(self):
        # A machine failing while its (or any) rack is down is a valid
        # schedule: the merge-while-down rule applies per (kind, target)
        # stream, so cross-kind overlaps survive and each outage still
        # gets its own recovery.
        repair = 5_000.0
        horizon = 2_000_000.0
        plan = generate_failure_plan(
            self.topo(), horizon=horizon, rng=random.Random(6),
            machine_mtbf=60_000.0, rack_mtbf=120_000.0, repair_time=repair,
        )
        rack_windows = []
        window_start = {}
        for event in plan:
            if event.kind is not FailureKind.RACK:
                continue
            if event.is_recovery:
                rack_windows.append(
                    (window_start.pop(event.target), event.time)
                )
            else:
                window_start[event.target] = event.time
        overlapping = [
            event for event in plan
            if event.kind is FailureKind.MACHINE and not event.is_recovery
            and any(lo <= event.time < hi for lo, hi in rack_windows)
        ]
        assert overlapping, "seed produced no overlap; pick another"
        for failure in overlapping:
            healed = any(
                e.kind is FailureKind.MACHINE
                and e.target == failure.target
                and e.is_recovery
                and e.time == pytest.approx(failure.time + repair)
                for e in plan
            )
            # Recoveries are dropped only when clamped by the horizon.
            assert healed or failure.time + repair >= horizon

    def test_describe(self):
        plan = generate_failure_plan(
            self.topo(), horizon=200_000.0, rng=random.Random(4),
            machine_mtbf=50_000.0,
        )
        if plan.events:
            text = plan.events[0].describe()
            assert "machine" in text
