"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro import obs
from repro.cli import main
from repro.workload.trace import WorkloadTrace


def _drop_repro_handlers():
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)


@pytest.fixture
def clean_observability():
    """Fresh log handler for the test; restore global obs state after.

    The CLI's ``configure()`` binds its handler to the ``sys.stderr``
    current at creation time, so a handler left over from an earlier
    test would write past this test's capture.
    """
    _drop_repro_handlers()
    yield
    _drop_repro_handlers()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    obs.disable()
    logging.getLogger("repro").setLevel(logging.WARNING)


class TestTraceCommand:
    def test_generate_yahoo_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main([
            "trace", "yahoo", "--out", str(out),
            "--files", "10", "--jobs-per-hour", "30", "--hours", "1",
        ])
        assert code == 0
        trace = WorkloadTrace.load(out)
        assert trace.num_files == 10
        assert "wrote" in capsys.readouterr().out

    def test_generate_swim_trace_scaled(self, tmp_path):
        out = tmp_path / "swim.jsonl"
        code = main([
            "trace", "swim", "--out", str(out),
            "--files", "12", "--jobs-per-hour", "30", "--hours", "1",
            "--scale-to", "10",
        ])
        assert code == 0
        trace = WorkloadTrace.load(out)
        assert trace.num_files == 12
        # Scaling to 10 of 600 nodes makes every file tiny.
        assert all(f.num_blocks <= 8 for f in trace.files)

    def test_deterministic_for_seed(self, tmp_path):
        out_a = tmp_path / "a.jsonl"
        out_b = tmp_path / "b.jsonl"
        for out in (out_a, out_b):
            main(["trace", "yahoo", "--out", str(out), "--files", "5",
                  "--hours", "1", "--seed", "9"])
        assert out_a.read_text() == out_b.read_text()


class TestFiguresCommand:
    def test_quick_single_figure(self, tmp_path, capsys):
        code = main([
            "figures", "--quick", "--figures", "3",
            "--out", str(tmp_path), "--epsilons", "0.1",
        ])
        assert code == 0
        text = (tmp_path / "fig3.txt").read_text()
        assert "Figure 3(a,c)" in text
        assert "HDFS" in text
        assert "fig3.txt" in capsys.readouterr().out

    def test_quick_fig6(self, tmp_path):
        code = main([
            "figures", "--quick", "--figures", "6", "--out", str(tmp_path),
        ])
        assert code == 0
        assert "Figure 6(a)" in (tmp_path / "fig6.txt").read_text()


class TestAblationCommand:
    def test_writes_report(self, tmp_path, capsys):
        code = main([
            "ablation", "--out", str(tmp_path), "--blocks", "60",
        ])
        assert code == 0
        text = (tmp_path / "ablations.txt").read_text()
        assert "E11" in text and "E12" in text
        assert "E10" in capsys.readouterr().out


class TestScaleCommand:
    def test_tiny_scale_study(self, tmp_path, capsys):
        code = main([
            "scale", "--machines-per-rack", "2", "--hours", "0.5",
            "--out", str(tmp_path),
        ])
        assert code == 0
        text = (tmp_path / "scale_study.txt").read_text()
        assert "Scale study" in text
        assert "machines" in text
        assert "conjecture" in capsys.readouterr().out


class TestChaosCommand:
    def test_short_storm_writes_report_and_metrics(
        self, tmp_path, capsys, clean_observability
    ):
        code = main([
            "chaos", "--out", str(tmp_path), "--hours", "0.25",
            "--seed", "3", "--throttle", "4",
            "--profiles", "crash", "flaky",
            "--metrics-out", str(tmp_path / "chaos.metrics.json"),
        ])
        assert code == 0
        text = (tmp_path / "chaos.txt").read_text()
        assert "blocks permanently lost   0" in text
        assert "read availability" in text
        assert "chaos.txt" in capsys.readouterr().out
        doc = json.loads((tmp_path / "chaos.metrics.json").read_text())
        assert "repro_faults_injected_total" in doc["metrics"]

    def test_zero_throttle_means_unlimited(self, tmp_path):
        code = main([
            "chaos", "--out", str(tmp_path), "--hours", "0.1",
            "--throttle", "0", "--profiles", "crash",
        ])
        assert code == 0
        assert "throttle=None" in (tmp_path / "chaos.txt").read_text()


class TestMetricsCommand:
    def test_without_demo_prints_registered_metrics(
        self, capsys, clean_observability
    ):
        code = main(["metrics"])
        assert code == 0
        out = capsys.readouterr().out
        # Module-level registrations are visible even with no samples.
        assert "# TYPE repro_dfs_reads_total counter" in out
        assert "# TYPE repro_aurora_period_seconds histogram" in out

    def test_demo_populates_every_layer(
        self, tmp_path, capsys, clean_observability
    ):
        out = tmp_path / "snap.json"
        code = main(["metrics", "--demo", "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert 'repro_dfs_reads_total{locality="node_local"}' in text
        doc = json.loads(out.read_text())
        populated = set()
        for name, data in doc["metrics"].items():
            for value in data["series"].values():
                nonzero = (
                    value["count"] if isinstance(value, dict) else value
                )
                if nonzero:
                    populated.add(name.split("_")[1])
        assert {"core", "aurora", "dfs", "monitor"} <= populated
        assert any(
            span["name"] == "aurora.period" for span in doc["spans"]
        )


class TestVerbosityFlags:
    def test_verbose_flag_emits_run_logs(
        self, tmp_path, capsys, clean_observability
    ):
        code = main([
            "-v", "figures", "--quick", "--figures", "6",
            "--out", str(tmp_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "level=INFO" in captured.err
        assert "msg=" in captured.err

    def test_quiet_by_default(self, tmp_path, capsys, clean_observability):
        code = main([
            "figures", "--quick", "--figures", "6", "--out", str(tmp_path),
        ])
        assert code == 0
        assert "level=INFO" not in capsys.readouterr().err

    def test_figures_metrics_out_writes_per_figure_snapshot(
        self, tmp_path, clean_observability
    ):
        code = main([
            "figures", "--quick", "--figures", "6",
            "--out", str(tmp_path / "figs"),
            "--metrics-out", str(tmp_path / "metrics"),
        ])
        assert code == 0
        doc = json.loads(
            (tmp_path / "metrics" / "fig6.metrics.json").read_text()
        )
        assert "repro_dfs_reads_total" in doc["metrics"]


class TestTelemetryPipeline:
    def run_quick_chaos(self, tmp_path, seed=0):
        code = main([
            "chaos", "--quick", "--seed", str(seed),
            "--out", str(tmp_path / "out"),
            "--telemetry-out", str(tmp_path / "tel"),
        ])
        assert code == 0
        return tmp_path / "tel"

    def test_chaos_quick_writes_telemetry_directory(
        self, tmp_path, capsys, clean_observability
    ):
        tel = self.run_quick_chaos(tmp_path)
        for name in ("meta.json", "timeseries.json", "slo.json",
                     "spans.json", "snapshot.json"):
            assert (tel / name).exists(), name
        out = capsys.readouterr().out
        assert "SLOs:" in out
        assert "read-availability" in out

    def test_report_renders_dashboard(
        self, tmp_path, capsys, clean_observability
    ):
        tel = self.run_quick_chaos(tmp_path)
        code = main(["report", str(tel), "--out", str(tmp_path / "rpt")])
        assert code == 0
        html = (tmp_path / "rpt" / "report.html").read_text()
        assert html.count("<svg") >= 3
        assert 'id="slo"' in html
        assert "critical path:" in html
        assert "<script" not in html
        md = (tmp_path / "rpt" / "report.md").read_text()
        assert "## SLO burn" in md
        assert "read-availability" in md
        assert "critical path:" in capsys.readouterr().out

    def test_report_defaults_into_telemetry_directory(
        self, tmp_path, capsys, clean_observability
    ):
        tel = self.run_quick_chaos(tmp_path)
        assert main(["report", str(tel)]) == 0
        assert (tel / "report.html").exists()

    def test_traces_prints_slowest_with_critical_path(
        self, tmp_path, capsys, clean_observability
    ):
        tel = self.run_quick_chaos(tmp_path)
        code = main([
            "traces", str(tel), "--top", "2",
            "--json", str(tmp_path / "traces.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("critical path:") == 2
        assert "2 trace(s) shown of" in out
        doc = json.loads((tmp_path / "traces.json").read_text())
        assert len(doc) == 2
        assert doc[0]["duration_seconds"] >= doc[1]["duration_seconds"]

    def test_traces_unknown_id_fails(
        self, tmp_path, capsys, clean_observability
    ):
        tel = self.run_quick_chaos(tmp_path)
        assert main(["traces", str(tel), "--trace-id", "999999"]) == 1

    def test_report_rejects_non_telemetry_directory(self, tmp_path):
        from repro.errors import MetricsError

        with pytest.raises(MetricsError):
            main(["report", str(tmp_path)])

    def test_metrics_from_snapshot_file(
        self, tmp_path, capsys, clean_observability
    ):
        tel = self.run_quick_chaos(tmp_path)
        capsys.readouterr()
        code = main(["metrics", "--from", str(tel / "snapshot.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_dfs_reads_total counter" in out
        assert "span(s)" in out

    def test_overload_pair_writes_both_legs(
        self, tmp_path, clean_observability
    ):
        code = main([
            "overload", "--minutes", "1", "--seed", "0",
            "--out", str(tmp_path / "out"),
            "--telemetry-out", str(tmp_path / "tel"),
        ])
        assert code == 0
        for leg in ("protected", "unprotected"):
            assert (tmp_path / "tel" / leg / "slo.json").exists(), leg
        meta = json.loads(
            (tmp_path / "tel" / "unprotected" / "meta.json").read_text()
        )
        assert meta["label"] == "overload-unprotected"
        text = (tmp_path / "out" / "overload.txt").read_text()
        assert "SLO violation minutes" in text

    def test_figures_telemetry_out(
        self, tmp_path, clean_observability
    ):
        code = main([
            "figures", "--quick", "--figures", "3",
            "--out", str(tmp_path / "figs"),
            "--telemetry-out", str(tmp_path / "tel"),
        ])
        assert code == 0
        meta = json.loads((tmp_path / "tel" / "meta.json").read_text())
        assert meta["label"] == "figures-reference"
        assert meta["samples_taken"] > 0


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_missing_required_out_exits(self):
        with pytest.raises(SystemExit):
            main(["trace", "yahoo"])
