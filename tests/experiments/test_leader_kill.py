"""Leader-kill chaos scenario: the HA acceptance bar.

A fixed seed, the leader killed mid-Aurora-period, a follower taking
over — the run must be repeatable bit-for-bit and lose nothing that
was acknowledged.
"""

import pytest

from repro.experiments.chaos import (
    LeaderKillConfig,
    default_ha_slos,
    render_leader_kill,
    run_leader_kill,
)
from repro.errors import InvalidProblemError

pytestmark = pytest.mark.ha


def small_config(**overrides):
    """A fast run that still crosses one checkpoint and the kill."""
    defaults = dict(
        horizon=600.0, kill_at=230.0, drain=200.0, revive_after=200.0,
        num_files=6, checkpoint_every=10, aurora_period=120.0,
        read_interval=10.0, write_interval=15.0,
    )
    defaults.update(overrides)
    return LeaderKillConfig(**defaults)


class TestLeaderKillScenario:
    def test_failover_report_and_zero_metadata_loss(self):
        result = run_leader_kill(small_config())
        assert result.failovers == 1
        assert result.elections >= 1
        assert result.time_to_new_leader is not None
        assert result.time_to_writable is not None
        assert result.time_to_writable >= result.time_to_new_leader
        assert result.metadata_lost == 0
        assert result.fsck is not None and result.fsck.healthy
        # The kill lands mid-period with the next boundary inside the
        # outage: the optimizer must abort that period cleanly and
        # resume afterwards.
        assert result.aurora_periods_aborted >= 1
        assert result.aurora_periods_completed >= 1
        # Bounded recovery: the follower replayed only the journal tail
        # past its last shipped checkpoint.
        assert 0 < result.entries_replayed <= result.config.checkpoint_every + 5
        assert result.journal_retained_entries <= result.config.checkpoint_every + 5

    def test_same_seed_runs_are_identical(self):
        config = small_config()
        first = run_leader_kill(config)
        second = run_leader_kill(config)
        assert first.summary() == second.summary()
        assert first.timeline == second.timeline
        assert render_leader_kill(first) == render_leader_kill(second)

    def test_different_seed_changes_the_run(self):
        first = run_leader_kill(small_config())
        second = run_leader_kill(small_config(seed=3))
        assert first.summary() != second.summary()

    def test_render_mentions_the_headline_numbers(self):
        result = run_leader_kill(small_config())
        text = render_leader_kill(result)
        assert "time to new leader" in text
        assert "time to writable" in text
        assert "metadata lost" in text
        assert "timeline:" in text

    def test_default_slos_cover_availability_and_failover(self):
        names = [o.name for o in default_ha_slos(small_config())]
        assert names == ["metadata-availability", "failover-time-to-writable"]

    def test_config_rejects_capacity_exhausting_stream(self):
        with pytest.raises(InvalidProblemError):
            LeaderKillConfig(capacity_blocks=10)

    def test_config_rejects_kill_outside_horizon(self):
        with pytest.raises(InvalidProblemError):
            LeaderKillConfig(kill_at=5000.0, horizon=600.0)
