"""Tests for the per-figure harnesses and ablations (small scale)."""

import pytest

from repro.experiments.ablation import (
    make_instance,
    render_ablations,
    run_epsilon_ablation,
    run_factor_ablation,
    run_initial_placement_ablation,
)
from repro.experiments.fig3 import Fig3Result, run_fig3, render_fig3
from repro.experiments.fig4 import run_fig4, render_fig4
from repro.experiments.fig5 import default_budget, run_fig5, render_fig5
from repro.experiments.fig6 import (
    run_fig6,
    render_fig6,
    speedup_over,
    testbed_cluster as fig6_testbed_cluster,
)
from repro.experiments.harness import ClusterConfig, RunResult, SystemKind
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


def small_trace(seed=0):
    return generate_yahoo_trace(YahooTraceConfig(
        num_files=25, jobs_per_hour=150.0, duration_hours=1.0,
        mean_task_duration=60.0, seed=seed,
    ))


def small_cluster():
    return ClusterConfig(num_racks=3, machines_per_rack=3,
                         capacity_blocks=150, slots_per_machine=2)


class TestFig3:
    def test_runs_and_renders(self):
        result = run_fig3(
            trace=small_trace(), cluster=small_cluster(),
            epsilons=(0.1, 0.8),
        )
        assert result.baseline.system is SystemKind.HDFS
        assert set(result.aurora) == {0.1, 0.8}
        text = render_fig3(result)
        assert "Figure 3(a,c)" in text
        assert "HDFS" in text
        assert "eps=0.8" in text

    def test_best_reduction_nonnegative(self):
        result = run_fig3(
            trace=small_trace(seed=2), cluster=small_cluster(),
            epsilons=(0.1,),
        )
        # Aurora should never *increase* remote tasks materially.
        assert result.best_reduction() >= -0.05

    def test_best_reduction_zero_baseline(self):
        result = Fig3Result(baseline=RunResult(
            system=SystemKind.HDFS, epsilon=0.0, horizon_hours=1.0,
            num_machines=1,
        ))
        result.aurora[0.1] = result.baseline
        assert result.best_reduction() == 0.0


class TestFig4:
    def test_rack_spread_enforced(self):
        result = run_fig4(
            trace=small_trace(), cluster=small_cluster(), epsilons=(0.1,),
        )
        text = render_fig4(result)
        assert "Figure 4" in text
        # Both runs complete the whole job stream.
        assert result.baseline.jobs_completed == result.baseline.jobs_submitted
        run = result.aurora[0.1]
        assert run.jobs_completed == run.jobs_submitted


class TestFig5:
    def test_aurora_vs_scarlett(self):
        trace = small_trace(seed=1)
        result = run_fig5(
            trace=trace, cluster=small_cluster(), epsilons=(0.1,),
            budget_extra=trace.total_blocks,
        )
        assert result.scarlett.system is SystemKind.SCARLETT
        text = render_fig5(result)
        assert "Scarlett" in text
        assert "26.9%" in text  # the paper's reference number is cited

    def test_default_budget_positive(self):
        assert default_budget(small_trace()) > 0


class TestFig6:
    def test_testbed_shape(self):
        result = run_fig6(seed=0)
        runs = result.runs()
        assert set(runs) == {"HDFS", "Scarlett", "Aurora"}
        # Every system finishes the same job stream.
        done = {run.jobs_completed for run in runs.values()}
        assert len(done) == 1
        # The paper's ordering: Aurora's locality is at least Scarlett's,
        # and both beat stock HDFS.
        assert result.aurora.remote_fraction <= result.scarlett.remote_fraction + 0.02
        assert result.scarlett.remote_fraction <= result.hdfs.remote_fraction

    def test_speedup_over_matching_jobs_only(self):
        base = RunResult(system=SystemKind.SCARLETT, epsilon=0.0,
                         horizon_hours=1.0, num_machines=1,
                         job_completions={1: 10.0, 2: 20.0})
        other = RunResult(system=SystemKind.AURORA, epsilon=0.8,
                          horizon_hours=1.0, num_machines=1,
                          job_completions={1: 5.0, 3: 7.0})
        ratios = speedup_over(base, other)
        assert ratios == [pytest.approx(0.5)]

    def test_render(self):
        result = run_fig6(seed=0)
        text = render_fig6(result)
        assert "Figure 6(a)" in text
        assert "Figure 6(b)" in text
        assert "Figure 6(c)" in text

    def test_testbed_cluster_is_10_nodes(self):
        assert fig6_testbed_cluster().num_machines == 10


class TestAblations:
    def test_initial_placement_greedy_starts_lower(self):
        result = run_initial_placement_ablation(
            make_instance(num_blocks=120, seed=3)
        )
        assert result.greedy_initial_cost <= result.random_initial_cost
        # Both starts converge to comparable final quality.
        assert result.converged_cost_greedy <= result.converged_cost_random * 1.05

    def test_factor_ablation_aurora_optimal(self):
        for seed in range(3):
            result = run_factor_ablation(
                make_instance(num_blocks=100, seed=seed)
            )
            assert result.aurora_wins()

    def test_epsilon_ablation_rows(self):
        result = run_epsilon_ablation(
            make_instance(num_blocks=80, seed=1), epsilons=(0.1, 0.8),
        )
        assert len(result.rows) == 4
        by_key = {
            (row["epsilon"], row["semantics"]): row for row in result.rows
        }
        # Literal cost semantics always moves at most as much as the
        # gap semantics (it is far stricter).
        for epsilon in (0.1, 0.8):
            assert (
                by_key[(epsilon, "cost")]["operations"]
                <= by_key[(epsilon, "gap")]["operations"]
            )

    def test_render_ablations(self):
        instance = make_instance(num_blocks=60, seed=2)
        text = render_ablations(
            run_initial_placement_ablation(instance),
            run_factor_ablation(instance),
            run_epsilon_ablation(instance, epsilons=(0.1,)),
        )
        assert "E11" in text and "E12" in text and "E10" in text
