"""Tests for the scale study and CSV export."""

import csv

import pytest

from repro.experiments.export import export_fig3, export_fig5, export_fig6
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.harness import ClusterConfig
from repro.experiments.scale import (
    ScalePoint,
    render_scale_study,
    run_scale_study,
)
from repro.experiments.harness import RunResult, SystemKind
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


def small_trace(seed=0):
    return generate_yahoo_trace(YahooTraceConfig(
        num_files=20, jobs_per_hour=120.0, duration_hours=1.0,
        mean_task_duration=60.0, seed=seed,
    ))


def small_cluster():
    return ClusterConfig(num_racks=3, machines_per_rack=3,
                         capacity_blocks=150, slots_per_machine=2)


class TestScaleStudy:
    def test_small_sweep_runs(self):
        points = run_scale_study(
            machines_per_rack_options=(2, 3),
            num_racks=3,
            jobs_per_machine_hour=6.0,
            duration_hours=1.0,
        )
        assert [p.num_machines for p in points] == [6, 9]
        for point in points:
            assert point.hdfs.jobs_completed == point.hdfs.jobs_submitted
            assert point.aurora.jobs_completed == point.aurora.jobs_submitted

    def test_render_mentions_conjecture(self):
        fake = [
            ScalePoint(
                num_machines=10,
                hdfs=RunResult(system=SystemKind.HDFS, epsilon=0.0,
                               horizon_hours=1.0, num_machines=10,
                               local_tasks=80, remote_tasks=20),
                aurora=RunResult(system=SystemKind.AURORA, epsilon=0.1,
                                 horizon_hours=1.0, num_machines=10,
                                 local_tasks=95, remote_tasks=5),
            ),
            ScalePoint(
                num_machines=20,
                hdfs=RunResult(system=SystemKind.HDFS, epsilon=0.0,
                               horizon_hours=1.0, num_machines=20,
                               local_tasks=60, remote_tasks=40),
                aurora=RunResult(system=SystemKind.AURORA, epsilon=0.1,
                                 horizon_hours=1.0, num_machines=20,
                                 local_tasks=90, remote_tasks=10),
            ),
        ]
        text = render_scale_study(fake)
        assert "CONFIRMED" in text
        assert fake[0].gain == pytest.approx(0.15)
        assert fake[1].gain == pytest.approx(0.30)

    def test_render_flags_non_monotone(self):
        def point(machines, hdfs_remote, aurora_remote):
            total = 100
            return ScalePoint(
                num_machines=machines,
                hdfs=RunResult(system=SystemKind.HDFS, epsilon=0.0,
                               horizon_hours=1.0, num_machines=machines,
                               local_tasks=total - hdfs_remote,
                               remote_tasks=hdfs_remote),
                aurora=RunResult(system=SystemKind.AURORA, epsilon=0.1,
                                 horizon_hours=1.0, num_machines=machines,
                                 local_tasks=total - aurora_remote,
                                 remote_tasks=aurora_remote),
            )

        text = render_scale_study([
            point(10, 50, 10),  # gain 0.40
            point(20, 30, 20),  # gain 0.10 — shrank
        ])
        assert "NOT CONFIRMED" in text


class TestCsvExport:
    def test_export_fig3(self, tmp_path):
        result = run_fig3(trace=small_trace(), cluster=small_cluster(),
                          epsilons=(0.1,))
        export_fig3(result, tmp_path)
        with (tmp_path / "fig3a.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["system", "epsilon", "remote_tasks_per_hour",
                           "remote_fraction"]
        assert rows[1][0] == "hdfs"
        assert rows[2][0] == "aurora"
        assert (tmp_path / "fig3b.csv").exists()
        assert (tmp_path / "fig3c.csv").exists()

    def test_export_fig5(self, tmp_path):
        trace = small_trace(seed=1)
        result = run_fig5(trace=trace, cluster=small_cluster(),
                          epsilons=(0.1,), budget_extra=trace.total_blocks)
        export_fig5(result, tmp_path)
        for name in ("fig5a.csv", "fig5b.csv", "fig5c.csv"):
            assert (tmp_path / name).exists()
        with (tmp_path / "fig5a.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[1][0] == "scarlett"

    def test_export_fig6(self, tmp_path):
        result = run_fig6(seed=0)
        export_fig6(result, tmp_path)
        with (tmp_path / "fig6a.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 4  # header + 3 systems
        with (tmp_path / "fig6c.csv").open() as handle:
            cdf_rows = list(csv.reader(handle))
        assert cdf_rows[0] == ["movement_duration_s", "cdf"]
        assert len(cdf_rows) > 2
