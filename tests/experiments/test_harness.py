"""Tests for the experiment harness and report rendering."""

import math

import pytest

from repro.errors import InvalidProblemError
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    RunResult,
    SystemKind,
    run_experiment,
)
from repro.experiments.report import (
    cdf_series,
    format_number,
    render_cdf,
    render_table,
)
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


def tiny_trace(seed=0):
    # 1.5 simulated hours so the hourly optimizers fire at least once
    # before the job stream ends.
    return generate_yahoo_trace(YahooTraceConfig(
        num_files=20,
        jobs_per_hour=120.0,
        duration_hours=1.5,
        mean_task_duration=60.0,
        seed=seed,
    ))


def tiny_cluster():
    return ClusterConfig(
        num_racks=3, machines_per_rack=3, capacity_blocks=120,
        slots_per_machine=2,
    )


class TestRunExperiment:
    def test_hdfs_run_completes_all_jobs(self):
        trace = tiny_trace()
        result = run_experiment(trace, ExperimentConfig(
            system=SystemKind.HDFS, cluster=tiny_cluster(), epsilon=0.0,
        ))
        assert result.jobs_submitted == trace.num_jobs
        assert result.jobs_completed == trace.num_jobs
        assert result.total_tasks > 0
        assert len(result.machine_task_loads) == 9
        assert sum(result.machine_task_loads) == result.total_tasks
        assert result.moves_completed == 0  # plain HDFS never migrates

    def test_aurora_run_is_deterministic(self):
        trace = tiny_trace()
        config = ExperimentConfig(
            system=SystemKind.AURORA, cluster=tiny_cluster(), epsilon=0.1,
        )
        a = run_experiment(trace, config)
        b = run_experiment(trace, config)
        assert a.remote_tasks == b.remote_tasks
        assert a.machine_task_loads == b.machine_task_loads
        assert a.moves_completed == b.moves_completed
        assert a.job_completions == b.job_completions

    def test_aurora_never_more_remote_than_hdfs(self):
        trace = tiny_trace(seed=3)
        cluster = tiny_cluster()
        hdfs = run_experiment(trace, ExperimentConfig(
            system=SystemKind.HDFS, cluster=cluster, epsilon=0.0,
        ))
        aurora = run_experiment(trace, ExperimentConfig(
            system=SystemKind.AURORA, cluster=cluster, epsilon=0.1,
        ))
        assert aurora.remote_fraction <= hdfs.remote_fraction + 0.02

    def test_scarlett_run_replicates(self):
        trace = tiny_trace(seed=1)
        result = run_experiment(trace, ExperimentConfig(
            system=SystemKind.SCARLETT, cluster=tiny_cluster(), epsilon=0.0,
            budget_extra_blocks=trace.total_blocks,
        ))
        assert result.jobs_completed == trace.num_jobs
        assert result.replications_completed > 0

    def test_config_validation(self):
        with pytest.raises(InvalidProblemError):
            ExperimentConfig(system=SystemKind.HDFS, replication=2,
                             rack_spread=3)
        with pytest.raises(InvalidProblemError):
            ExperimentConfig(system=SystemKind.HDFS, drain_hours=-1)

    def test_derived_metrics(self):
        result = RunResult(
            system=SystemKind.AURORA, epsilon=0.1, horizon_hours=2.0,
            num_machines=10, local_tasks=60, remote_tasks=40,
            moves_completed=20, replications_completed=10,
        )
        assert result.total_tasks == 100
        assert result.remote_fraction == pytest.approx(0.4)
        assert result.remote_tasks_per_hour == pytest.approx(20.0)
        assert result.moves_per_machine_per_hour == pytest.approx(1.0)
        assert result.data_movement_per_machine_per_hour == pytest.approx(1.5)

    def test_degenerate_metrics(self):
        result = RunResult(
            system=SystemKind.HDFS, epsilon=0.0, horizon_hours=0.0,
            num_machines=0,
        )
        assert result.remote_fraction == 0.0
        assert result.remote_tasks_per_hour == 0.0
        assert result.moves_per_machine_per_hour == 0.0


class TestReport:
    def test_format_number(self):
        assert format_number(3.0) == "3"
        assert format_number(3.14159) == "3.14"
        assert format_number(float("nan")) == "-"

    def test_render_table_alignment(self):
        table = render_table(["name", "value"], [("a", 1.0), ("bb", 22.5)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "22.50" in lines[3]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equal width

    def test_cdf_series_monotone(self):
        series = cdf_series([3.0, 1.0, 2.0, 5.0, 4.0], points=5)
        values = [v for v, _ in series]
        probs = [p for _, p in series]
        assert values == sorted(values)
        assert probs[-1] == pytest.approx(1.0)
        assert cdf_series([], points=3) == []

    def test_render_cdf(self):
        text = render_cdf("label", [1.0, 2.0], points=2)
        assert text.startswith("label")
        assert "P(X<=x)" in text

    def test_cdf_handles_fewer_samples_than_points(self):
        series = cdf_series([7.0], points=10)
        assert series == [(7.0, 1.0)]
        assert not math.isnan(series[0][0])
