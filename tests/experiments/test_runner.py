"""Tests for the process-pool parallel trial runner.

The load-bearing claim: ``run_trials(cases, jobs=N)`` returns results
*identical* to the sequential loop, in input order, for any N — and a
parent registry that merged the worker snapshots holds the same totals a
sequential instrumented run would have.
"""

import pytest

from repro.errors import InvalidProblemError
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    SystemKind,
)
from repro.experiments.runner import TrialCase, run_trials
from repro.obs.registry import get_registry
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


def micro_trace(seed=0):
    return generate_yahoo_trace(YahooTraceConfig(
        num_files=15,
        jobs_per_hour=100.0,
        duration_hours=1.5,
        mean_task_duration=60.0,
        seed=seed,
    ))


def micro_cluster():
    return ClusterConfig(
        num_racks=3, machines_per_rack=3, capacity_blocks=120,
        slots_per_machine=2,
    )


def micro_cases(seeds=(0, 1)):
    cluster = micro_cluster()
    cases = []
    for seed in seeds:
        trace = micro_trace(seed)
        for kind in (SystemKind.HDFS, SystemKind.AURORA):
            cases.append(TrialCase(
                label=f"{kind.value}/seed={seed}",
                trace=trace,
                config=ExperimentConfig(
                    system=kind, cluster=cluster, epsilon=0.1, seed=seed,
                ),
            ))
    return cases


class TestRunTrials:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(InvalidProblemError):
            run_trials([], jobs=0)
        with pytest.raises(InvalidProblemError):
            run_trials([], jobs=-2)

    def test_empty_case_list(self):
        assert run_trials([], jobs=1) == []
        assert run_trials([], jobs=4) == []

    def test_parallel_equals_sequential(self):
        cases = micro_cases()
        sequential = run_trials(cases, jobs=1)
        parallel = run_trials(cases, jobs=2)
        assert len(parallel) == len(sequential) == len(cases)
        for seq, par in zip(sequential, parallel):
            assert par == seq

    def test_results_come_back_in_input_order(self):
        cases = micro_cases(seeds=(0,))
        runs = run_trials(cases, jobs=2)
        # The HDFS case never migrates; the Aurora case is listed second.
        assert runs[0].moves_completed == 0
        assert runs[0].jobs_submitted == cases[0].trace.num_jobs
        assert runs[1].jobs_submitted == cases[1].trace.num_jobs

    def test_more_workers_than_cases_is_fine(self):
        cases = micro_cases(seeds=(0,))[:2]
        assert run_trials(cases, jobs=8) == run_trials(cases, jobs=1)


class TestRunnerObservability:
    def setup_method(self):
        self.registry = get_registry()
        self.registry.enable()
        self.registry.reset()

    def teardown_method(self):
        self.registry.reset()
        self.registry.disable()

    def test_parallel_metrics_match_sequential(self):
        cases = micro_cases(seeds=(0,))
        run_trials(cases, jobs=1)
        sequential = self.registry.snapshot()
        self.registry.reset()
        run_trials(cases, jobs=2)
        parallel = self.registry.snapshot()
        # Every counter/histogram total a sequential run accumulated must
        # come back through the merged worker snapshots.  Wall-clock
        # valued series (timing histograms, *_seconds counters) keep
        # their deterministic sample counts but not their sums; gauges
        # hold the last case's value in both modes; the runner's own
        # per-mode case counter necessarily differs.
        for name, data in sequential.items():
            if name == "repro_runner_cases_total":
                continue
            if data["kind"] not in ("counter", "histogram"):
                continue
            merged = parallel.get(name)
            assert merged is not None, f"metric {name} missing after merge"
            for label, value in data["series"].items():
                got = merged["series"][label]
                if data["kind"] == "counter":
                    if "seconds" not in name:
                        assert got == pytest.approx(value), (name, label)
                else:
                    assert got["count"] == value["count"], (name, label)

    def test_case_counter_tracks_mode(self):
        cases = micro_cases(seeds=(0,))
        run_trials(cases, jobs=1)
        run_trials(cases, jobs=2)
        counter = self.registry.get("repro_runner_cases_total")
        assert counter.labels(mode="sequential").value == len(cases)
        assert counter.labels(mode="parallel").value == len(cases)
