"""Unit tests for the block map and datanode storage."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import BlockMeta, FileMeta
from repro.dfs.blockmap import BlockMap
from repro.dfs.datanode import Datanode
from repro.errors import (
    BlockNotFoundError,
    CapacityExceededError,
    DfsError,
    InvalidProblemError,
)


def topo():
    return ClusterTopology.uniform(2, 3, capacity=10)


class TestBlockMeta:
    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            BlockMeta(block_id=-1, file_id=0)
        with pytest.raises(InvalidProblemError):
            BlockMeta(block_id=0, file_id=0, size=0)
        with pytest.raises(InvalidProblemError):
            BlockMeta(block_id=0, file_id=0, replication_factor=0)
        with pytest.raises(InvalidProblemError):
            BlockMeta(block_id=0, file_id=0, replication_factor=2, rack_spread=3)

    def test_file_meta(self):
        meta = FileMeta(file_id=0, path="/a", block_ids=(1, 2, 3), block_size=10)
        assert meta.num_blocks == 3
        assert meta.total_bytes == 30
        with pytest.raises(InvalidProblemError):
            FileMeta(file_id=0, path="", block_ids=())


class TestBlockMap:
    def test_register_and_locations(self):
        bm = BlockMap(topo())
        bm.register(BlockMeta(block_id=0, file_id=0))
        assert 0 in bm
        assert bm.num_blocks == 1
        bm.add_location(0, 1)
        bm.add_location(0, 4)
        assert bm.locations(0) == frozenset({1, 4})
        assert bm.replica_count(0) == 2
        assert bm.rack_spread(0) == 2
        assert bm.blocks_on(1) == frozenset({0})
        assert bm.used_capacity(1) == 1

    def test_duplicate_registration_rejected(self):
        bm = BlockMap(topo())
        bm.register(BlockMeta(block_id=0, file_id=0))
        with pytest.raises(DfsError):
            bm.register(BlockMeta(block_id=0, file_id=1))

    def test_duplicate_location_rejected(self):
        bm = BlockMap(topo())
        bm.register(BlockMeta(block_id=0, file_id=0))
        bm.add_location(0, 1)
        with pytest.raises(DfsError):
            bm.add_location(0, 1)

    def test_remove_location(self):
        bm = BlockMap(topo())
        bm.register(BlockMeta(block_id=0, file_id=0))
        bm.add_location(0, 1)
        bm.remove_location(0, 1)
        assert bm.locations(0) == frozenset()
        with pytest.raises(DfsError):
            bm.remove_location(0, 1)

    def test_unregister_clears_reverse_index(self):
        bm = BlockMap(topo())
        bm.register(BlockMeta(block_id=0, file_id=0))
        bm.add_location(0, 2)
        bm.unregister(0)
        assert 0 not in bm
        assert bm.blocks_on(2) == frozenset()
        with pytest.raises(BlockNotFoundError):
            bm.locations(0)

    def test_under_replicated_and_availability(self):
        bm = BlockMap(topo())
        bm.register(BlockMeta(block_id=0, file_id=0, replication_factor=2,
                              rack_spread=2))
        bm.add_location(0, 0)
        bm.add_location(0, 3)
        live = {0, 3}
        assert bm.under_replicated(live) == []
        assert bm.under_spread(live) == []
        assert bm.is_available(0, live)
        # Node 3 (rack 1) dies: under-replicated and under-spread.
        live = {0}
        assert bm.under_replicated(live) == [0]
        assert bm.under_spread(live) == [0]
        assert bm.is_available(0, live)
        assert not bm.is_available(0, set())
        assert bm.live_locations(0, live) == frozenset({0})

    def test_over_replicated(self):
        bm = BlockMap(topo())
        bm.register(BlockMeta(block_id=0, file_id=0, replication_factor=1,
                              rack_spread=1))
        bm.add_location(0, 0)
        bm.add_location(0, 1)
        assert bm.over_replicated() == [0]

    def test_unknown_block_raises(self):
        bm = BlockMap(topo())
        with pytest.raises(BlockNotFoundError):
            bm.meta(5)
        with pytest.raises(BlockNotFoundError):
            bm.add_location(5, 0)


class TestDatanode:
    def test_store_and_erase(self):
        dn = Datanode(node_id=0, capacity_blocks=2)
        dn.store(1, size=100)
        assert dn.holds(1)
        assert dn.used_blocks == 1
        assert dn.free_blocks == 1
        assert dn.bytes_written == 100
        dn.erase(1)
        assert not dn.holds(1)

    def test_capacity_enforced(self):
        dn = Datanode(node_id=0, capacity_blocks=1)
        dn.store(1)
        with pytest.raises(CapacityExceededError):
            dn.store(2)
        with pytest.raises(DfsError):
            dn.store(1)  # duplicate after erase-less store

    def test_disk_utilization(self):
        dn = Datanode(node_id=0, capacity_blocks=4)
        dn.store(1)
        assert dn.disk_utilization == pytest.approx(0.25)
        empty = Datanode(node_id=1, capacity_blocks=0)
        assert empty.disk_utilization == 1.0

    def test_crash_preserves_disk(self):
        dn = Datanode(node_id=0, capacity_blocks=2)
        dn.store(1)
        dn.crash()
        assert not dn.alive
        with pytest.raises(DfsError):
            dn.store(2)
        with pytest.raises(DfsError):
            dn.read(1)
        dn.recover()
        assert dn.holds(1)

    def test_wipe_clears_disk(self):
        dn = Datanode(node_id=0, capacity_blocks=2)
        dn.store(1)
        dn.wipe()
        assert not dn.holds(1)
        assert dn.used_blocks == 0

    def test_wipe_while_dead_does_not_resurrect(self):
        # A disk swap empties the disk but must not flip liveness —
        # only recover() brings a dead node back.
        dn = Datanode(node_id=0, capacity_blocks=2)
        dn.store(1)
        dn.crash()
        dn.wipe()
        assert not dn.alive
        assert not dn.holds(1)
        dn.recover()
        assert dn.alive
        assert not dn.holds(1)

    def test_read_accounting(self):
        dn = Datanode(node_id=0, capacity_blocks=2)
        dn.store(1, size=10)
        dn.read(1, size=10)
        assert dn.bytes_read == 10
        with pytest.raises(DfsError):
            dn.read(99)

    def test_invalid_capacity(self):
        with pytest.raises(DfsError):
            Datanode(node_id=0, capacity_blocks=-1)
