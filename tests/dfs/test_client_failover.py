"""Client read failover across dead and stale replicas (namenode belief
can lag ground truth; the client discovers staleness by trying)."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import DatanodeUnavailableError
from repro.faults import RetryPolicy

BLOCK_SIZE = 8 * 1024 * 1024


def build(seed=0, racks=4, per_rack=2, capacity=60, retry_policy=None):
    topology = ClusterTopology.uniform(racks, per_rack, capacity)
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed + 1),
    )
    client = DfsClient(namenode, retry_policy=retry_policy)
    return namenode, client


class TestReadFailover:
    def test_clean_read_has_single_attempt(self):
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        result = client.read_block(meta.block_ids[0], reader=0)
        assert result.source == 0
        assert result.attempts == (0,)
        assert result.backoff == 0.0
        assert not result.failed_over
        assert result.is_local
        assert client.read_failovers == 0

    def test_failover_past_silently_crashed_first_choice(self):
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        # The node dies but no heartbeat has expired yet: the namenode
        # still lists it as a replica holder (stale belief).
        namenode.datanode(0).crash()
        assert 0 in namenode.blockmap.locations(block)

        expected = namenode.replica_preference(block, 0)[1]
        result = client.read_block(block, reader=0)
        assert result.failed_over
        assert result.attempts[0] == 0
        assert result.attempts == (0, expected)
        assert result.source == expected
        assert result.backoff == pytest.approx(0.5)  # jitter-free default
        assert client.read_failovers == 1
        assert client.read_errors == 0

    def test_failover_past_stale_location(self):
        # The node is alive but no longer has the bytes the namenode
        # believes it has.
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        namenode.datanode(0).erase(block)
        result = client.read_block(block, reader=0)
        assert result.failed_over
        assert result.source != 0

    def test_backoff_accumulates_policy_delays(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
        namenode, client = build(retry_policy=policy)
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        prefs = namenode.replica_preference(block, 0)
        for node in prefs[:2]:
            namenode.datanode(node).crash()
        result = client.read_block(block, reader=0)
        assert result.attempts == tuple(prefs[:3])
        assert result.backoff == pytest.approx(1.0 + 2.0)

    def test_exhausting_every_replica_raises(self):
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        for node in namenode.blockmap.locations(block):
            namenode.datanode(node).crash()
        with pytest.raises(DatanodeUnavailableError) as excinfo:
            client.read_block(block, reader=0)
        assert "no replica served" in str(excinfo.value)
        assert client.read_errors == 1
        assert client.read_failovers == 3

    def test_retry_policy_bounds_the_walk(self):
        # max_attempts=1: one failure exhausts the policy even though a
        # live replica exists further down the preference list.
        policy = RetryPolicy(max_attempts=1, base_delay=1.0, jitter=0.0)
        namenode, client = build(retry_policy=policy)
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        namenode.datanode(0).crash()
        with pytest.raises(DatanodeUnavailableError):
            client.read_block(block, reader=0)
        assert client.read_failovers == 1

    def test_replay_is_deterministic(self):
        trails = []
        for _ in range(2):
            namenode, client = build(seed=11)
            meta = client.write_file(
                "/a", 2, block_size=BLOCK_SIZE, writer=0
            )
            namenode.datanode(0).crash()
            trails.append([
                client.read_block(b, reader=0).attempts
                for b in meta.block_ids
            ])
        assert trails[0] == trails[1]


class TestGrayAwareRouting:
    def _remote_setup(self):
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        holders = set(namenode.blockmap.locations(block))
        holder_racks = {namenode.topology.rack_of[n] for n in holders}
        empty_racks = [
            r for r in range(namenode.topology.num_racks)
            if r not in holder_racks
        ]
        assert empty_racks, "need a rack with no replica for this seed"
        reader = namenode.topology.machines_in_rack(empty_racks[0])[0]
        return namenode, client, block, reader

    def test_degraded_replica_ranked_last_within_tier(self):
        namenode, client, block, reader = self._remote_setup()
        prefs = namenode.replica_preference(block, reader)
        namenode.datanode(prefs[0]).slowdown = 4.0
        reranked = namenode.replica_preference(block, reader)
        assert reranked[-1] == prefs[0]
        result = client.read_block(block, reader=reader)
        assert result.source == reranked[0]
        assert not namenode.datanode(result.source).degraded
        assert namenode.degraded_reads == 0

    def test_all_gray_still_serves(self):
        namenode, client, block, reader = self._remote_setup()
        for node in namenode.blockmap.locations(block):
            namenode.datanode(node).slowdown = 4.0
        result = client.read_block(block, reader=reader)
        assert namenode.datanode(result.source).degraded
        assert namenode.degraded_reads == 1
