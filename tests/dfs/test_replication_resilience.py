"""Namenode resilience: retry-on-alternate-source, the prioritized
throttled re-replication queue, migration rollback/retarget, and the
heartbeat paths that feed them."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import DfsError
from repro.faults import RetryPolicy
from repro.simulation.engine import Simulation

BLOCK_SIZE = 8 * 1024 * 1024


def build(seed=0, racks=3, per_rack=3, capacity=60, sim=None,
          throttle=None, retry_policy=None):
    topology = ClusterTopology.uniform(racks, per_rack, capacity)
    transfers = TransferService(topology, sim=sim, rng=random.Random(seed))
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(seed + 1)),
        sim=sim,
        transfer_service=transfers,
        rng=random.Random(seed + 2),
        retry_policy=retry_policy,
        replication_throttle=throttle,
    )
    return namenode, DfsClient(namenode)


class TestRetryOnAlternateSource:
    def test_failed_copy_retries_from_another_source(self):
        # Synchronous mode: callbacks run inline, so the whole retry
        # chain resolves within one call.
        namenode, client = build(
            retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0,
                                     jitter=0.0),
        )
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE)
        block = meta.block_ids[0]
        victim = sorted(namenode.blockmap.locations(block))[0]
        namenode.fail_node(victim, re_replicate=False)
        bad_source = sorted(namenode.blockmap.locations(block))[0]
        namenode.transfers.fault_hook = (
            lambda size, src, dst: 0.5 if src == bad_source else None
        )

        namenode.check_replication()
        assert namenode.transfers.transfers_failed == 1
        assert namenode.transfer_retries == 1
        assert namenode.replications_completed == 1
        live = namenode.live_nodes()
        assert len(namenode.blockmap.live_locations(block, live)) == 3
        namenode.audit()

    def test_exhausted_retries_requeue_the_block(self):
        namenode, client = build(
            retry_policy=RetryPolicy(max_attempts=2, base_delay=1.0,
                                     jitter=0.0),
        )
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE)
        block = meta.block_ids[0]
        victim = sorted(namenode.blockmap.locations(block))[0]
        namenode.fail_node(victim, re_replicate=False)
        namenode.transfers.fault_hook = lambda size, src, dst: 0.5

        namenode.check_replication()
        assert namenode.transfer_retries == 1
        assert namenode.replications_requeued == 1
        assert namenode.replications_completed == 0

        # Next check after the fault clears repairs the block.
        namenode.transfers.fault_hook = None
        namenode.check_replication()
        live = namenode.live_nodes()
        assert len(namenode.blockmap.live_locations(block, live)) == 3
        namenode.audit()


class TestReplicationQueue:
    def test_throttle_bounds_concurrent_repairs(self):
        sim = Simulation()
        namenode, client = build(sim=sim, throttle=2)
        for index in range(4):
            client.write_file(f"/f/{index}", 1, block_size=BLOCK_SIZE)
        sim.run()  # settle the write pipelines
        for node in namenode.topology.machines_in_rack(0):
            namenode.fail_node(node, re_replicate=False)
        live = namenode.live_nodes()
        deficit = sum(
            namenode.blockmap.meta(b).replication_factor
            - len(namenode.blockmap.live_locations(b, live))
            for b in namenode.blockmap.block_ids()
        )
        assert deficit > 2

        started = namenode.check_replication()
        assert started == 2  # throttle caps the burst
        sim.run()  # chains finishing drain the queue themselves
        assert namenode.replications_completed == deficit
        live = namenode.live_nodes()
        for block in namenode.blockmap.block_ids():
            assert len(namenode.blockmap.live_locations(block, live)) == \
                namenode.blockmap.meta(block).replication_factor
        namenode.audit()

    def test_most_exposed_block_repairs_first(self):
        sim = Simulation()
        namenode, client = build(sim=sim, throttle=1)
        block_a = client.write_file("/a", 1, block_size=BLOCK_SIZE).block_ids[0]
        block_b = client.write_file("/b", 1, block_size=BLOCK_SIZE).block_ids[0]
        sim.run()
        holders_a = set(namenode.blockmap.locations(block_a))
        holders_b = set(namenode.blockmap.locations(block_b))
        only_a = sorted(holders_a - holders_b)
        only_b = sorted(holders_b - holders_a)
        assert len(only_a) >= 2 and len(only_b) >= 1, "pick another seed"
        for node in only_a[:2] + only_b[:1]:
            namenode.fail_node(node, re_replicate=False)

        order = []
        original = namenode.replicate_block

        def spy(block_id, *args, **kwargs):
            order.append(block_id)
            return original(block_id, *args, **kwargs)

        namenode.replicate_block = spy
        namenode.check_replication()
        # Block A is one replica from loss; it must be served first.
        assert order[0] == block_a


class TestMigrationRecovery:
    def _setup(self, sim, **kwargs):
        namenode, client = build(sim=sim, **kwargs)
        meta = client.write_file(
            "/a", 1, block_size=BLOCK_SIZE, replication=2, rack_spread=1
        )
        block = meta.block_ids[0]
        sim.run()
        holders = set(namenode.blockmap.locations(block))
        src = sorted(holders)[0]
        dst = sorted(namenode.live_nodes() - holders)[0]
        return namenode, block, src, dst

    def test_failed_migration_rolls_back_and_retargets(self):
        sim = Simulation()
        namenode, block, src, dst = self._setup(sim)
        namenode.transfers.fault_hook = (
            lambda size, s, d: 0.5 if d == dst else None
        )
        assert namenode.move_block(block, src, dst)
        sim.run()
        assert namenode.migration_rollbacks == 1
        assert namenode.migration_retargets == 1
        assert namenode.transfer_retries == 1
        assert namenode.moves_completed == 1
        locations = namenode.blockmap.locations(block)
        assert src not in locations          # the move eventually landed
        assert dst not in locations          # but never on the bad target
        assert len(locations) == 2
        namenode.audit()

    def test_exhausted_policy_rolls_back_without_retarget(self):
        sim = Simulation()
        namenode, block, src, dst = self._setup(
            sim,
            retry_policy=RetryPolicy(max_attempts=1, base_delay=1.0,
                                     jitter=0.0),
        )
        before = set(namenode.blockmap.locations(block))
        namenode.transfers.fault_hook = lambda size, s, d: 0.5
        assert namenode.move_block(block, src, dst)
        sim.run()
        # Make-before-break: the source replica was never touched.
        assert namenode.migration_rollbacks == 1
        assert namenode.migration_retargets == 0
        assert namenode.moves_completed == 0
        assert set(namenode.blockmap.locations(block)) == before
        namenode.audit()

    def test_destination_dying_mid_copy_rolls_back(self):
        sim = Simulation()
        namenode, block, src, dst = self._setup(sim)
        assert namenode.move_block(block, src, dst)
        namenode.datanode(dst).crash()  # dies while the bytes fly
        sim.run()
        assert namenode.migration_rollbacks == 1
        assert namenode.migration_retargets == 1
        assert namenode.moves_completed == 1
        locations = namenode.blockmap.locations(block)
        assert src not in locations
        assert dst not in locations
        namenode.audit()

    def test_move_from_non_holder_rejected(self):
        sim = Simulation()
        namenode, block, src, dst = self._setup(sim)
        with pytest.raises(DfsError):
            namenode.move_block(block, dst, src)


class TestHeartbeatResilience:
    def _cluster(self):
        sim = Simulation()
        topology = ClusterTopology.uniform(4, 3, 60)
        transfers = TransferService(topology, sim=sim, rng=random.Random(1))
        namenode = Namenode(
            topology,
            placement_policy=DefaultHdfsPolicy(random.Random(2)),
            sim=sim,
            transfer_service=transfers,
            rng=random.Random(3),
        )
        heartbeats = HeartbeatService(sim, namenode)
        client = DfsClient(namenode)
        block = client.write_file("/a", 1, block_size=BLOCK_SIZE).block_ids[0]
        return sim, namenode, heartbeats, block

    def test_dead_node_without_blocks_is_declared(self):
        sim, namenode, heartbeats, _ = self._cluster()
        idle = [dn.node_id for dn in namenode.datanodes if not dn.blocks()]
        assert idle, "every node holds blocks; enlarge the cluster"
        victim = idle[0]
        namenode.datanode(victim).crash()
        heartbeats.start()
        sim.run(until=2 * heartbeats.expiry)
        assert victim in heartbeats.declared_dead()
        assert heartbeats.detected_failures == 1
        assert heartbeats.false_suspicions == 0
        assert victim not in namenode.live_nodes()

    def test_false_suspicion_reconciles_when_beats_resume(self):
        sim, namenode, heartbeats, block = self._cluster()
        victim = sorted(namenode.blockmap.locations(block))[0]
        heartbeats.loss_filter = lambda node: node == victim
        heartbeats.start()
        sim.run(until=45.0)
        assert victim in heartbeats.declared_dead()
        assert heartbeats.false_suspicions == 1
        assert namenode.datanode(victim).alive  # it was never down
        assert victim not in namenode.blockmap.locations(block)

        heartbeats.loss_filter = None
        sim.run(until=60.0)
        assert heartbeats.reconciliations == 1
        assert victim not in heartbeats.declared_dead()
        assert victim in namenode.blockmap.locations(block)
        namenode.audit()

    def test_recovery_episode_duration_recorded(self):
        sim, namenode, heartbeats, block = self._cluster()
        sim.run()
        victim = sorted(namenode.blockmap.locations(block))[0]
        namenode.fail_node(victim)  # opens the under-replication episode
        assert namenode.recovery_times == []
        sim.run()
        assert len(namenode.recovery_times) == 1
        assert namenode.recovery_times[0] > 0.0
        live = namenode.live_nodes()
        assert len(namenode.blockmap.live_locations(block, live)) == 3
