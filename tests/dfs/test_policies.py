"""Unit tests for the block placement policies (footnote-1 semantics)."""

import random
from collections import Counter

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import BlockMeta
from repro.dfs.policies import DefaultHdfsPolicy, LoadAwarePolicy
from repro.errors import CapacityExceededError


class FakeContext:
    """Minimal PlacementContext over plain dicts."""

    def __init__(self, topology, full=(), loads=None):
        self.topology = topology
        self._full = set(full)
        self._loads = loads or {}

    def can_store(self, node, block_id):
        return node not in self._full

    def node_load(self, node):
        return self._loads.get(node, 0.0)


def meta(block_id=0, k=3, rho=2):
    return BlockMeta(block_id=block_id, file_id=0, replication_factor=k,
                     rack_spread=rho)


class TestDefaultHdfsPolicy:
    def topo(self):
        return ClusterTopology.uniform(4, 4, capacity=10)

    def test_footnote_semantics_with_writer(self):
        """Task-written block: first replica local, rest in ONE other rack."""
        topo = self.topo()
        policy = DefaultHdfsPolicy(random.Random(0))
        context = FakeContext(topo)
        for _ in range(50):
            targets = policy.choose_targets(context, meta(), writer=0)
            assert len(targets) == 3
            assert targets[0] == 0
            racks = [topo.rack_of[t] for t in targets]
            # Exactly 2 distinct racks: the writer's and one remote rack.
            assert len(set(racks)) == 2
            assert len(set(targets)) == 3

    def test_without_writer_uses_two_racks(self):
        topo = self.topo()
        policy = DefaultHdfsPolicy(random.Random(1))
        context = FakeContext(topo)
        targets = policy.choose_targets(context, meta())
        racks = {topo.rack_of[t] for t in targets}
        assert len(racks) == 2

    def test_random_spread_across_cluster(self):
        """Over many placements, every machine gets used."""
        topo = self.topo()
        policy = DefaultHdfsPolicy(random.Random(2))
        context = FakeContext(topo)
        counts = Counter()
        for i in range(200):
            for t in policy.choose_targets(context, meta(block_id=i)):
                counts[t] += 1
        assert len(counts) == topo.num_machines

    def test_skips_full_machines(self):
        topo = self.topo()
        policy = DefaultHdfsPolicy(random.Random(3))
        context = FakeContext(topo, full={0, 1, 2, 3})  # rack 0 full
        for _ in range(20):
            targets = policy.choose_targets(context, meta(), writer=0)
            assert all(t > 3 for t in targets)

    def test_raises_when_cluster_full(self):
        topo = self.topo()
        policy = DefaultHdfsPolicy(random.Random(4))
        context = FakeContext(topo, full=set(topo.machines))
        with pytest.raises(CapacityExceededError):
            policy.choose_targets(context, meta())

    def test_spread_infeasible_raises(self):
        topo = ClusterTopology.uniform(2, 3, capacity=10)
        policy = DefaultHdfsPolicy(random.Random(5))
        # Rack 1 entirely full: spread 2 is impossible.
        context = FakeContext(topo, full={3, 4, 5})
        with pytest.raises(CapacityExceededError):
            policy.choose_targets(context, meta())

    def test_single_replica_single_rack(self):
        topo = self.topo()
        policy = DefaultHdfsPolicy(random.Random(6))
        context = FakeContext(topo)
        targets = policy.choose_targets(context, meta(k=1, rho=1))
        assert len(targets) == 1


class TestLoadAwarePolicy:
    def topo(self):
        return ClusterTopology.uniform(3, 3, capacity=10)

    def test_picks_least_loaded_machines(self):
        topo = self.topo()
        loads = {n: float(n) for n in topo.machines}  # machine 0 coldest
        context = FakeContext(topo, loads=loads)
        targets = LoadAwarePolicy().choose_targets(context, meta())
        assert 0 in targets
        # The heaviest machine is never chosen.
        assert 8 not in targets

    def test_rack_spread_uses_lowest_load_racks(self):
        topo = self.topo()
        # Rack 2 is red-hot; racks 0 and 1 are cold.
        loads = {n: (100.0 if topo.rack_of[n] == 2 else 1.0)
                 for n in topo.machines}
        context = FakeContext(topo, loads=loads)
        targets = LoadAwarePolicy().choose_targets(context, meta())
        racks = {topo.rack_of[t] for t in targets}
        assert racks == {0, 1}

    def test_writer_local_first(self):
        topo = self.topo()
        context = FakeContext(topo)
        targets = LoadAwarePolicy().choose_targets(context, meta(), writer=4)
        assert targets[0] == 4

    def test_writer_skipped_when_full(self):
        topo = self.topo()
        context = FakeContext(topo, full={4})
        targets = LoadAwarePolicy().choose_targets(context, meta(), writer=4)
        assert 4 not in targets

    def test_deterministic_given_loads(self):
        topo = self.topo()
        loads = {n: float((n * 7) % 5) for n in topo.machines}
        context = FakeContext(topo, loads=loads)
        a = LoadAwarePolicy().choose_targets(context, meta())
        b = LoadAwarePolicy().choose_targets(context, meta())
        assert a == b

    def test_raises_when_cluster_full(self):
        topo = self.topo()
        context = FakeContext(topo, full=set(topo.machines))
        with pytest.raises(CapacityExceededError):
            LoadAwarePolicy().choose_targets(context, meta())
