"""Tests for the HA metadata plane: durable editlog, stores, failover.

Covers the layers bottom-up:

* :class:`~repro.dfs.editlog.EditLog` durability — monotonic sequence
  numbers, atomic dumps, torn-trailing-line tolerance, truncation;
* :class:`~repro.dfs.store.MetadataStore` backends (in-memory and
  JSON-lines file) — append/tail/checkpoint semantics, crash tolerance;
* quota journaling and the mutator-coverage guard (a future namenode
  mutator that ships unjournaled fails the guard test);
* checkpoints — round-trip fidelity and bounded replay;
* :class:`~repro.dfs.ha.HaCluster` — election determinism, the
  log-completeness vote rule, fencing, journal shipping, failover with
  zero acknowledged-write loss.
"""

import inspect
import json
import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.editlog import (
    EXEMPT_NAMENODE_METHODS,
    EXEMPT_QUOTA_METHODS,
    JOURNALED_MUTATORS,
    QUOTA_JOURNALED_MUTATORS,
    EditLog,
    attach_edit_log,
    build_checkpoint,
    recover_namenode,
    replay_entries,
    restore_checkpoint,
)
from repro.dfs.fsck import run_fsck
from repro.dfs.ha import HaCluster, HaConfig
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.quota import QuotaManager
from repro.dfs.replication import TransferService
from repro.dfs.store import (
    InMemoryMetadataStore,
    JsonFileMetadataStore,
)
from repro.errors import (
    DfsError,
    EditLogCorruptError,
    FencedError,
    NoLeaderError,
)
from repro.simulation.engine import Simulation

pytestmark = pytest.mark.ha


def make_namenode(num_racks=2, per_rack=2, capacity=80, seed=0, sim=None):
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    transfers = (
        TransferService(topo, sim=sim, rng=random.Random(seed + 1))
        if sim is not None else None
    )
    return Namenode(
        topo,
        placement_policy=DefaultHdfsPolicy(random.Random(seed + 2)),
        sim=sim,
        transfer_service=transfers,
        rng=random.Random(seed + 3),
    )


class TestEditLogDurability:
    def test_sequence_numbers_are_monotonic_from_one(self):
        log = EditLog()
        first = log.append("mkdir", path="/a")
        second = log.append("mkdir", path="/b")
        assert (first["seq"], second["seq"]) == (1, 2)
        assert log.last_seq == 2

    def test_dump_is_atomic_and_leaves_no_temp(self, tmp_path):
        log = EditLog()
        log.append("mkdir", path="/a")
        target = tmp_path / "journal.jsonl"
        log.dump(target)
        assert [p.name for p in tmp_path.iterdir()] == ["journal.jsonl"]
        lines = target.read_text().splitlines()
        assert [json.loads(line)["op"] for line in lines] == ["mkdir"]

    def test_load_tolerates_torn_trailing_line(self, tmp_path):
        log = EditLog()
        log.append("mkdir", path="/a")
        log.append("mkdir", path="/b")
        target = tmp_path / "journal.jsonl"
        log.dump(target)
        with open(target, "a", encoding="utf-8") as handle:
            handle.write('{"op": "mkdir", "path": "/c"')  # crash mid-write
        reloaded = EditLog.load(target)
        assert reloaded.torn_line is not None
        assert [entry["path"] for entry in reloaded.entries] == ["/a", "/b"]
        assert reloaded.last_seq == 2

    def test_load_rejects_mid_file_corruption(self, tmp_path):
        target = tmp_path / "journal.jsonl"
        good = json.dumps({"op": "mkdir", "path": "/a", "seq": 1})
        target.write_text("not json at all\n" + good + "\n")
        with pytest.raises(EditLogCorruptError):
            EditLog.load(target)

    def test_truncate_through_bounds_the_retained_prefix(self):
        log = EditLog()
        for index in range(10):
            log.append("mkdir", path=f"/d/{index}")
        dropped = log.truncate_through(7)
        assert dropped == 7
        assert len(log) == 3
        assert log.first_retained_seq == 8
        assert [entry["seq"] for entry in log.entries_after(7)] == [8, 9, 10]
        with pytest.raises(DfsError):
            log.entries_after(3)  # predates the retained prefix

    def test_resume_from_continues_the_sequence(self):
        log = EditLog()
        log.resume_from(41)
        assert log.append("mkdir", path="/x")["seq"] == 42
        busy = EditLog()
        busy.append("mkdir", path="/y")
        with pytest.raises(DfsError):
            busy.resume_from(10)  # only an empty journal can resume

    def test_sink_sees_every_entry(self):
        log = EditLog()
        seen = []
        log.sink = seen.append
        log.append("mkdir", path="/a")
        log.append("mkdir", path="/b")
        assert [entry["seq"] for entry in seen] == [1, 2]


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryMetadataStore()
    return JsonFileMetadataStore(tmp_path / "store")


class TestMetadataStores:
    @staticmethod
    def entry(seq, path="/p"):
        return {"op": "mkdir", "path": path, "seq": seq}

    def test_append_and_tail(self, store):
        store.append_entry(self.entry(1))
        store.append_entries([self.entry(2), self.entry(3)])
        assert store.last_seq() == 3
        assert store.journal_size() == 3
        assert [e["seq"] for e in store.entries_after(1)] == [2, 3]

    def test_rejects_stale_or_duplicate_seq(self, store):
        store.append_entry(self.entry(2))
        with pytest.raises(DfsError):
            store.append_entry(self.entry(2))
        with pytest.raises(DfsError):
            store.append_entry(self.entry(1))

    def test_checkpoint_floors_last_seq_and_truncation(self, store):
        for seq in range(1, 6):
            store.append_entry(self.entry(seq))
        store.save_checkpoint({"format": 1, "seq": 9, "directories": []})
        store.truncate_through(5)
        assert store.journal_size() == 0
        assert store.last_seq() == 9  # the checkpoint carries the seq floor
        assert store.load_checkpoint()["seq"] == 9

    def test_file_store_survives_reopen(self, tmp_path):
        directory = tmp_path / "meta"
        store = JsonFileMetadataStore(directory)
        store.append_entry(self.entry(1))
        store.append_entry(self.entry(2, path="/q"))
        store.save_checkpoint({"format": 1, "seq": 1, "directories": []})
        reopened = JsonFileMetadataStore(directory)
        assert reopened.last_seq() == 2
        assert [e["path"] for e in reopened.entries()] == ["/p", "/q"]
        assert reopened.load_checkpoint()["seq"] == 1

    def test_file_store_drops_torn_tail_on_reopen(self, tmp_path):
        directory = tmp_path / "meta"
        store = JsonFileMetadataStore(directory)
        store.append_entry(self.entry(1))
        with open(directory / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"op": "mkdir", "seq": 2, "pa')  # torn write
        reopened = JsonFileMetadataStore(directory)
        assert reopened.last_seq() == 1
        assert reopened.journal_size() == 1


class TestJournalCoverage:
    """A future mutator that ships unjournaled must fail here."""

    @staticmethod
    def public_methods(cls):
        return {
            name
            for name, _member in inspect.getmembers(
                cls, predicate=inspect.isfunction
            )
            if not name.startswith("_")
        }

    def test_every_namenode_method_is_journaled_or_exempt(self):
        methods = self.public_methods(Namenode)
        unaccounted = methods - JOURNALED_MUTATORS - EXEMPT_NAMENODE_METHODS
        assert not unaccounted, (
            f"new Namenode methods {sorted(unaccounted)}: journal them in "
            "repro.dfs.editlog (JOURNALED_MUTATORS + attach_edit_log + "
            "replay_entries) or list them in EXEMPT_NAMENODE_METHODS with "
            "a reason"
        )
        # And the registries must not drift ahead of the class either.
        assert JOURNALED_MUTATORS <= methods
        assert EXEMPT_NAMENODE_METHODS <= methods

    def test_every_quota_method_is_journaled_or_exempt(self):
        methods = self.public_methods(QuotaManager)
        unaccounted = (
            methods - QUOTA_JOURNALED_MUTATORS - EXEMPT_QUOTA_METHODS
        )
        assert not unaccounted, (
            f"new QuotaManager methods {sorted(unaccounted)}: journal or "
            "exempt them in repro.dfs.editlog"
        )
        assert QUOTA_JOURNALED_MUTATORS <= methods

    def test_quota_mutations_are_journaled_and_recovered(self):
        namenode = make_namenode()
        quota = QuotaManager(namenode)
        log = attach_edit_log(namenode, quota=quota)
        namenode.mkdir("/tenant")
        quota.set_quota("/tenant", max_files=3, max_replicated_blocks=50)
        namenode.mkdir("/scratch")
        quota.set_quota("/scratch", max_files=1)
        quota.clear_quota("/scratch")
        ops = [entry["op"] for entry in log.entries]
        assert ops.count("set_quota") == 2
        assert ops.count("clear_quota") == 1

        fresh = make_namenode()
        fresh_quota = QuotaManager(fresh)
        replay_entries(fresh, log.entries, quota=fresh_quota)
        restored = fresh_quota.quota_of("/tenant")
        assert restored.max_files == 3
        assert restored.max_replicated_blocks == 50
        assert fresh_quota.quota_of("/scratch") is None
        # The restored limit is enforced, not just recorded.
        for index in range(3):
            fresh.create_file(f"/tenant/f{index}", num_blocks=1, block_size=1)
        with pytest.raises(DfsError):
            fresh.create_file("/tenant/f3", num_blocks=1, block_size=1)


class TestCheckpoints:
    def test_round_trip_preserves_namespace_blocks_and_quotas(self):
        namenode = make_namenode()
        quota = QuotaManager(namenode)
        attach_edit_log(namenode, quota=quota)
        namenode.mkdir("/empty/nested")  # empty dirs must survive
        namenode.create_file("/data/a", num_blocks=2, block_size=7)
        namenode.create_file("/data/b", num_blocks=1, block_size=7)
        namenode.delete_file("/data/b")
        quota.set_quota("/data", max_files=10)
        checkpoint = build_checkpoint(namenode, quota=quota, seq=4, term=2)

        fresh = make_namenode()
        fresh_quota = QuotaManager(fresh)
        restore_checkpoint(fresh, checkpoint, quota=fresh_quota)
        assert fresh.namespace.is_directory("/empty/nested")
        assert fresh.namespace.is_file("/data/a")
        assert not fresh.namespace.exists("/data/b")
        meta = fresh.file("/data/a")
        assert meta.block_ids == namenode.file("/data/a").block_ids
        assert fresh_quota.quota_of("/data").max_files == 10
        assert fresh._next_file_id == namenode._next_file_id
        assert fresh._next_block_id == namenode._next_block_id

    def test_checkpoint_never_carries_block_locations(self):
        namenode = make_namenode()
        namenode.create_file("/data/a", num_blocks=1, block_size=7)
        checkpoint = build_checkpoint(namenode)
        assert "locations" not in json.dumps(checkpoint)

    def test_replay_resumes_after_checkpoint_only(self):
        """Follower recovery replays only the tail past the checkpoint."""
        namenode = make_namenode()
        log = attach_edit_log(namenode)
        for index in range(20):
            namenode.create_file(f"/f/{index}", num_blocks=1, block_size=1)
        checkpoint = build_checkpoint(namenode, seq=15)
        tail = log.entries_after(15)

        fresh = make_namenode()
        restore_checkpoint(fresh, checkpoint)
        replayed = replay_entries(fresh, tail)
        assert replayed == 5
        for index in range(20):
            assert fresh.namespace.is_file(f"/f/{index}")


def build_cluster(checkpoint_every=50, num_replicas=3, seed=0):
    sim = Simulation()
    topo = ClusterTopology.uniform(2, 2, 120)

    def factory():
        transfers = TransferService(topo, sim=sim, rng=random.Random(1))
        return Namenode(
            topo,
            placement_policy=DefaultHdfsPolicy(random.Random(2)),
            sim=sim,
            transfer_service=transfers,
            rng=random.Random(3),
        )

    config = HaConfig(
        num_replicas=num_replicas,
        checkpoint_every=checkpoint_every,
        seed=seed,
    )
    return sim, HaCluster(sim, config, factory)


class TestHaCluster:
    def test_bootstrap_elects_replica_zero(self):
        sim, cluster = build_cluster()
        namenode = cluster.start()
        assert cluster.leader_id == 0
        assert cluster.current_term == 1
        assert cluster.active is namenode
        cluster.stop()

    def test_no_leader_raises(self):
        sim, cluster = build_cluster()
        cluster.start()
        cluster.kill_leader()
        with pytest.raises(NoLeaderError):
            cluster.active
        cluster.stop()

    def test_election_timeouts_are_seed_deterministic(self):
        _, first = build_cluster(seed=7)
        _, second = build_cluster(seed=7)
        _, different = build_cluster(seed=8)
        timeouts = [r.election_timeout for r in first.replicas]
        assert timeouts == [r.election_timeout for r in second.replicas]
        assert timeouts != [r.election_timeout for r in different.replicas]

    def test_failover_preserves_acknowledged_writes(self):
        sim, cluster = build_cluster(checkpoint_every=10)
        namenode = cluster.start()
        paths = []
        for index in range(25):
            path = f"/f/{index}"
            namenode.create_file(path, num_blocks=1, block_size=1)
            paths.append(path)
        sim.run(until=30.0)  # ship + checkpoint
        cluster.kill_leader()
        sim.run(until=120.0)

        active = cluster.active
        assert active is not namenode
        assert cluster.current_term == 2
        assert cluster.leader_id != 0
        assert not active.safe_mode
        assert cluster.time_to_leader and cluster.time_to_writable
        assert cluster.time_to_writable[0] >= cluster.time_to_leader[0]
        report = run_fsck(active, expected_paths=paths)
        assert report.healthy, report.violations

    def test_deposed_leader_is_fenced(self):
        sim, cluster = build_cluster()
        stale = cluster.start()
        stale.create_file("/a", num_blocks=1, block_size=1)
        sim.run(until=10.0)
        cluster.kill_leader()
        sim.run(until=120.0)
        assert cluster.leader_id != 0
        with pytest.raises(FencedError):
            stale.create_file("/b", num_blocks=1, block_size=1)
        assert cluster.fenced_writes == 1
        # The new leader never saw the fenced write.
        assert not cluster.active.namespace.exists("/b")

    def test_vote_denied_to_incomplete_journal(self):
        """The winner always holds every acknowledged write."""
        sim, cluster = build_cluster()
        namenode = cluster.start()
        sim.run(until=10.0)
        # Rig the timeouts so the *least* caught-up replica stands first:
        # quorum writes land on replicas 0+1, replica 2 only tails.
        cluster.replicas[1].election_timeout = 30.0
        cluster.replicas[2].election_timeout = 12.0
        for index in range(5):
            namenode.create_file(f"/f/{index}", num_blocks=1, block_size=1)
        assert cluster.replicas[2].last_seq < cluster.replicas[1].last_seq
        cluster.kill_leader()
        sim.run(until=120.0)
        # Replica 2 stood and lost (incomplete journal) — possibly more
        # than once — until replica 1's longer timeout expired and it
        # won; the acknowledged writes are all there.
        assert cluster.leader_id == 1
        assert cluster.elections >= 2
        lost = [e for e in cluster.events
                if e["event"] == "election" and not e["won"]]
        assert lost and all(e["replica"] == 2 for e in lost)
        for index in range(5):
            assert cluster.active.namespace.is_file(f"/f/{index}")
        cluster.stop()

    def test_checkpoints_bound_journal_and_replay(self):
        """Journal size and failover replay are O(checkpoint_every),
        independent of the total mutation count."""
        retained = {}
        replayed = {}
        for mutations in (40, 80):
            sim, cluster = build_cluster(checkpoint_every=10)
            namenode = cluster.start()
            counter = [0]

            def write_one():
                if counter[0] < mutations:
                    cluster.active.create_file(
                        f"/f/{counter[0]}", num_blocks=1, block_size=1
                    )
                    counter[0] += 1

            sim.schedule_periodic(1.0, write_one)
            sim.run(until=mutations + 10.0)
            assert cluster.checkpoints_taken >= mutations // 10 - 1
            retained[mutations] = len(cluster.log)
            cluster.kill_leader()
            sim.run(until=mutations + 120.0)
            replayed[mutations] = cluster.entries_replayed_last_failover
            report = run_fsck(
                cluster.active,
                expected_paths=[f"/f/{i}" for i in range(mutations)],
            )
            assert report.healthy, report.violations
            cluster.stop()
        # Doubling the history must not grow the retained journal or
        # the failover replay: both are bounded by checkpoint_every
        # plus the few entries journaled since the last truncation.
        slack = 10 + 5
        assert retained[80] <= slack and retained[40] <= slack
        assert replayed[80] <= slack and replayed[40] <= slack

    def test_ship_catches_up_a_revived_replica(self):
        sim, cluster = build_cluster(checkpoint_every=10)
        namenode = cluster.start()
        sim.run(until=5.0)
        cluster.kill_replica(2)
        for index in range(30):
            namenode.create_file(f"/f/{index}", num_blocks=1, block_size=1)
        sim.run(until=40.0)  # checkpoints happen while 2 is down
        cluster.revive_replica(2)
        sim.run(until=60.0)
        leader_seq = cluster.replicas[cluster.leader_id].last_seq
        assert cluster.replicas[2].last_seq == leader_seq
        # It caught up through a shipped checkpoint, not a full replay.
        assert cluster.replicas[2].store.load_checkpoint() is not None
        assert cluster.replicas[2].store.journal_size() <= 15
        cluster.stop()

    def test_two_replica_plane_survives_no_failover_without_quorum(self):
        sim, cluster = build_cluster(num_replicas=2)
        cluster.start()
        cluster.kill_replica(1)
        cluster.kill_leader()
        sim.run(until=120.0)
        # 0 alive replicas of 2: no quorum, no leader — and no crash.
        with pytest.raises(NoLeaderError):
            cluster.active
        cluster.stop()

    def test_recover_namenode_still_works_standalone(self):
        """The pre-HA single-node recovery path keeps working."""
        namenode = make_namenode()
        log = attach_edit_log(namenode)
        namenode.create_file("/solo", num_blocks=1, block_size=1)
        fresh = make_namenode()
        recover_namenode(fresh, log, surviving_datanodes=fresh.datanodes)
        assert fresh.namespace.is_file("/solo")
