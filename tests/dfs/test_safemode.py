"""Tests for namenode safe mode."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.editlog import attach_edit_log, recover_namenode
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.safemode import SafeModeMonitor, enter_safe_mode, reported_fraction
from repro.errors import DfsError, SafeModeError
from repro.simulation.engine import Simulation


def make_namenode(seed=0, sim=None):
    topo = ClusterTopology.uniform(2, 4, capacity=60)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed), sim=sim,
    )


class TestSafeModeGuards:
    def test_mutations_rejected_in_safe_mode(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        enter_safe_mode(nn)
        with pytest.raises(SafeModeError):
            nn.create_file("/b", num_blocks=1)
        with pytest.raises(SafeModeError):
            nn.delete_file("/a")
        with pytest.raises(SafeModeError):
            nn.set_replication(meta.block_ids[0], 4)

    def test_reads_still_served(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        enter_safe_mode(nn)
        source = nn.record_access(meta.block_ids[0], reader=0)
        assert source in nn.blockmap.locations(meta.block_ids[0])


class TestReportedFraction:
    def test_empty_namespace_is_fully_reported(self):
        assert reported_fraction(make_namenode()) == 1.0

    def test_counts_live_locations(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=2)
        assert reported_fraction(nn) == 1.0
        # Kill every replica holder of one block.
        block = nn.file("/a").block_ids[0]
        for node in nn.blockmap.locations(block):
            nn.fail_node(node, re_replicate=False)
        fraction = reported_fraction(nn)
        assert fraction < 1.0

    def test_min_replica_requirement(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=1)
        assert reported_fraction(nn, min_replicas=3) == 1.0
        assert reported_fraction(nn, min_replicas=4) == 0.0


class TestSafeModeMonitor:
    def test_recovery_exits_after_block_reports(self):
        nn = make_namenode(seed=1)
        log = attach_edit_log(nn)
        nn.create_file("/a", num_blocks=3)
        fresh = make_namenode(seed=2)
        monitor = SafeModeMonitor(fresh, threshold=0.99)
        assert monitor.active
        with pytest.raises(SafeModeError):
            fresh.create_file("/x", num_blocks=1)
        # Before block reports, nothing is reported: stays in safe mode.
        # (Recovery replays the namespace first.)
        recover_namenode(fresh, log, surviving_datanodes=nn.datanodes)
        assert monitor.check(now=0.0)
        assert not fresh.safe_mode
        fresh.create_file("/x", num_blocks=1)  # writable again

    def test_stays_in_safe_mode_when_blocks_missing(self):
        nn = make_namenode(seed=3)
        log = attach_edit_log(nn)
        nn.create_file("/a", num_blocks=2)
        fresh = make_namenode(seed=4)
        monitor = SafeModeMonitor(fresh, threshold=0.999)
        # Lose ALL datanodes: no block ever reports.
        recover_namenode(fresh, log, surviving_datanodes=[])
        assert not monitor.check(now=0.0)
        assert fresh.safe_mode

    def test_extension_delays_exit(self):
        sim = Simulation()
        nn = make_namenode(seed=5, sim=sim)
        monitor = SafeModeMonitor(nn, threshold=0.5, extension=10.0)
        monitor.run_on(sim, interval=2.0)
        sim.run(until=5.0)
        assert monitor.active  # threshold met but extension pending
        sim.run(until=20.0)
        assert not monitor.active

    def test_validation(self):
        nn = make_namenode()
        with pytest.raises(DfsError):
            SafeModeMonitor(nn, threshold=0.0)
        with pytest.raises(DfsError):
            SafeModeMonitor(nn, min_replicas=0)
        with pytest.raises(DfsError):
            SafeModeMonitor(nn, extension=-1.0)
        monitor = SafeModeMonitor(nn)
        sim = Simulation()
        monitor.run_on(sim)
        with pytest.raises(DfsError):
            monitor.run_on(sim)


class TestCrashDuringRecovery:
    """Recovery must survive being interrupted and survivors dying."""

    def _crashed_cluster(self, seed=7):
        nn = make_namenode(seed=seed)
        log = attach_edit_log(nn)
        nn.create_file("/a", num_blocks=3)
        nn.create_file("/b", num_blocks=2)
        fresh = make_namenode(seed=seed + 1)
        return nn, log, fresh

    def test_rerunning_recovery_is_idempotent(self):
        # The recovering namenode crashes after applying block reports
        # and recovery starts over: the second pass must not trip
        # duplicate-replica errors or double-store replicas.
        nn, log, fresh = self._crashed_cluster()
        recover_namenode(fresh, log, surviving_datanodes=nn.datanodes)
        recover_namenode(fresh, log, surviving_datanodes=nn.datanodes)
        for block_id in fresh.blockmap.block_ids():
            assert (fresh.blockmap.locations(block_id)
                    == nn.blockmap.locations(block_id))
        fresh.audit()

    def test_dead_survivor_restores_disk_but_no_locations(self):
        nn, log, fresh = self._crashed_cluster()
        victim = next(iter(nn.blockmap.locations(nn.file("/a").block_ids[0])))
        nn.datanode(victim).crash()  # dies before its report lands
        recover_namenode(fresh, log, surviving_datanodes=nn.datanodes)
        target = fresh.datanode(victim)
        assert not target.alive
        assert target.blocks() == nn.datanode(victim).blocks()
        for block_id in target.blocks():
            assert victim not in fresh.blockmap.locations(block_id)
        fresh.audit()

    def test_rerun_after_survivor_dies_mid_recovery(self):
        # First pass registers the survivor's replicas; the survivor
        # then crashes and recovery is re-run.  The re-run must retract
        # the dead node's locations instead of leaving the block map
        # pointing at a node that cannot serve.
        nn, log, fresh = self._crashed_cluster()
        victim = next(iter(nn.blockmap.locations(nn.file("/a").block_ids[0])))
        recover_namenode(fresh, log, surviving_datanodes=nn.datanodes)
        assert fresh.blockmap.blocks_on(victim)
        nn.datanode(victim).crash()
        recover_namenode(fresh, log, surviving_datanodes=nn.datanodes)
        assert not fresh.blockmap.blocks_on(victim)
        assert not fresh.datanode(victim).alive
        fresh.audit()

    def test_safe_mode_ignores_dead_survivors_until_they_report(self):
        nn, log, fresh = self._crashed_cluster()
        monitor = SafeModeMonitor(fresh, threshold=0.999)
        # Every replica holder of one block dies before reporting.
        block = nn.file("/a").block_ids[0]
        holders = list(nn.blockmap.locations(block))
        for node in holders:
            nn.datanode(node).crash()
        recover_namenode(fresh, log, surviving_datanodes=nn.datanodes)
        assert not monitor.check(now=0.0)
        assert fresh.safe_mode  # the dead disks must not count
        # The crashed nodes reboot and re-report: safe mode can exit.
        for node in holders:
            fresh.recover_node(node)
        assert monitor.check(now=1.0)
        assert not fresh.safe_mode
        fresh.audit()
