"""Integration tests for the namenode: writes, reads, replication, failures."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient, Locality
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy, LoadAwarePolicy
from repro.dfs.replication import TransferService
from repro.errors import (
    DatanodeUnavailableError,
    DfsError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
)
from repro.simulation.engine import Simulation


def make_namenode(num_racks=3, per_rack=4, capacity=50, policy=None, seed=0):
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    return Namenode(
        topo,
        placement_policy=policy or DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed),
    )


class TestNamespace:
    def test_create_file_places_all_replicas(self):
        nn = make_namenode()
        meta = nn.create_file("/data/a", num_blocks=4)
        assert meta.num_blocks == 4
        for block_id in meta.block_ids:
            assert nn.blockmap.replica_count(block_id) == 3
            assert nn.blockmap.rack_spread(block_id) >= 2
        assert nn.list_files() == ["/data/a"]
        assert nn.file("/data/a") == meta
        assert nn.file_by_id(meta.file_id) == meta

    def test_create_rejects_duplicates_and_empty(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=1)
        with pytest.raises(FileExistsInDfsError):
            nn.create_file("/a", num_blocks=1)
        with pytest.raises(DfsError):
            nn.create_file("/b", num_blocks=0)

    def test_delete_file_frees_space(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=2)
        used_before = sum(dn.used_blocks for dn in nn.datanodes)
        assert used_before == 6
        nn.delete_file("/a")
        assert sum(dn.used_blocks for dn in nn.datanodes) == 0
        with pytest.raises(FileNotFoundInDfsError):
            nn.file("/a")
        for block_id in meta.block_ids:
            assert block_id not in nn.blockmap

    def test_writer_local_first_replica(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1, writer=5)
        block = meta.block_ids[0]
        assert 5 in nn.blockmap.locations(block)


class TestReads:
    def test_read_prefers_local_then_rack(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        holders = nn.blockmap.locations(block)
        some_holder = next(iter(holders))
        assert nn.choose_read_replica(block, some_holder) == some_holder
        # A reader in the same rack as a holder gets a rack-local replica.
        rack = nn.topology.rack_of[some_holder]
        rack_peers = [
            m for m in nn.topology.machines_in_rack(rack) if m not in holders
        ]
        if rack_peers:
            src = nn.choose_read_replica(block, rack_peers[0])
            assert nn.topology.rack_of[src] == rack

    def test_read_notifies_listeners(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        seen = []
        nn.access_listeners.append(lambda block, time: seen.append(block))
        nn.record_access(meta.block_ids[0], reader=0)
        assert seen == [meta.block_ids[0]]

    def test_read_fails_with_no_live_replica(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        for node in nn.blockmap.locations(block):
            nn.fail_node(node, re_replicate=False)
        # All original holders down and no re-replication ran.
        with pytest.raises(DatanodeUnavailableError):
            nn.choose_read_replica(block, reader=0)

    def test_client_classifies_locality(self):
        nn = make_namenode()
        client = DfsClient(nn)
        meta = client.write_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        holder = next(iter(nn.blockmap.locations(block)))
        result = client.read_block(block, reader=holder)
        assert result.locality is Locality.NODE_LOCAL
        assert result.is_local
        results = client.read_file("/a", reader=holder)
        assert len(results) == 1


class TestFailuresAndRecovery:
    def test_node_failure_triggers_re_replication(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=3)
        victim = next(iter(nn.blockmap.locations(meta.block_ids[0])))
        nn.fail_node(victim)
        live = nn.live_nodes()
        for block_id in meta.block_ids:
            assert len(nn.blockmap.live_locations(block_id, live)) >= 3
        assert nn.is_file_available("/a")

    def test_rack_failure_leaves_files_available(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=5)
        nn.fail_rack(0, re_replicate=False)
        # Rack spread 2 guarantees availability through any single rack
        # outage even before repair.
        assert nn.is_file_available("/a")

    def test_recovery_restores_locations_via_block_report(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        victim = next(iter(nn.blockmap.locations(block)))
        nn.fail_node(victim, re_replicate=False)
        assert victim not in nn.blockmap.locations(block)
        nn.recover_node(victim)
        assert victim in nn.blockmap.locations(block)

    def test_recovery_discards_deleted_blocks(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        victim = next(iter(nn.blockmap.locations(block)))
        nn.fail_node(victim, re_replicate=False)
        nn.delete_file("/a")
        nn.recover_node(victim)
        assert not nn.datanode(victim).holds(block)

    def test_fail_is_idempotent(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=1)
        nn.fail_node(0, re_replicate=False)
        nn.fail_node(0, re_replicate=False)  # no error
        nn.recover_node(0)
        nn.recover_node(0)  # no error


class TestReplicationManagement:
    def test_set_replication_up(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        nn.set_replication(block, 5)
        assert nn.blockmap.replica_count(block) == 5
        assert nn.blockmap.meta(block).replication_factor == 5

    def test_set_replication_down_is_lazy(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        nn.set_replication(block, 5)
        nn.set_replication(block, 3)
        # Replicas stay on disk (lazy) but two are marked deletable.
        assert nn.blockmap.replica_count(block) == 5
        assert len([p for p in nn.lazy_replicas() if p[0] == block]) == 2

    def test_lazy_replicas_are_reclaimed_on_increase(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        nn.set_replication(block, 5)
        nn.set_replication(block, 3)
        replications_before = nn.replications_completed
        nn.set_replication(block, 5)
        # Reclaiming marked replicas costs no new transfers.
        assert nn.replications_completed == replications_before
        assert nn.reclaimed_replicas == 2
        assert not nn.lazy_replicas()

    def test_lazy_eviction_when_space_needed(self):
        topo = ClusterTopology.uniform(2, 2, capacity=1)
        nn = Namenode(topo, placement_policy=DefaultHdfsPolicy(random.Random(0)),
                      rng=random.Random(0))
        meta = nn.create_file("/a", num_blocks=1, replication=4, rack_spread=2)
        block = meta.block_ids[0]
        nn.set_replication(block, 2)  # two replicas now lazy
        # Every disk is full; the new file can only land by evicting the
        # lazily deletable replicas.
        nn.create_file("/b", num_blocks=1, replication=2, rack_spread=2)
        assert nn.lazy_evictions == 2
        assert nn.blockmap.replica_count(block) == 2

    def test_mark_excess_preserves_rack_spread(self):
        nn = make_namenode(num_racks=2, per_rack=3)
        meta = nn.create_file("/a", num_blocks=1, replication=4, rack_spread=2)
        block = meta.block_ids[0]
        nn.set_replication(block, 2)
        active = [
            n for n in nn.blockmap.locations(block)
            if (block, n) not in nn.lazy_replicas()
        ]
        racks = {nn.topology.rack_of[n] for n in active}
        assert len(racks) >= 2

    def test_move_block_make_before_break(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        src = next(iter(nn.blockmap.locations(block)))
        dst = next(
            n for n in nn.topology.machines
            if n not in nn.blockmap.locations(block)
            and nn.topology.rack_of[n] == nn.topology.rack_of[src]
        )
        assert nn.move_block(block, src, dst)
        assert dst in nn.blockmap.locations(block)
        assert src not in nn.blockmap.locations(block)
        assert nn.blockmap.replica_count(block) == 3
        assert nn.moves_completed == 1

    def test_move_rejects_spread_violation(self):
        topo = ClusterTopology.uniform(2, 3, capacity=10)
        nn = Namenode(topo, placement_policy=DefaultHdfsPolicy(random.Random(0)))
        meta = nn.create_file("/a", num_blocks=1, replication=3, rack_spread=2)
        block = meta.block_ids[0]
        locations = nn.blockmap.locations(block)
        racks = {}
        for node in locations:
            racks.setdefault(nn.topology.rack_of[node], []).append(node)
        lonely_rack = min(racks, key=lambda r: len(racks[r]))
        src = racks[lonely_rack][0]
        other_rack = next(r for r in racks if r != lonely_rack)
        dst = next(
            n for n in nn.topology.machines_in_rack(other_rack)
            if n not in locations
        )
        assert not nn.move_block(block, src, dst)

    def test_move_rejects_unknown_source(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        outsider = next(
            n for n in nn.topology.machines
            if n not in nn.blockmap.locations(block)
        )
        with pytest.raises(DfsError):
            nn.move_block(block, outsider, 0)

    def test_timed_replication_with_simulator(self):
        sim = Simulation()
        topo = ClusterTopology.uniform(2, 3, capacity=50)
        transfers = TransferService(topo, sim=sim, jitter=0.0)
        nn = Namenode(topo, placement_policy=DefaultHdfsPolicy(random.Random(0)),
                      sim=sim, transfer_service=transfers)
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        nn.set_replication(block, 4)
        # Transfer has not completed yet.
        assert nn.blockmap.replica_count(block) == 3
        sim.run()
        assert nn.blockmap.replica_count(block) == 4
        assert transfers.durations.max() > 0


class TestLoadAwarePolicy:
    def test_targets_least_loaded_nodes(self):
        nn = make_namenode(policy=LoadAwarePolicy())
        loads = {n: 0.0 for n in nn.topology.machines}
        loads[0] = 100.0
        nn.load_provider = lambda node: loads[node]
        meta = nn.create_file("/a", num_blocks=1)
        assert 0 not in nn.blockmap.locations(meta.block_ids[0])

    def test_spread_satisfied(self):
        nn = make_namenode(policy=LoadAwarePolicy())
        meta = nn.create_file("/a", num_blocks=6)
        for block_id in meta.block_ids:
            assert nn.blockmap.rack_spread(block_id) >= 2
