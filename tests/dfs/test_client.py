"""Unit tests for the DFS client."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient, Locality, ReadResult
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import FileNotFoundInDfsError


def make_client(seed=0):
    topo = ClusterTopology.uniform(3, 3, capacity=60)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed),
    )
    return nn, DfsClient(nn)


class TestDfsClient:
    def test_write_then_read_file(self):
        nn, client = make_client()
        meta = client.write_file("/a", num_blocks=3)
        results = client.read_file("/a", reader=0)
        assert len(results) == 3
        assert [r.block_id for r in results] == list(meta.block_ids)
        for result in results:
            assert result.source in nn.blockmap.locations(result.block_id)

    def test_locality_classification(self):
        nn, client = make_client()
        meta = client.write_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        holders = nn.blockmap.locations(block)
        holder = next(iter(holders))
        local = client.read_block(block, reader=holder)
        assert local.locality is Locality.NODE_LOCAL and local.is_local
        # A reader sharing no rack with any holder reads remotely.
        holder_racks = {nn.topology.rack_of[h] for h in holders}
        outsiders = [
            m for m in nn.topology.machines
            if nn.topology.rack_of[m] not in holder_racks
        ]
        if outsiders:
            remote = client.read_block(block, reader=outsiders[0])
            assert remote.locality is Locality.REMOTE
            assert not remote.is_local

    def test_set_replication_applies_to_every_block(self):
        nn, client = make_client()
        meta = client.write_file("/a", num_blocks=2)
        client.set_replication("/a", 5)
        for block in meta.block_ids:
            assert nn.blockmap.meta(block).replication_factor == 5
            assert nn.blockmap.replica_count(block) == 5

    def test_delete_file(self):
        nn, client = make_client()
        client.write_file("/a", num_blocks=1)
        client.delete_file("/a")
        with pytest.raises(FileNotFoundInDfsError):
            client.read_file("/a", reader=0)

    def test_reads_feed_the_usage_monitor(self):
        nn, client = make_client()
        seen = []
        nn.access_listeners.append(lambda block, time: seen.append(block))
        meta = client.write_file("/a", num_blocks=2)
        client.read_file("/a", reader=0)
        assert seen == list(meta.block_ids)

    def test_read_result_is_immutable_value(self):
        result = ReadResult(block_id=1, source=2, locality=Locality.REMOTE)
        with pytest.raises(AttributeError):
            result.source = 3
