"""Tests for the transfer model, heartbeat service and disk balancer."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.balancer import Balancer
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import GIGABIT_PER_SECOND, TransferService
from repro.errors import DfsError
from repro.simulation.engine import Simulation


def topo(num_racks=2, per_rack=3, capacity=50):
    return ClusterTopology.uniform(num_racks, per_rack, capacity)


class TestTransferService:
    def test_duration_scales_with_size(self):
        service = TransferService(topo(), jitter=0.0)
        small = service.estimate_duration(GIGABIT_PER_SECOND, 0, 1)
        large = service.estimate_duration(4 * GIGABIT_PER_SECOND, 0, 1)
        assert large == pytest.approx(4 * small)

    def test_cross_rack_penalty(self):
        service = TransferService(topo(), jitter=0.0, cross_rack_penalty=2.0)
        intra = service.estimate_duration(1000, 0, 1)   # same rack
        inter = service.estimate_duration(1000, 0, 3)   # across racks
        assert inter == pytest.approx(2 * intra)

    def test_compression_shrinks_duration(self):
        plain = TransferService(topo(), jitter=0.0)
        squeezed = TransferService(topo(), jitter=0.0, compression_ratio=27.0)
        assert squeezed.estimate_duration(1000, 0, 1) == pytest.approx(
            plain.estimate_duration(1000, 0, 1) / 27.0
        )

    def test_instant_mode_runs_callback_synchronously(self):
        service = TransferService(topo(), jitter=0.0)
        done = []
        duration = service.transfer(1000, 0, 1, lambda: done.append(True))
        assert done == [True]
        assert duration > 0
        assert service.bytes_transferred == 1000
        assert service.transfers_started == 1

    def test_simulated_mode_defers_completion_and_contends(self):
        sim = Simulation()
        service = TransferService(topo(), sim=sim, jitter=0.0)
        done = []
        first = service.transfer(GIGABIT_PER_SECOND, 0, 1, lambda: done.append(1))
        assert done == []
        assert service.active_transfers(0) == 1
        # A second transfer touching node 0 sees contention and slows down.
        second = service.transfer(GIGABIT_PER_SECOND, 0, 2, lambda: done.append(2))
        assert second > first
        sim.run()
        assert sorted(done) == [1, 2]
        assert service.active_transfers(0) == 0

    def test_rejects_self_transfer_and_bad_params(self):
        with pytest.raises(DfsError):
            TransferService(topo(), nic_bandwidth=0)
        with pytest.raises(DfsError):
            TransferService(topo(), cross_rack_penalty=0.5)
        with pytest.raises(DfsError):
            TransferService(topo(), compression_ratio=0.5)
        with pytest.raises(DfsError):
            TransferService(topo(), jitter=1.0)
        service = TransferService(topo())
        with pytest.raises(DfsError):
            service.transfer(10, 1, 1, lambda: None)


class TestHeartbeatService:
    def make(self):
        sim = Simulation()
        nn = Namenode(
            topo(), placement_policy=DefaultHdfsPolicy(random.Random(0)),
            sim=sim, rng=random.Random(0),
        )
        service = HeartbeatService(sim, nn, interval=3.0, expiry=30.0)
        return sim, nn, service

    def test_detects_silent_crash_and_repairs(self):
        sim, nn, service = self.make()
        service.start()
        meta = nn.create_file("/a", num_blocks=2)
        victim = next(iter(nn.blockmap.locations(meta.block_ids[0])))
        # Crash the datanode directly — the namenode only learns via
        # missing heartbeats.
        nn.datanode(victim).crash()
        assert victim in nn.blockmap.locations(meta.block_ids[0])
        sim.run(until=200.0)
        assert service.detected_failures == 1
        assert victim not in nn.blockmap.locations(meta.block_ids[0])
        live = nn.live_nodes()
        for block_id in meta.block_ids:
            assert len(nn.blockmap.live_locations(block_id, live)) >= 3

    def test_healthy_nodes_never_expire(self):
        sim, nn, service = self.make()
        service.start()
        nn.create_file("/a", num_blocks=1)
        sim.run(until=500.0)
        assert service.detected_failures == 0
        assert len(nn.live_nodes()) == nn.topology.num_machines

    def test_stop_cancels_activity(self):
        sim, nn, service = self.make()
        service.start()
        service.stop()
        events_before = sim.pending_events
        sim.run(until=100.0)
        # Cancelled tokens do not fire.
        assert service.detected_failures == 0
        assert events_before >= 0

    def test_double_start_rejected(self):
        _, _, service = self.make()
        service.start()
        with pytest.raises(DfsError):
            service.start()

    def test_parameter_validation(self):
        sim = Simulation()
        nn = Namenode(topo(), placement_policy=DefaultHdfsPolicy(random.Random(0)))
        with pytest.raises(DfsError):
            HeartbeatService(sim, nn, interval=0.0)
        with pytest.raises(DfsError):
            HeartbeatService(sim, nn, interval=5.0, expiry=5.0)


class TestBalancer:
    def test_balances_skewed_disk_usage(self):
        nn = Namenode(
            topo(num_racks=2, per_rack=4, capacity=40),
            placement_policy=DefaultHdfsPolicy(random.Random(1)),
            rng=random.Random(1),
        )
        # Pile many single-replica blocks on one node via writer affinity.
        for i in range(30):
            nn.create_file(f"/hot/{i}", num_blocks=1, replication=1,
                           rack_spread=1, writer=0)
        balancer = Balancer(nn, threshold=0.05, rng=random.Random(2))
        assert balancer.utilization(0) == pytest.approx(30 / 40)
        report = balancer.run()
        assert report.converged
        assert report.moves_started > 0
        mean = balancer.mean_utilization()
        for node in nn.live_nodes():
            assert abs(balancer.utilization(node) - mean) <= 0.05 + 1e-9

    def test_noop_on_balanced_cluster(self):
        nn = Namenode(
            topo(), placement_policy=DefaultHdfsPolicy(random.Random(0)),
            rng=random.Random(0),
        )
        balancer = Balancer(nn)
        report = balancer.run()
        assert report.converged
        assert report.moves_started == 0

    def test_threshold_validation(self):
        nn = Namenode(topo(), placement_policy=DefaultHdfsPolicy(random.Random(0)))
        with pytest.raises(DfsError):
            Balancer(nn, threshold=0.0)
        with pytest.raises(DfsError):
            Balancer(nn, threshold=1.0)

    def test_gives_up_when_blocks_pinned(self):
        # Single rack pair where every block on the hot node is pinned by
        # rack spread (spread 2 with replicas exactly on 2 racks).
        nn = Namenode(
            topo(num_racks=2, per_rack=1, capacity=20),
            placement_policy=DefaultHdfsPolicy(random.Random(0)),
            rng=random.Random(0),
        )
        for i in range(4):
            nn.create_file(f"/f{i}", num_blocks=1, replication=2, rack_spread=2)
        balancer = Balancer(nn, threshold=0.05, rng=random.Random(0))
        report = balancer.run(max_moves=10)
        # Two machines, equal usage: nothing to do (converged trivially).
        assert report.converged or report.moves_started == 0
