"""Regression: sampled ``dfs.read`` spans must tile on the modeled
timeline.

Sim time stands still during a client's synchronous failover walk, so a
naive span records every attempt at the same instant and a root whose
children overlap.  The pinned semantics: attempt N is anchored at
``walk start + backoff already paid``, a failed attempt spans its
backoff, the serving attempt spans its queue latency, and the root span
covers exactly ``latency + total backoff``.
"""

import random

import pytest

from repro import obs
from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.faults import RetryPolicy
from repro.obs.tracing import TraceSampler

BLOCK_SIZE = 8 * 1024 * 1024


@pytest.fixture
def observability():
    obs.enable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    yield obs.get_tracer()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    obs.disable()


def build(seed=0, retry_policy=None):
    topology = ClusterTopology.uniform(4, 2, 60)
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed + 1),
    )
    client = DfsClient(
        namenode,
        retry_policy=retry_policy,
        trace_sampler=TraceSampler(1.0),
    )
    return namenode, client


def spans_sorted(tracer, name):
    return sorted(tracer.spans(name), key=lambda s: s.sim_time)


def test_clean_read_root_span_has_zero_duration(observability):
    tracer = observability
    namenode, client = build()
    meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
    result = client.read_block(meta.block_ids[0], reader=0)
    (root,) = tracer.spans("dfs.read")
    assert root.sim_duration == pytest.approx(
        result.latency + result.backoff
    )
    (attempt,) = tracer.spans("dfs.read.attempt")
    assert attempt.sim_time == root.sim_time
    assert attempt.fields["outcome"] == "served"
    assert attempt.sim_duration == pytest.approx(result.latency)


def test_failover_attempts_tile_inside_the_root_span(observability):
    tracer = observability
    namenode, client = build()
    meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
    block = meta.block_ids[0]
    # Crash the first two preferred replicas: the walk pays two
    # backoffs (0.5 then 1.0 with the jitter-free default policy)
    # before the third candidate serves.
    preferred = namenode.replica_preference(block, 0)
    for node in preferred[:2]:
        namenode.datanode(node).crash()
    result = client.read_block(block, reader=0)
    assert result.backoff == pytest.approx(1.5)

    (root,) = tracer.spans("dfs.read")
    attempts = spans_sorted(tracer, "dfs.read.attempt")
    assert len(attempts) == 3
    assert [span.fields["outcome"] for span in attempts] == [
        "failed", "failed", "served",
    ]

    # The regression: every attempt used to collapse onto the walk's
    # start instant.  Pinned semantics — children tile sequentially.
    assert attempts[0].sim_time == root.sim_time
    for earlier, later in zip(attempts, attempts[1:]):
        assert later.sim_time == pytest.approx(
            earlier.sim_time + earlier.sim_duration
        )
    assert attempts[0].sim_duration == pytest.approx(0.5)
    assert attempts[1].sim_duration == pytest.approx(1.0)
    assert attempts[2].sim_duration == pytest.approx(result.latency)
    assert root.sim_duration == pytest.approx(
        result.latency + result.backoff
    )
    assert attempts[-1].sim_time + attempts[-1].sim_duration == (
        pytest.approx(root.sim_time + root.sim_duration)
    )


def test_exhausted_walk_still_closes_spans_on_the_timeline(observability):
    tracer = observability
    namenode, client = build(
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.5)
    )
    meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
    block = meta.block_ids[0]
    for node in namenode.blockmap.locations(block):
        namenode.datanode(node).crash()
    with pytest.raises(Exception):
        client.read_block(block, reader=0)
    attempts = spans_sorted(tracer, "dfs.read.attempt")
    assert len(attempts) == 2
    assert attempts[0].fields["outcome"] == "failed"
    assert attempts[0].sim_duration == pytest.approx(0.5)
    # The final, policy-exhausted attempt ends where it began — no
    # backoff is paid after giving up.
    assert attempts[1].fields["outcome"] == "failed"
    assert attempts[1].sim_duration == 0.0
    assert attempts[1].sim_time == pytest.approx(
        attempts[0].sim_time + attempts[0].sim_duration
    )
