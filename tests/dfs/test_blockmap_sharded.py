"""Tests for the hash-sharded block map (repro.dfs.blockmap.ShardedBlockMap).

The sharded map must be observationally identical to the flat
:class:`BlockMap` — same query answers, same *ordering* (ascending
block id) from iteration and the health queries — for **every** shard
count, including after shard-count growth rehashes everything.  A
namenode running on a sharded map must behave byte-for-byte like one on
a flat map through create/fail/repair/fsck cycles.
"""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import BlockMeta
from repro.dfs.blockmap import BlockMap, ShardedBlockMap
from repro.dfs.fsck import run_fsck
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import BlockNotFoundError, DfsError


def topo(num_racks=2, per_rack=4, capacity=60):
    return ClusterTopology.uniform(num_racks, per_rack, capacity=capacity)


def _populate(blockmap, num_blocks=40, seed=0):
    """Register blocks in shuffled order with a few locations each."""
    rng = random.Random(seed)
    ids = list(range(num_blocks))
    rng.shuffle(ids)
    machines = list(blockmap.topology.machines)
    for block_id in ids:
        blockmap.register(BlockMeta(
            block_id=block_id, file_id=block_id // 4,
            replication_factor=3, rack_spread=2,
        ))
        for node in rng.sample(machines, rng.randint(1, 3)):
            blockmap.add_location(block_id, node)
    return ids


class TestShardedBasics:
    def test_invalid_shard_count_rejected(self):
        with pytest.raises(DfsError):
            ShardedBlockMap(topo(), num_shards=0)

    def test_register_meta_and_locations(self):
        bm = ShardedBlockMap(topo(), num_shards=4)
        bm.register(BlockMeta(block_id=7, file_id=0))
        assert 7 in bm
        assert bm.meta(7).block_id == 7
        bm.add_location(7, 2)
        assert bm.locations(7) == frozenset({2})
        assert bm.blocks_on(2) == frozenset({7})
        assert bm.used_capacity(2) == 1
        bm.remove_location(7, 2)
        assert bm.locations(7) == frozenset()
        bm.unregister(7)
        assert 7 not in bm
        assert bm.num_blocks == 0

    def test_duplicate_and_missing_rejected(self):
        bm = ShardedBlockMap(topo(), num_shards=2)
        bm.register(BlockMeta(block_id=0, file_id=0))
        with pytest.raises(DfsError):
            bm.register(BlockMeta(block_id=0, file_id=1))
        with pytest.raises(BlockNotFoundError):
            bm.meta(99)
        with pytest.raises(BlockNotFoundError):
            bm.unregister(99)


class TestDeterministicIteration:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7, 16])
    def test_block_ids_ascending_for_every_shard_count(self, num_shards):
        bm = ShardedBlockMap(topo(), num_shards=num_shards)
        _populate(bm, num_blocks=50, seed=3)
        ids = list(bm.block_ids())
        assert ids == sorted(ids)
        assert ids == list(range(50))

    @pytest.mark.parametrize("num_shards", [1, 2, 5, 8])
    def test_queries_identical_to_flat_map(self, num_shards):
        flat = BlockMap(topo())
        sharded = ShardedBlockMap(topo(), num_shards=num_shards)
        _populate(flat, num_blocks=60, seed=4)
        _populate(sharded, num_blocks=60, seed=4)
        live = set(flat.topology.machines)
        # The flat map iterates in registration order; the sharded map
        # guarantees ascending block id regardless of registration
        # order, so compare against the flat map's sorted view.  (The
        # namenode registers ids sequentially, so the orders coincide
        # in situ — pinned by TestNamenodeParity.)
        assert list(sharded.block_ids()) == sorted(flat.block_ids())
        assert sharded.num_blocks == flat.num_blocks
        assert sharded.under_replicated(live) == sorted(
            flat.under_replicated(live)
        )
        assert sharded.under_spread(live) == sorted(flat.under_spread(live))
        assert sharded.over_replicated() == sorted(flat.over_replicated())
        for block_id in flat.block_ids():
            assert sharded.locations(block_id) == flat.locations(block_id)
            assert sharded.meta(block_id) == flat.meta(block_id)
        for node in live:
            assert sharded.blocks_on(node) == flat.blocks_on(node)

    def test_health_queries_sorted_under_partial_liveness(self):
        bm = ShardedBlockMap(topo(), num_shards=4)
        _populate(bm, num_blocks=40, seed=5)
        live = set(list(bm.topology.machines)[:3])
        under = bm.under_replicated(live)
        assert under == sorted(under)


class TestShardGrowth:
    def test_shard_count_doubles_and_rehashes(self):
        bm = ShardedBlockMap(topo(), num_shards=2, max_blocks_per_shard=8)
        assert bm.num_shards == 2
        _populate(bm, num_blocks=100, seed=6)
        assert bm.num_shards > 2
        # Every record survived the rehashes, in order.
        assert list(bm.block_ids()) == list(range(100))
        assert sum(bm.shard_sizes()) == 100

    def test_growth_preserves_locations(self):
        bm = ShardedBlockMap(topo(), num_shards=1, max_blocks_per_shard=4)
        flat = BlockMap(topo())
        _populate(bm, num_blocks=64, seed=7)
        _populate(flat, num_blocks=64, seed=7)
        assert bm.num_shards > 1
        for block_id in range(64):
            assert bm.locations(block_id) == flat.locations(block_id)

    def test_no_single_dict_holds_everything(self):
        bm = ShardedBlockMap(topo(), num_shards=4)
        _populate(bm, num_blocks=80, seed=8)
        assert max(bm.shard_sizes()) < bm.num_blocks


class TestNamenodeParity:
    """A namenode on a sharded map behaves exactly like one on a flat map."""

    def _run_cluster(self, blockmap_shards, seed=0):
        nn = Namenode(
            topo(num_racks=3, per_rack=4, capacity=80),
            placement_policy=DefaultHdfsPolicy(random.Random(seed)),
            rng=random.Random(seed),
            blockmap_shards=blockmap_shards,
        )
        for index in range(10):
            nn.create_file(f"/data/f{index}", num_blocks=3)
        nn.fail_node(2, re_replicate=True)
        nn.fail_node(7, re_replicate=True)
        return nn

    def _snapshot(self, nn):
        live = nn.live_nodes()
        return {
            "files": sorted(nn.list_files()),
            "blocks": list(nn.blockmap.block_ids()),
            "locations": {
                block_id: sorted(nn.blockmap.locations(block_id))
                for block_id in nn.blockmap.block_ids()
            },
            "under_replicated": nn.blockmap.under_replicated(live),
            "under_spread": nn.blockmap.under_spread(live),
        }

    @pytest.mark.parametrize("blockmap_shards", [1, 8])
    def test_fsck_and_recovery_parity_with_flat_map(self, blockmap_shards):
        flat_nn = self._run_cluster(blockmap_shards=None)
        sharded_nn = self._run_cluster(blockmap_shards=blockmap_shards)
        assert isinstance(sharded_nn.blockmap, ShardedBlockMap)
        assert type(flat_nn.blockmap) is BlockMap
        assert self._snapshot(flat_nn) == self._snapshot(sharded_nn)
        flat_report = run_fsck(flat_nn)
        sharded_report = run_fsck(sharded_nn)
        assert flat_report.healthy == sharded_report.healthy
        assert (
            flat_report.counts_by_check() == sharded_report.counts_by_check()
        )
        assert flat_report.blocks_checked == sharded_report.blocks_checked

    def test_invalid_shard_argument_rejected(self):
        with pytest.raises(DfsError):
            Namenode(topo(), blockmap_shards=0)
