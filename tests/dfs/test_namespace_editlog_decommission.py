"""Tests for the namespace tree, edit log recovery and decommissioning."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.editlog import EditLog, attach_edit_log, recover_namenode
from repro.dfs.namenode import Namenode
from repro.dfs.namespace import NamespaceTree, parent_of, split_path
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import (
    DfsError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
)


def make_namenode(num_racks=3, per_rack=4, capacity=60, seed=0):
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed),
    )


class TestPathHelpers:
    def test_split_path(self):
        assert split_path("/") == ()
        assert split_path("/a/b/c") == ("a", "b", "c")
        assert split_path("/a//b/") == ("a", "b")

    def test_split_path_rejects_relative_and_dots(self):
        with pytest.raises(DfsError):
            split_path("a/b")
        with pytest.raises(DfsError):
            split_path("/a/../b")
        with pytest.raises(DfsError):
            split_path("/a/./b")

    def test_parent_of(self):
        assert parent_of("/a/b/c") == "/a/b"
        assert parent_of("/a") == "/"
        assert parent_of("/") == "/"


class TestNamespaceTree:
    def test_mkdir_and_listing(self):
        tree = NamespaceTree()
        tree.mkdir("/a/b/c")
        assert tree.is_directory("/a")
        assert tree.is_directory("/a/b/c")
        assert tree.list_directory("/a") == ["b"]
        assert tree.num_directories == 3

    def test_mkdir_is_idempotent(self):
        tree = NamespaceTree()
        tree.mkdir("/a/b")
        tree.mkdir("/a/b")
        assert tree.num_directories == 2

    def test_add_file_creates_parents(self):
        tree = NamespaceTree()
        tree.add_file("/data/logs/app.log", file_id=7)
        assert tree.is_file("/data/logs/app.log")
        assert tree.file_id("/data/logs/app.log") == 7
        assert tree.num_files == 1
        assert tree.is_directory("/data/logs")

    def test_duplicate_paths_rejected(self):
        tree = NamespaceTree()
        tree.add_file("/a/f", file_id=1)
        with pytest.raises(FileExistsInDfsError):
            tree.add_file("/a/f", file_id=2)
        with pytest.raises(FileExistsInDfsError):
            tree.mkdir("/a/f")

    def test_file_lookup_errors(self):
        tree = NamespaceTree()
        with pytest.raises(FileNotFoundInDfsError):
            tree.file_id("/missing")
        with pytest.raises(FileNotFoundInDfsError):
            tree.list_directory("/missing")
        tree.mkdir("/d")
        with pytest.raises(FileNotFoundInDfsError):
            tree.file_id("/d")  # a directory is not a file

    def test_remove_file(self):
        tree = NamespaceTree()
        tree.add_file("/a/f", file_id=3)
        assert tree.remove_file("/a/f") == 3
        assert not tree.exists("/a/f")
        assert tree.is_directory("/a")
        with pytest.raises(FileNotFoundInDfsError):
            tree.remove_file("/a/f")

    def test_remove_directory_recursive(self):
        tree = NamespaceTree()
        tree.add_file("/a/b/f1", file_id=1)
        tree.add_file("/a/b/c/f2", file_id=2)
        tree.add_file("/a/g", file_id=3)
        removed = tree.remove_directory("/a/b")
        assert sorted(removed) == [1, 2]
        assert tree.num_files == 1
        assert not tree.exists("/a/b")
        assert tree.exists("/a/g")

    def test_remove_root_rejected(self):
        tree = NamespaceTree()
        with pytest.raises(DfsError):
            tree.remove_directory("/")

    def test_rename_file(self):
        tree = NamespaceTree()
        tree.add_file("/a/f", file_id=9)
        tree.rename("/a/f", "/b/c/g")
        assert not tree.exists("/a/f")
        assert tree.file_id("/b/c/g") == 9

    def test_rename_directory_moves_subtree(self):
        tree = NamespaceTree()
        tree.add_file("/a/b/f", file_id=1)
        tree.rename("/a", "/z")
        assert tree.file_id("/z/b/f") == 1
        assert not tree.exists("/a")

    def test_rename_rejects_conflicts_and_cycles(self):
        tree = NamespaceTree()
        tree.add_file("/a/f", file_id=1)
        tree.add_file("/b", file_id=2)
        with pytest.raises(FileExistsInDfsError):
            tree.rename("/a/f", "/b")
        with pytest.raises(DfsError):
            tree.rename("/a", "/a/sub")
        with pytest.raises(FileNotFoundInDfsError):
            tree.rename("/nope", "/x")

    def test_walk_files(self):
        tree = NamespaceTree()
        tree.add_file("/a/1", file_id=1)
        tree.add_file("/a/b/2", file_id=2)
        tree.add_file("/3", file_id=3)
        assert list(tree.walk_files("/")) == [
            ("/3", 3), ("/a/1", 1), ("/a/b/2", 2)
        ]
        assert list(tree.walk_files("/a/b")) == [("/a/b/2", 2)]


class TestNamenodeNamespace:
    def test_nested_files_and_listing(self):
        nn = make_namenode()
        nn.create_file("/data/warm/a", num_blocks=1)
        nn.create_file("/data/hot/b", num_blocks=1)
        nn.mkdir("/empty")
        assert nn.list_files() == ["/data/hot/b", "/data/warm/a"]
        assert nn.list_directory("/data") == ["hot", "warm"]
        nn.audit()

    def test_rename_updates_file_meta(self):
        nn = make_namenode()
        nn.create_file("/olddir/f", num_blocks=2)
        nn.rename("/olddir", "/newdir")
        meta = nn.file("/newdir/f")
        assert meta.path == "/newdir/f"
        assert nn.is_file_available("/newdir/f")
        with pytest.raises(FileNotFoundInDfsError):
            nn.file("/olddir/f")
        nn.audit()

    def test_delete_directory_frees_blocks(self):
        nn = make_namenode()
        nn.create_file("/proj/a", num_blocks=2)
        nn.create_file("/proj/sub/b", num_blocks=1)
        nn.create_file("/keep", num_blocks=1)
        removed = nn.delete_directory("/proj")
        assert removed == 2
        assert nn.list_files() == ["/keep"]
        assert sum(dn.used_blocks for dn in nn.datanodes) == 3
        nn.audit()


class TestEditLog:
    def test_round_trip_serialization(self, tmp_path):
        log = EditLog()
        log.append("mkdir", path="/a")
        log.append("create_file", path="/a/f", file_id=0, block_ids=[0],
                   block_size=64, replication=3, rack_spread=2)
        path = tmp_path / "edits.jsonl"
        log.dump(path)
        loaded = EditLog.load(path)
        assert loaded.entries == log.entries
        assert len(loaded) == 2

    def test_journals_all_operations(self):
        nn = make_namenode()
        log = attach_edit_log(nn)
        nn.mkdir("/d")
        meta = nn.create_file("/d/f", num_blocks=1)
        nn.set_replication(meta.block_ids[0], 4)
        nn.rename("/d/f", "/d/g")
        nn.delete_file("/d/g")
        ops = [entry["op"] for entry in log.entries]
        assert ops == ["mkdir", "create_file", "set_replication", "rename",
                       "delete_file"]

    def test_failed_operations_not_journaled(self):
        nn = make_namenode()
        log = attach_edit_log(nn)
        nn.create_file("/f", num_blocks=1)
        with pytest.raises(FileExistsInDfsError):
            nn.create_file("/f", num_blocks=1)
        assert [e["op"] for e in log.entries] == ["create_file"]

    def test_namenode_crash_recovery(self):
        nn = make_namenode(seed=4)
        log = attach_edit_log(nn)
        nn.create_file("/a/f1", num_blocks=2)
        meta2 = nn.create_file("/a/f2", num_blocks=1)
        nn.set_replication(meta2.block_ids[0], 5)
        nn.rename("/a/f1", "/b/f1")
        nn.create_file("/tmp/junk", num_blocks=1)
        nn.delete_file("/tmp/junk")

        # The namenode "crashes": rebuild from the journal + datanode
        # block reports.
        fresh = make_namenode(seed=99)
        recover_namenode(fresh, log, surviving_datanodes=nn.datanodes)
        assert fresh.list_files() == nn.list_files()
        for path in nn.list_files():
            old = nn.file(path)
            new = fresh.file(path)
            assert new.block_ids == old.block_ids
            for block_id in new.block_ids:
                assert (
                    fresh.blockmap.locations(block_id)
                    == nn.blockmap.locations(block_id)
                )
                assert (
                    fresh.blockmap.meta(block_id).replication_factor
                    == nn.blockmap.meta(block_id).replication_factor
                )
        fresh.audit()

    def test_recovery_with_lost_datanode_repairs(self):
        nn = make_namenode(seed=5)
        log = attach_edit_log(nn)
        meta = nn.create_file("/f", num_blocks=1)
        block = meta.block_ids[0]
        victim = next(iter(nn.blockmap.locations(block)))
        # The victim's disk dies with the namenode.
        survivors = [dn for dn in nn.datanodes if dn.node_id != victim]
        fresh = make_namenode(seed=6)
        recover_namenode(fresh, log, surviving_datanodes=survivors)
        fresh.datanodes[victim].wipe()
        assert fresh.blockmap.replica_count(block) == 2
        fresh.check_replication()
        assert fresh.blockmap.replica_count(block) == 3
        fresh.audit()


class TestDecommission:
    def test_drains_all_replicas(self):
        nn = make_namenode()
        for i in range(5):
            nn.create_file(f"/f{i}", num_blocks=2)
        victim = max(
            nn.topology.machines, key=lambda n: nn.blockmap.used_capacity(n)
        )
        assert nn.blockmap.blocks_on(victim)
        nn.decommission_node(victim)
        assert nn.is_decommissioned(victim)
        assert not nn.blockmap.blocks_on(victim)
        # No replication was lost and spreads hold.
        for i in range(5):
            meta = nn.file(f"/f{i}")
            for block in meta.block_ids:
                assert nn.blockmap.replica_count(block) == 3
                assert nn.blockmap.rack_spread(block) >= 2
        nn.audit()

    def test_decommissioning_node_rejects_new_replicas(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=1)
        nn.decommission_node(0)
        assert not nn.can_store(0, 999)
        meta = nn.create_file("/b", num_blocks=3)
        for block in meta.block_ids:
            assert 0 not in nn.blockmap.locations(block)

    def test_recommission(self):
        nn = make_namenode()
        nn.decommission_node(0)
        nn.recommission_node(0)
        meta = nn.create_file("/a", num_blocks=1, writer=0)
        assert 0 in nn.blockmap.locations(meta.block_ids[0])

    def test_lazy_replicas_evicted_not_moved(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        nn.set_replication(block, 5)
        nn.set_replication(block, 3)
        lazy_nodes = {n for b, n in nn.lazy_replicas() if b == block}
        victim = next(iter(lazy_nodes))
        nn.decommission_node(victim)
        assert nn.lazy_evictions >= 1
        assert not nn.blockmap.blocks_on(victim)
        nn.audit()
