"""The data-integrity plane: checksums, quarantine, verified reads and
the background scrubber.

Covers the end-to-end contract: a silently corrupted replica is never
served to a client, always lands in quarantine via exactly one of the
three detectors (client read, scrubber pass, deep fsck), gets repaired
from a verified source, and is purged only once the block is back to
full verified replication — with the last remaining copy never deleted,
corrupt or not.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.datanode import Datanode
from repro.dfs.fsck import run_fsck
from repro.dfs.integrity import (
    BlockScrubber,
    CorruptionLedger,
    ReplicaIntegrity,
    ScrubConfig,
    replica_checksum,
)
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import ChecksumError, DatanodeUnavailableError, DfsError
from repro.faults import RetryPolicy
from repro.simulation.engine import Simulation

pytestmark = pytest.mark.integrity

BLOCK_SIZE = 8 * 1024 * 1024


def build(seed=0, racks=3, per_rack=3, capacity=60, sim=None,
          replication=3, rack_spread=2):
    topology = ClusterTopology.uniform(racks, per_rack, capacity)
    transfers = TransferService(topology, sim=sim, rng=random.Random(seed))
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(seed + 1)),
        sim=sim,
        transfer_service=transfers,
        default_replication=replication,
        default_rack_spread=rack_spread,
        rng=random.Random(seed + 2),
    )
    return namenode, DfsClient(namenode)


class TestReplicaChecksum:
    def test_deterministic(self):
        assert replica_checksum(7) == replica_checksum(7)
        assert replica_checksum(7, 3) == replica_checksum(7, 3)

    def test_sensitive_to_block_and_generation(self):
        assert replica_checksum(1) != replica_checksum(2)
        assert replica_checksum(1, 0) != replica_checksum(1, 1)

    def test_64_bit_range(self):
        for block in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= replica_checksum(block) < 2**64


class TestDatanodeIntegrity:
    def test_store_seeds_matching_checksum(self):
        dn = Datanode(0, 10)
        dn.store(5)
        assert dn.verify_replica(5)
        rec = dn.integrity(5)
        assert rec == ReplicaIntegrity(
            generation=0, checksum=replica_checksum(5)
        )

    def test_store_with_damaged_checksum(self):
        dn = Datanode(0, 10)
        dn.store(5, checksum=12345)
        assert not dn.verify_replica(5)

    def test_corrupt_replica_fails_verification(self):
        dn = Datanode(0, 10)
        dn.store(5)
        dn.corrupt_replica(5, at=17.0)
        assert not dn.verify_replica(5)
        assert dn.integrity(5).corrupted_at == 17.0
        assert dn.integrity(5).corruption == "bit-rot"

    def test_double_corruption_stays_corrupt(self):
        # Two strikes must not XOR the damage away.
        dn = Datanode(0, 10)
        dn.store(5)
        dn.corrupt_replica(5, at=1.0)
        dn.corrupt_replica(5, at=9.0)
        assert not dn.verify_replica(5)
        assert dn.integrity(5).corrupted_at == 1.0  # first hit wins

    def test_torn_write_advances_generation_only(self):
        dn = Datanode(0, 10)
        dn.store(5)
        dn.torn_write(5, at=3.0)
        rec = dn.integrity(5)
        assert rec.generation == 1
        assert rec.checksum == replica_checksum(5, 0)
        assert not dn.verify_replica(5)
        assert rec.corruption == "torn-write"

    def test_unknown_corruption_kind_rejected(self):
        dn = Datanode(0, 10)
        dn.store(5)
        with pytest.raises(DfsError):
            dn.corrupt_replica(5, kind="cosmic-ray")

    def test_corruption_works_on_dead_node(self):
        # Disk rot does not care whether the node is serving.
        dn = Datanode(0, 10)
        dn.store(5)
        dn.crash()
        dn.corrupt_replica(5)
        assert not dn.verify_replica(5)

    def test_verified_read_raises_on_corrupt_replica(self):
        dn = Datanode(0, 10)
        dn.store(5)
        dn.corrupt_replica(5)
        with pytest.raises(ChecksumError):
            dn.read(5, verify=True)
        dn.read(5)  # the unverified path still serves (and lies)

    def test_erase_drops_integrity_record(self):
        dn = Datanode(0, 10)
        dn.store(5)
        dn.erase(5)
        with pytest.raises(DfsError):
            dn.integrity(5)

    def test_erase_while_dead_raises(self):
        # Regression: erase used to succeed on a dead node even though
        # read and store both refuse — a deletion the hardware could
        # never have performed.
        dn = Datanode(0, 10)
        dn.store(5)
        dn.crash()
        with pytest.raises(DfsError):
            dn.erase(5)
        dn.recover()
        assert dn.holds(5)

    def test_integrity_of_unknown_block_raises(self):
        dn = Datanode(0, 10)
        with pytest.raises(DfsError):
            dn.integrity(99)


class TestLivenessChangeCallback:
    """``on_liveness_change`` fires exactly when ``alive`` flips."""

    def setup_method(self):
        self.dn = Datanode(0, 10)
        self.flips = []
        self.dn.on_liveness_change = lambda: self.flips.append(self.dn.alive)

    def test_crash_then_recover_fires_twice(self):
        self.dn.crash()
        self.dn.recover()
        assert self.flips == [False, True]

    def test_double_crash_fires_once(self):
        self.dn.crash()
        self.dn.crash()
        assert self.flips == [False]

    def test_recover_while_alive_is_a_no_op(self):
        self.dn.slowdown = 3.0
        self.dn.recover()
        assert self.flips == []
        assert self.dn.slowdown == 1.0  # gray state still clears

    def test_wipe_never_touches_liveness(self):
        self.dn.store(5)
        self.dn.crash()
        self.dn.wipe()
        assert self.flips == [False]
        assert not self.dn.alive
        self.dn.recover()
        assert self.flips == [False, True]
        assert not self.dn.holds(5)


class TestCorruptionLedger:
    def test_quarantine_membership(self):
        ledger = CorruptionLedger()
        assert ledger.quarantine(1, 2)
        assert not ledger.quarantine(1, 2)  # already there
        assert ledger.is_quarantined(1, 2)
        assert ledger.nodes_for(1) == {2}
        assert ledger.open_blocks() == {1}
        ledger.release(1, 2)
        assert ledger.quarantined_count == 0

    def test_clear_block_drops_all_state(self):
        ledger = CorruptionLedger()
        ledger.quarantine(1, 2)
        ledger.quarantine(1, 3)
        ledger.note_detection(1, "scrub", now=10.0, corrupted_at=4.0)
        ledger.clear_block(1)
        assert ledger.quarantined_count == 0
        assert not ledger.has_open_episode(1)

    def test_episode_latency_accounting(self):
        ledger = CorruptionLedger()
        ledger.note_detection(1, "scrub", now=10.0, corrupted_at=4.0)
        # A second detection on the same block keeps the episode open
        # and its original start time.
        ledger.note_detection(1, "client", now=12.0, corrupted_at=11.0)
        assert ledger.detections == {"scrub": 1, "client": 1}
        assert ledger.detection_latencies == {"scrub": [6.0], "client": [1.0]}
        assert ledger.note_repaired(1, now=25.0) == 15.0
        assert ledger.note_repaired(1, now=30.0) is None  # already closed


class TestNamenodeQuarantine:
    def corrupt_one(self, namenode, client, path="/a"):
        meta = client.write_file(path, 1, block_size=BLOCK_SIZE)
        block = meta.block_ids[0]
        victim = sorted(namenode.blockmap.locations(block))[0]
        namenode.datanode(victim).corrupt_replica(block)
        return block, victim

    def test_report_quarantines_and_repairs(self):
        namenode, client = build()
        block, victim = self.corrupt_one(namenode, client)
        assert namenode.report_corrupt_replica(block, victim)
        # Repair ran synchronously: back to 3 verified replicas, the
        # corrupt copy purged from both disk and quarantine.
        assert len(namenode.verified_locations(block)) == 3
        assert victim not in namenode.blockmap.locations(block)
        assert not namenode.datanode(victim).holds(block)
        assert namenode.integrity.quarantined_count == 0
        assert namenode.integrity.replicas_purged == 1
        assert namenode.integrity.repair_times
        namenode.audit()

    def test_duplicate_report_is_ignored(self):
        namenode, client = build(sim=Simulation())  # async: repair pends
        block, victim = self.corrupt_one(namenode, client)
        assert namenode.report_corrupt_replica(block, victim)
        assert not namenode.report_corrupt_replica(block, victim)
        assert namenode.integrity.detections == {"client": 1}

    def test_report_unknown_block_or_nonholder_rejected(self):
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE)
        block = meta.block_ids[0]
        outsider = next(
            dn.node_id for dn in namenode.datanodes
            if dn.node_id not in namenode.blockmap.locations(block)
        )
        assert not namenode.report_corrupt_replica(9999, 0)
        assert not namenode.report_corrupt_replica(block, outsider)

    def test_quarantined_replica_leaves_readable_set(self):
        sim = Simulation()  # async transfers: quarantine observable
        namenode, client = build(sim=sim)
        block, victim = self.corrupt_one(namenode, client)
        namenode.report_corrupt_replica(block, victim)
        assert victim in namenode.blockmap.locations(block)  # still on disk
        assert victim not in namenode.verified_locations(block)
        for reader in range(namenode.topology.num_machines):
            assert namenode.choose_read_replica(block, reader) != victim
            assert victim not in namenode.replica_preference(block, reader)

    def test_repair_copies_from_verified_source_only(self):
        sim = Simulation()
        namenode, client = build(sim=sim)
        block, victim = self.corrupt_one(namenode, client)
        seen = []
        original = namenode.transfers.fault_hook
        namenode.transfers.fault_hook = (
            lambda size, src, dst: seen.append((src, dst)) or original
        )
        namenode.report_corrupt_replica(block, victim)
        sim.run()
        assert seen, "repair never started a transfer"
        assert all(src != victim for src, dst in seen)
        assert len(namenode.verified_locations(block)) == 3

    def test_last_replica_never_deleted_even_if_corrupt(self):
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE)
        block = meta.block_ids[0]
        holders = sorted(namenode.blockmap.locations(block))
        # Corrupt every replica *before* any report, so repair never
        # has a verified source: nothing may be deleted.
        for node in holders:
            namenode.datanode(node).corrupt_replica(block)
        for node in holders:
            namenode.report_corrupt_replica(block, node)
        assert sorted(namenode.blockmap.locations(block)) == holders
        assert namenode.verified_locations(block) == []
        with pytest.raises(ChecksumError):
            namenode.choose_read_replica(block, reader=0)
        report = run_fsck(namenode)
        assert "corrupt-last-replica" in report.counts_by_check()
        namenode.audit()

    def test_quarantine_survives_crash_and_recovery(self):
        sim = Simulation()
        namenode, client = build(sim=sim)
        block, victim = self.corrupt_one(namenode, client)
        namenode.report_corrupt_replica(block, victim)
        namenode.datanode(victim).crash()
        namenode.datanode(victim).recover()
        # Recovery must not silently restore the rotten copy to the
        # readable set.
        assert victim not in namenode.verified_locations(block)
        sim.run()
        namenode.check_replication()
        assert victim not in namenode.blockmap.locations(block)
        assert namenode.integrity.quarantined_count == 0

    def test_wipe_node_retracts_locations_and_ledger(self):
        namenode, client = build()
        block, victim = self.corrupt_one(namenode, client)
        namenode.report_corrupt_replica(block, victim)
        lost = namenode.wipe_node(victim)
        assert lost >= 0
        assert victim not in namenode.blockmap.locations(block)
        assert not namenode.integrity.is_quarantined(block, victim)
        assert namenode.datanode(victim).alive
        namenode.audit()

    def test_delete_file_clears_quarantine(self):
        sim = Simulation()
        namenode, client = build(sim=sim)
        block, victim = self.corrupt_one(namenode, client)
        namenode.report_corrupt_replica(block, victim)
        namenode.delete_file("/a")
        assert namenode.integrity.quarantined_count == 0
        namenode.audit()


class TestClientVerifiedReads:
    def test_corrupt_first_choice_fails_over(self):
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        first = namenode.replica_preference(block, 0)[0]
        namenode.datanode(first).corrupt_replica(block)

        outcome = client.read_block(block, reader=0)
        assert outcome.failed_over
        assert outcome.source != first
        assert client.checksum_failures == 1
        assert outcome.backoff == 0.0  # data fault, not slowness
        # The detection was reported: the replica is quarantined (and,
        # synchronously, already repaired and purged).
        assert namenode.integrity.detections == {"client": 1}
        assert first not in namenode.blockmap.locations(block)

    def test_all_corrupt_raises_checksum_error(self):
        namenode, client = build(
            # Enough attempts to walk all three replicas.
        )
        client.retry_policy = RetryPolicy(max_attempts=5, base_delay=0.0,
                                          jitter=0.0)
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        for node in namenode.blockmap.locations(block):
            namenode.datanode(node).corrupt_replica(block)
        with pytest.raises(ChecksumError):
            client.read_block(block, reader=0)
        # ChecksumError is an availability error to callers, so chaos
        # accounting that catches DatanodeUnavailableError still works.
        assert issubclass(ChecksumError, DatanodeUnavailableError)

    def test_corrupt_data_never_surfaces(self):
        # Whatever mix of corrupt/healthy replicas, a successful read
        # always comes from a replica that verifies.
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE, writer=0)
        block = meta.block_ids[0]
        holders = sorted(namenode.blockmap.locations(block))
        for node in holders[:2]:
            namenode.datanode(node).corrupt_replica(block)
        outcome = client.read_block(block, reader=0)
        assert namenode.datanode(outcome.source).verify_replica(block)


def make_scrub_world(seed=0, files=3, blocks_per_file=2):
    sim = Simulation()
    namenode, client = build(seed=seed, sim=sim)
    blocks = []
    for index in range(files):
        meta = client.write_file(
            f"/f{index}", blocks_per_file, block_size=BLOCK_SIZE
        )
        blocks.extend(meta.block_ids)
    return sim, namenode, client, blocks


class TestBlockScrubber:
    def test_detects_and_reports_corruption(self):
        sim, namenode, client, blocks = make_scrub_world()
        victim = sorted(namenode.blockmap.locations(blocks[0]))[0]
        namenode.datanode(victim).corrupt_replica(blocks[0], at=0.0)
        scrubber = BlockScrubber(sim, namenode)
        scrubber.start()
        sim.run(until=120.0)
        assert scrubber.corrupt_found == 1
        assert namenode.integrity.detections == {"scrub": 1}
        assert victim not in namenode.blockmap.locations(blocks[0])
        assert len(namenode.verified_locations(blocks[0])) == 3

    def test_full_pass_counter_and_cadence(self):
        sim, namenode, client, blocks = make_scrub_world()
        scrubber = BlockScrubber(
            sim, namenode, ScrubConfig(interval=10.0, bytes_per_second=1e12)
        )
        scrubber.start()
        sim.run(until=101.0)
        assert scrubber.full_scans >= 5
        assert scrubber.replicas_scanned >= len(blocks) * 3
        assert scrubber.last_scan_duration is not None

    def test_byte_budget_limits_each_tick(self):
        sim, namenode, client, blocks = make_scrub_world()
        # Budget of one block per tick: 18 replicas need 18+ ticks.
        scrubber = BlockScrubber(
            sim, namenode,
            ScrubConfig(interval=1.0, bytes_per_second=BLOCK_SIZE),
        )
        scrubber.start()
        sim.run(until=10.5)
        assert scrubber.full_scans == 0
        assert scrubber.replicas_scanned <= 11
        sim.run(until=25.5)
        assert scrubber.full_scans >= 1

    def test_replica_cap_limits_each_tick(self):
        sim, namenode, client, blocks = make_scrub_world()
        scrubber = BlockScrubber(
            sim, namenode,
            ScrubConfig(interval=1.0, bytes_per_second=1e12,
                        max_replicas_per_tick=2),
        )
        scrubber.start()
        sim.run(until=5.5)
        assert scrubber.replicas_scanned == 10

    def test_admission_defers_ticks(self):
        from repro.overload.admission import AdmissionController

        sim, namenode, client, blocks = make_scrub_world()
        namenode.admission = AdmissionController(
            scrub_rate=0.001, burst=1.0,
        )
        scrubber = BlockScrubber(
            sim, namenode, ScrubConfig(interval=1.0, bytes_per_second=1e12)
        )
        scrubber.start()
        sim.run(until=10.5)
        # First tick spends the burst token; the trickle refill admits
        # nothing afterwards.
        assert scrubber.ticks_deferred >= 9
        assert scrubber.full_scans <= 1

    def test_dead_nodes_are_skipped_not_fatal(self):
        sim, namenode, client, blocks = make_scrub_world()
        namenode.datanode(0).crash()
        scrubber = BlockScrubber(sim, namenode)
        scrubber.start()
        sim.run(until=61.0)
        assert scrubber.full_scans >= 1

    def test_deleted_block_remnants_not_reported(self):
        sim, namenode, client, blocks = make_scrub_world()
        # Lazy deletion leaves replicas on disk; rot on those remnants
        # is not worth a quarantine entry.
        victim = sorted(namenode.blockmap.locations(blocks[0]))[0]
        namenode.delete_file("/f0")
        dn = namenode.datanode(victim)
        if dn.holds(blocks[0]):
            dn.corrupt_replica(blocks[0])
        scrubber = BlockScrubber(sim, namenode)
        scrubber.start()
        sim.run(until=61.0)
        assert scrubber.corrupt_found == 0
        assert namenode.integrity.quarantined_count == 0

    def test_double_start_rejected(self):
        sim, namenode, client, blocks = make_scrub_world()
        scrubber = BlockScrubber(sim, namenode)
        scrubber.start()
        with pytest.raises(DfsError):
            scrubber.start()
        scrubber.stop()
        scrubber.stop()  # idempotent


class TestFsckChecksums:
    def test_deep_fsck_finds_undetected_rot(self):
        namenode, client = build()
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE)
        block = meta.block_ids[0]
        victim = sorted(namenode.blockmap.locations(block))[0]
        namenode.datanode(victim).corrupt_replica(block)
        assert run_fsck(namenode).healthy  # shallow pass cannot see it
        report = run_fsck(namenode, verify_checksums=True)
        assert report.counts_by_check() == {"undetected-corruption": 1}

    def test_quarantined_rot_not_double_reported(self):
        sim = Simulation()
        namenode, client = build(sim=sim)
        meta = client.write_file("/a", 1, block_size=BLOCK_SIZE)
        block = meta.block_ids[0]
        victim = sorted(namenode.blockmap.locations(block))[0]
        namenode.datanode(victim).corrupt_replica(block)
        namenode.report_corrupt_replica(block, victim)
        report = run_fsck(namenode, verify_checksums=True)
        assert "undetected-corruption" not in report.counts_by_check()


# Per-block corruption patterns: how many replicas to rot (never all
# three) and which mutator to use.
corruption_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), st.booleans()),
    min_size=1, max_size=8,
)


class TestScrubConvergenceProperty:
    @settings(deadline=None, max_examples=30)
    @given(plan=corruption_plans, seed=st.integers(0, 7))
    def test_scrub_and_repair_converge(self, plan, seed):
        """Whenever >= 1 verified replica survives per block, scrubbing
        plus re-replication always converges to zero corrupt replicas
        and full verified replication."""
        namenode, client = build(seed=seed)  # synchronous transfers
        blocks = []
        for index in range(len(plan)):
            meta = client.write_file(f"/p{index}", 1, block_size=BLOCK_SIZE)
            blocks.append(meta.block_ids[0])
        for block, (rot_count, torn) in zip(blocks, plan):
            holders = sorted(namenode.blockmap.locations(block))
            for node in holders[:rot_count]:
                if torn:
                    namenode.datanode(node).torn_write(block)
                else:
                    namenode.datanode(node).corrupt_replica(block)

        scrubber = BlockScrubber(
            Simulation(), namenode,
            ScrubConfig(interval=1.0, bytes_per_second=1e15),
        )
        for _ in range(4):  # cursor wraps well within a few huge ticks
            scrubber.tick()
        # Run the periodic check to quiescence, as the heartbeat service
        # does: purging corrupt replicas can re-open a rack-spread
        # deficit whose repair lands on the following pass.
        for _ in range(6):
            if not namenode.check_replication():
                break

        assert namenode.integrity.quarantined_count == 0
        for block in blocks:
            # At least full replication: the pre-existing under-spread
            # repair may transiently over-replicate before trimming.
            assert len(namenode.verified_locations(block)) >= 3
            assert not namenode.integrity.has_open_episode(block)
        namenode.audit()
        assert run_fsck(namenode, verify_checksums=True).healthy
