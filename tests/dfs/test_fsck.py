"""Tests for the fsck invariant checker."""

import json
import random

from repro.cluster.topology import ClusterTopology
from repro.dfs.fsck import FsckViolation, render_fsck, run_fsck
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy


def make_namenode(seed=0):
    topo = ClusterTopology.uniform(2, 4, capacity=60)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed),
    )


class TestHealthyCluster:
    def test_fresh_cluster_is_healthy(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=3)
        report = run_fsck(nn)
        assert report.healthy
        assert report.blocks_checked == 3
        assert report.files_checked == 1
        assert report.nodes_checked == 8
        assert report.live_nodes == 8
        assert "HEALTHY" in render_fsck(report)

    def test_report_round_trips_through_json(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=1)
        payload = json.loads(json.dumps(run_fsck(nn).to_dict()))
        assert payload["healthy"] is True
        assert payload["violation_counts"] == {}


class TestViolations:
    def test_dead_location(self):
        nn = make_namenode()
        block = nn.create_file("/a", num_blocks=1).block_ids[0]
        victim = next(iter(nn.blockmap.locations(block)))
        # Crash the disk behind the namenode's back: the block map
        # still lists the node, which is exactly the drift fsck flags.
        nn.datanode(victim).crash()
        report = run_fsck(nn, check_replication_targets=False)
        assert report.counts_by_check() == {"dead-location": 1}
        violation = report.violations[0]
        assert violation.block_id == block
        assert violation.node == victim

    def test_phantom_location(self):
        nn = make_namenode()
        block = nn.create_file("/a", num_blocks=1).block_ids[0]
        holders = nn.blockmap.locations(block)
        impostor = next(
            dn.node_id for dn in nn.datanodes if dn.node_id not in holders
        )
        nn.blockmap.add_location(block, impostor)
        report = run_fsck(nn, check_replication_targets=False)
        assert report.counts_by_check() == {"phantom-location": 1}
        assert report.violations[0].node == impostor

    def test_under_replicated_and_under_spread(self):
        nn = make_namenode()
        block = nn.create_file("/a", num_blocks=1).block_ids[0]
        for node in list(nn.blockmap.locations(block))[1:]:
            nn.blockmap.remove_location(block, node)
            nn.datanode(node).erase(block)
        counts = run_fsck(nn).counts_by_check()
        assert counts["under-replicated"] == 1
        # One replica left spans one rack; spread target clamps to the
        # replica count, so spread is NOT separately violated here.
        assert "under-spread" not in counts

    def test_under_spread_with_enough_replicas(self):
        nn = make_namenode()
        block = nn.create_file("/a", num_blocks=1).block_ids[0]
        # Rebuild the replica set entirely inside rack 0.
        for node in list(nn.blockmap.locations(block)):
            nn.blockmap.remove_location(block, node)
            nn.datanode(node).erase(block)
        size = nn.blockmap.meta(block).size
        rack0 = [
            dn.node_id for dn in nn.datanodes
            if nn.topology.rack_of[dn.node_id] == 0
        ][:3]
        for node in rack0:
            nn.datanode(node).store(block, size)
            nn.blockmap.add_location(block, node)
        counts = run_fsck(nn).counts_by_check()
        assert counts == {"under-spread": 1}

    def test_unreported_replica(self):
        nn = make_namenode()
        block = nn.create_file("/a", num_blocks=1).block_ids[0]
        holder = next(iter(nn.blockmap.locations(block)))
        nn.blockmap.remove_location(block, holder)
        report = run_fsck(nn, check_replication_targets=False)
        assert report.counts_by_check() == {"unreported-replica": 1}
        assert report.violations[0].node == holder

    def test_lazily_deleted_replicas_are_tolerated(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=1)
        holders = {
            dn.node_id: dn.blocks() for dn in nn.datanodes if dn.blocks()
        }
        nn.delete_file("/a")
        # Put the replica bytes back on disk without block-map entries:
        # exactly what lazy deletion leaves behind.
        for node, blocks in holders.items():
            for block in blocks:
                if not nn.datanode(node).holds(block):
                    nn.datanode(node).store(block)
        assert run_fsck(nn).healthy

    def test_missing_block_and_orphaned_block(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=2)
        doomed = meta.block_ids[0]
        for node in list(nn.blockmap.locations(doomed)):
            nn.datanode(node).erase(block_id=doomed)
        nn.blockmap.unregister(doomed)
        report = run_fsck(nn, check_replication_targets=False)
        assert report.counts_by_check() == {"missing-block": 1}

    def test_over_capacity(self):
        nn = make_namenode()
        dn = nn.datanode(0)
        for k in range(dn.capacity_blocks + 1):
            dn._blocks.add(10_000 + k)  # bypass the store() guard
        report = run_fsck(nn, check_replication_targets=False)
        assert "over-capacity" in report.counts_by_check()

    def test_render_lists_violations(self):
        nn = make_namenode()
        block = nn.create_file("/a", num_blocks=1).block_ids[0]
        nn.datanode(next(iter(nn.blockmap.locations(block)))).crash()
        text = render_fsck(run_fsck(nn, check_replication_targets=False))
        assert "violation" in text
        assert "dead-location" in text

    def test_violation_to_dict(self):
        v = FsckViolation(check="x", detail="d", block_id=1, node=2)
        assert v.to_dict() == {
            "check": "x", "detail": "d", "block_id": 1, "node": 2,
        }
