"""Model-based property tests: namespace and block map vs naive models.

Hypothesis drives random operation sequences against both the real data
structure and a trivially correct reference model (flat dicts); every
divergence is a bug.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import BlockMeta
from repro.dfs.blockmap import BlockMap
from repro.dfs.namespace import NamespaceTree, parent_of
from repro.errors import ReproError


# --- namespace vs dict-of-paths model -------------------------------------

_SEGMENTS = ("a", "b", "c", "data", "x")


def _random_path(rng: random.Random, depth_max: int = 3) -> str:
    depth = rng.randint(1, depth_max)
    return "/" + "/".join(rng.choice(_SEGMENTS) for _ in range(depth))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), steps=st.integers(5, 60))
def test_namespace_matches_dict_model(seed, steps):
    rng = random.Random(seed)
    tree = NamespaceTree()
    model = {}  # path -> file_id
    next_id = 0

    for _ in range(steps):
        op = rng.choice(["add", "add", "remove", "rename", "mkdir"])
        path = _random_path(rng)
        try:
            if op == "add":
                tree.add_file(path, next_id)
                model[path] = next_id
                next_id += 1
            elif op == "remove":
                if model:
                    victim = rng.choice(sorted(model))
                    assert tree.remove_file(victim) == model.pop(victim)
            elif op == "rename":
                if model:
                    source = rng.choice(sorted(model))
                    dest = _random_path(rng) + f"/r{next_id}"
                    tree.rename(source, dest)
                    model[dest] = model.pop(source)
            elif op == "mkdir":
                tree.mkdir(path)
        except ReproError:
            # Collisions with directories/files are legitimate failures;
            # they must leave both structures unchanged, which the final
            # comparison verifies.
            continue

    assert dict(tree.walk_files("/")) == model
    assert tree.num_files == len(model)
    for path, file_id in model.items():
        assert tree.file_id(path) == file_id
        assert tree.exists(parent_of(path))


# --- block map vs dict-of-sets model -----------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), steps=st.integers(10, 80))
def test_blockmap_matches_set_model(seed, steps):
    rng = random.Random(seed)
    topo = ClusterTopology.uniform(2, 4, capacity=100)
    blockmap = BlockMap(topo)
    model = {}  # block_id -> set of nodes
    next_block = 0

    for _ in range(steps):
        op = rng.choice(
            ["register", "add", "add", "remove", "unregister"]
        )
        try:
            if op == "register":
                blockmap.register(BlockMeta(block_id=next_block, file_id=0))
                model[next_block] = set()
                next_block += 1
            elif op == "add" and model:
                block = rng.choice(sorted(model))
                node = rng.randrange(topo.num_machines)
                blockmap.add_location(block, node)
                model[block].add(node)
            elif op == "remove" and model:
                block = rng.choice(sorted(model))
                if model[block]:
                    node = rng.choice(sorted(model[block]))
                    blockmap.remove_location(block, node)
                    model[block].discard(node)
            elif op == "unregister" and model:
                block = rng.choice(sorted(model))
                blockmap.unregister(block)
                del model[block]
        except ReproError:
            continue

    assert blockmap.num_blocks == len(model)
    rack_of = topo.rack_of
    for block, nodes in model.items():
        assert blockmap.locations(block) == frozenset(nodes)
        assert blockmap.replica_count(block) == len(nodes)
        assert blockmap.rack_spread(block) == len(
            {rack_of[n] for n in nodes}
        )
    # Reverse index agrees.
    for node in topo.machines:
        expected = {b for b, nodes in model.items() if node in nodes}
        assert blockmap.blocks_on(node) == frozenset(expected)
        assert blockmap.used_capacity(node) == len(expected)
    # Health queries agree with a brute-force recomputation.
    live = {n for n in topo.machines if rng.random() < 0.7}
    under = {
        b for b, nodes in model.items()
        if len(nodes & live) < blockmap.meta(b).replication_factor
    }
    assert set(blockmap.under_replicated(live)) == under
