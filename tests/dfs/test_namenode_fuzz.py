"""Fuzz test: random namenode operation sequences keep state consistent.

Applies long random sequences of namespace, replication, migration and
failure operations, auditing every invariant after each batch.  This is
the strongest consistency check in the suite — any bookkeeping drift
between the block map, the datanode disks, the lazy set and the
namespace shows up here.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import ReproError


class _Fuzzer:
    """Drives one random operation sequence against a namenode."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        topo = ClusterTopology.uniform(3, 4, capacity=30)
        self.namenode = Namenode(
            topo,
            placement_policy=DefaultHdfsPolicy(random.Random(seed + 1)),
            rng=random.Random(seed + 2),
        )
        self.counter = 0

    def step(self) -> None:
        ops = [
            self.op_create, self.op_create, self.op_delete, self.op_read,
            self.op_read, self.op_set_replication, self.op_move,
            self.op_fail, self.op_recover, self.op_mkdir, self.op_rename,
        ]
        op = self.rng.choice(ops)
        try:
            op()
        except ReproError:
            # Individual operations may legitimately be infeasible
            # (cluster full, path missing); state must stay consistent.
            pass

    # -- operations ---------------------------------------------------------

    def paths(self):
        return self.namenode.list_files()

    def op_create(self):
        self.counter += 1
        self.namenode.create_file(
            f"/dir{self.counter % 3}/f{self.counter}",
            num_blocks=self.rng.randint(1, 3),
            replication=self.rng.randint(2, 4),
            rack_spread=self.rng.randint(1, 2),
        )

    def op_delete(self):
        paths = self.paths()
        if paths:
            self.namenode.delete_file(self.rng.choice(paths))

    def op_read(self):
        paths = self.paths()
        if not paths:
            return
        meta = self.namenode.file(self.rng.choice(paths))
        block = self.rng.choice(meta.block_ids)
        reader = self.rng.randrange(self.namenode.topology.num_machines)
        self.namenode.record_access(block, reader)

    def op_set_replication(self):
        paths = self.paths()
        if not paths:
            return
        meta = self.namenode.file(self.rng.choice(paths))
        block = self.rng.choice(meta.block_ids)
        self.namenode.set_replication(block, self.rng.randint(1, 6))

    def op_move(self):
        paths = self.paths()
        if not paths:
            return
        meta = self.namenode.file(self.rng.choice(paths))
        block = self.rng.choice(meta.block_ids)
        locations = sorted(self.namenode.blockmap.locations(block))
        if not locations:
            return
        src = self.rng.choice(locations)
        dst = self.rng.randrange(self.namenode.topology.num_machines)
        if dst not in locations:
            self.namenode.move_block(block, src, dst)

    def op_fail(self):
        node = self.rng.randrange(self.namenode.topology.num_machines)
        if len(self.namenode.live_nodes()) > 6:
            self.namenode.fail_node(node)

    def op_recover(self):
        dead = [
            dn.node_id for dn in self.namenode.datanodes if not dn.alive
        ]
        if dead:
            self.namenode.recover_node(self.rng.choice(dead))

    def op_mkdir(self):
        self.namenode.mkdir(f"/dir{self.rng.randint(0, 4)}/sub")

    def op_rename(self):
        paths = self.paths()
        if paths:
            self.counter += 1
            self.namenode.rename(
                self.rng.choice(paths), f"/renamed/r{self.counter}"
            )


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_operations_keep_invariants(seed):
    fuzzer = _Fuzzer(seed)
    for batch in range(8):
        for _ in range(12):
            fuzzer.step()
        fuzzer.namenode.audit()
    # Final deep check: every surviving file is fully described.
    nn = fuzzer.namenode
    for path in nn.list_files():
        meta = nn.file(path)
        assert meta.path == path
        for block in meta.block_ids:
            assert block in nn.blockmap


def test_long_single_seed_run():
    fuzzer = _Fuzzer(seed=12345)
    for _ in range(400):
        fuzzer.step()
    fuzzer.namenode.audit()


def test_fuzz_with_all_nodes_recovered_is_repairable():
    fuzzer = _Fuzzer(seed=777)
    for _ in range(200):
        fuzzer.step()
    nn = fuzzer.namenode
    for dn in nn.datanodes:
        if not dn.alive:
            nn.recover_node(dn.node_id)
    nn.check_replication()
    nn.audit()
    live = nn.live_nodes()
    for path in nn.list_files():
        for block in nn.file(path).block_ids:
            assert nn.blockmap.is_available(block, live)
