"""Tests for directory quotas."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.quota import DirectoryQuota, QuotaManager
from repro.errors import FileNotFoundInDfsError, QuotaExceededError


def make(seed=0):
    topo = ClusterTopology.uniform(3, 4, capacity=100)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed),
    )
    return nn, QuotaManager(nn)


class TestQuotaAdministration:
    def test_quota_requires_existing_directory(self):
        nn, quotas = make()
        with pytest.raises(FileNotFoundInDfsError):
            quotas.set_quota("/nope", max_files=5)
        nn.mkdir("/tenant")
        quotas.set_quota("/tenant", max_files=5)
        assert quotas.quota_of("/tenant") == DirectoryQuota(max_files=5)

    def test_clear_quota(self):
        nn, quotas = make()
        nn.mkdir("/t")
        quotas.set_quota("/t", max_files=1)
        quotas.clear_quota("/t")
        assert quotas.quota_of("/t") is None
        nn.create_file("/t/a", num_blocks=1)
        nn.create_file("/t/b", num_blocks=1)  # no longer limited

    def test_validation(self):
        with pytest.raises(QuotaExceededError):
            DirectoryQuota(max_files=-1)
        with pytest.raises(QuotaExceededError):
            DirectoryQuota(max_replicated_blocks=-1)


class TestFileCountQuota:
    def test_rejects_over_limit(self):
        nn, quotas = make()
        nn.mkdir("/t")
        quotas.set_quota("/t", max_files=2)
        nn.create_file("/t/a", num_blocks=1)
        nn.create_file("/t/sub/b", num_blocks=1)  # nested counts too
        with pytest.raises(QuotaExceededError):
            nn.create_file("/t/c", num_blocks=1)
        assert quotas.rejections == 1
        # Other directories are unaffected.
        nn.create_file("/elsewhere", num_blocks=1)

    def test_delete_frees_quota(self):
        nn, quotas = make()
        nn.mkdir("/t")
        quotas.set_quota("/t", max_files=1)
        nn.create_file("/t/a", num_blocks=1)
        nn.delete_file("/t/a")
        nn.create_file("/t/b", num_blocks=1)

    def test_root_quota_governs_everything(self):
        nn, quotas = make()
        quotas.set_quota("/", max_files=1)
        nn.create_file("/a", num_blocks=1)
        with pytest.raises(QuotaExceededError):
            nn.create_file("/deep/down/b", num_blocks=1)


class TestSpaceQuota:
    def test_rejects_oversized_create(self):
        nn, quotas = make()
        nn.mkdir("/t")
        quotas.set_quota("/t", max_replicated_blocks=6)
        nn.create_file("/t/a", num_blocks=2)  # 2 * 3 = 6 replicated
        with pytest.raises(QuotaExceededError):
            nn.create_file("/t/b", num_blocks=1)

    def test_set_replication_consumes_quota(self):
        nn, quotas = make()
        nn.mkdir("/t")
        quotas.set_quota("/t", max_replicated_blocks=7)
        meta = nn.create_file("/t/a", num_blocks=2)  # 6 of 7
        block = meta.block_ids[0]
        with pytest.raises(QuotaExceededError):
            nn.set_replication(block, 5)  # +2 would hit 8
        nn.set_replication(block, 4)  # +1 fits exactly
        assert quotas.usage("/t") == (1, 7)

    def test_decreases_always_allowed(self):
        nn, quotas = make()
        nn.mkdir("/t")
        quotas.set_quota("/t", max_replicated_blocks=6)
        meta = nn.create_file("/t/a", num_blocks=2)
        nn.set_replication(meta.block_ids[0], 2)  # below quota: fine
        assert quotas.usage("/t") == (1, 5)

    def test_usage_counts_targets_not_lazy_replicas(self):
        nn, quotas = make()
        nn.mkdir("/t")
        quotas.set_quota("/t", max_replicated_blocks=100)
        meta = nn.create_file("/t/a", num_blocks=1)
        block = meta.block_ids[0]
        nn.set_replication(block, 5)
        nn.set_replication(block, 3)  # two replicas now lazy
        _files, replicated = quotas.usage("/t")
        assert replicated == 3  # lazy excess is reclaimable, not charged

    def test_quota_caps_aurora_budget_spending(self):
        """A tenant quota bounds what the optimizer may replicate."""
        from repro.aurora.config import AuroraConfig
        from repro.aurora.system import AuroraSystem

        nn, quotas = make()
        aurora = AuroraSystem(nn, AuroraConfig(
            epsilon=0.0, replication_budget=100,
        ))
        nn.mkdir("/tenant")
        quotas.set_quota("/tenant", max_replicated_blocks=4)
        meta = nn.create_file("/tenant/hot", num_blocks=1)
        for _ in range(50):
            nn.record_access(meta.block_ids[0], reader=0)
        # The optimizer wants many replicas; the quota rejects the grant
        # and Aurora tolerates it and finishes the period.
        report = aurora.optimize(now=10.0)
        assert report.replication_rejections >= 1
        assert nn.blockmap.meta(meta.block_ids[0]).replication_factor <= 4
