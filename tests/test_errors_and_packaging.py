"""Tests for the error hierarchy and package surface."""

import importlib

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_every_public_error_derives_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, Exception)
            assert issubclass(cls, errors.ReproError), name

    def test_dfs_errors_are_dfs_errors(self):
        for name in ("BlockNotFoundError", "FileNotFoundInDfsError",
                     "FileExistsInDfsError", "DatanodeUnavailableError",
                     "SafeModeError"):
            assert issubclass(getattr(errors, name), errors.DfsError)

    def test_capacity_error_is_infeasible_operation(self):
        assert issubclass(
            errors.CapacityExceededError, errors.InfeasibleOperationError
        )

    def test_single_except_clause_catches_everything(self):
        caught = []
        for cls in (errors.SchedulerError, errors.TraceFormatError,
                    errors.SimulationError, errors.SafeModeError):
            try:
                raise cls("boom")
            except errors.ReproError as exc:
                caught.append(type(exc))
        assert len(caught) == 4


class TestPackageSurface:
    def test_version_is_set(self):
        assert repro.__version__

    def test_all_subpackages_import(self):
        for name in ("core", "cluster", "simulation", "dfs", "scheduler",
                     "workload", "monitor", "baselines", "aurora",
                     "experiments", "cli"):
            module = importlib.import_module(f"repro.{name}")
            assert module is not None

    def test_dunder_all_names_resolve(self):
        for name in ("core", "dfs", "scheduler", "workload", "monitor",
                     "baselines", "aurora", "experiments", "simulation",
                     "cluster"):
            module = importlib.import_module(f"repro.{name}")
            for symbol in getattr(module, "__all__", ()):
                assert hasattr(module, symbol), f"repro.{name}.{symbol}"
