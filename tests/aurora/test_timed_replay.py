"""Aurora replay under timed transfers: best-effort, never inconsistent."""

import random

import pytest

from repro.aurora.bridge import replay_operations, snapshot_placement
from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.core.local_search import balance_rack_aware
from repro.core.operations import MoveOp
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.simulation.engine import Simulation


def timed_stack(seed=0):
    sim = Simulation()
    topo = ClusterTopology.uniform(3, 4, capacity=120)
    transfers = TransferService(topo, sim=sim, jitter=0.0)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        sim=sim, transfer_service=transfers, rng=random.Random(seed + 1),
    )
    return sim, nn


class TestTimedReplay:
    def test_moves_complete_after_transfer_time(self):
        sim, nn = timed_stack()
        rng = random.Random(3)
        for i in range(8):
            nn.create_file(f"/f{i}", num_blocks=2)
        pops = {b: rng.uniform(1, 30) for b in nn.blockmap.block_ids()}
        planned = snapshot_placement(nn, pops)
        stats = balance_rack_aware(planned, log_operations=True)
        report = replay_operations(nn, stats.operations)
        issued = report.moves_issued
        assert issued > 0
        moves_before = nn.moves_completed
        sim.run()
        # Every issued migration eventually completes.
        assert nn.moves_completed - moves_before == issued
        nn.audit()
        live = nn.live_nodes()
        for block in nn.blockmap.block_ids():
            assert nn.blockmap.is_available(block, live)

    def test_conflicting_second_op_is_skipped_not_fatal(self):
        sim, nn = timed_stack(seed=9)
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        src = next(iter(nn.blockmap.locations(block)))
        same_rack = [
            m for m in nn.topology.machines_in_rack(nn.topology.rack_of[src])
            if m not in nn.blockmap.locations(block)
        ]
        if len(same_rack) < 2:
            pytest.skip("need two free same-rack targets for this seed")
        first, second = same_rack[:2]
        # Two ops moving the same replica: in timed mode the first is in
        # flight, so the second targets a src that is still technically
        # present — the namenode rejects the duplicate in-flight pair or
        # the stale source gracefully.
        report = replay_operations(nn, [
            MoveOp(block=block, src=src, dst=first),
            MoveOp(block=block, src=src, dst=first),
        ])
        assert report.moves_issued == 1
        assert report.moves_skipped == 1
        sim.run()
        assert first in nn.blockmap.locations(block)
        assert nn.blockmap.replica_count(block) == 3
        nn.audit()

    def test_full_periodic_system_with_timed_transfers(self):
        sim, nn = timed_stack(seed=4)
        aurora = AuroraSystem(nn, AuroraConfig(
            epsilon=0.1, period=600.0, replication_budget=200,
        ))
        aurora.run_periodic(sim)
        rng = random.Random(5)
        metas = [nn.create_file(f"/f{i}", num_blocks=2) for i in range(10)]

        def reads():
            for meta in metas[:3]:  # hot head
                for _ in range(10):
                    nn.record_access(
                        rng.choice(meta.block_ids),
                        rng.randrange(nn.topology.num_machines),
                    )

        sim.schedule_periodic(120.0, reads)
        sim.run(until=3 * 3600.0)
        assert len(aurora.reports) >= 10
        # In-flight transfers at the horizon are fine; drain and audit.
        sim.run(until=4 * 3600.0)
        nn.audit()
        for spec_block in nn.blockmap.block_ids():
            assert nn.blockmap.replica_count(spec_block) >= 3
