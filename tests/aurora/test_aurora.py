"""Integration tests for the Aurora system (Algorithm 5 + wiring)."""

import random

import pytest

from repro.aurora.bridge import replay_operations, snapshot_placement
from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.core.admissibility import (
    AlwaysAdmissible,
    RelativeCostPolicy,
    RelativeGapPolicy,
)
from repro.core.operations import MoveOp, SwapOp
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy, LoadAwarePolicy
from repro.errors import InvalidProblemError
from repro.simulation.engine import Simulation


def make_namenode(num_racks=3, per_rack=4, capacity=200, seed=0, sim=None):
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed), sim=sim,
    )


class TestAuroraConfig:
    def test_defaults_match_paper(self):
        config = AuroraConfig()
        assert config.window == 2 * 3600.0
        assert config.period == 3600.0
        assert config.max_replication_ops == 20_000

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            AuroraConfig(epsilon=1.0)
        with pytest.raises(InvalidProblemError):
            AuroraConfig(window=0)
        with pytest.raises(InvalidProblemError):
            AuroraConfig(period=-1)
        with pytest.raises(InvalidProblemError):
            AuroraConfig(min_replication=0)
        with pytest.raises(InvalidProblemError):
            AuroraConfig(rack_spread=4, min_replication=3)
        with pytest.raises(InvalidProblemError):
            AuroraConfig(replication_budget=-5)


class TestBridge:
    def test_snapshot_round_trip(self):
        nn = make_namenode()
        nn.create_file("/a", num_blocks=3)
        nn.create_file("/b", num_blocks=2)
        pops = {b: 2.0 for b in nn.blockmap.block_ids()}
        state = snapshot_placement(nn, pops)
        assert state.problem.num_blocks == 5
        for block_id in nn.blockmap.block_ids():
            assert state.machines_of(block_id) == nn.blockmap.locations(block_id)
            assert state.replica_count(block_id) == 3

    def test_snapshot_defaults_missing_popularity_to_zero(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        state = snapshot_placement(nn, {})
        assert state.problem.block(meta.block_ids[0]).popularity == 0.0

    def test_replay_move(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        src = next(iter(nn.blockmap.locations(block)))
        dst = next(
            n for n in nn.topology.machines_in_rack(nn.topology.rack_of[src])
            if n not in nn.blockmap.locations(block)
        )
        report = replay_operations(nn, [MoveOp(block=block, src=src, dst=dst)])
        assert report.moves_issued == 1
        assert report.moves_skipped == 0
        assert dst in nn.blockmap.locations(block)

    def test_replay_swap_as_two_moves(self):
        nn = make_namenode(num_racks=1, per_rack=4)
        a = nn.create_file("/a", num_blocks=1, replication=1, rack_spread=1)
        b = nn.create_file("/b", num_blocks=1, replication=1, rack_spread=1)
        block_a, block_b = a.block_ids[0], b.block_ids[0]
        node_a = next(iter(nn.blockmap.locations(block_a)))
        node_b = next(iter(nn.blockmap.locations(block_b)))
        if node_a == node_b:
            # Separate them deterministically so the swap is meaningful.
            node_b = next(
                m for m in nn.topology.machines if m != node_a
            )
            nn.move_block(block_b, node_a, node_b)
        report = replay_operations(
            nn, [SwapOp(block_i=block_a, src=node_a, block_j=block_b,
                        dst=node_b)]
        )
        assert report.moves_issued == 2
        assert node_b in nn.blockmap.locations(block_a)
        assert node_a in nn.blockmap.locations(block_b)

    def test_replay_skips_stale_operations(self):
        nn = make_namenode()
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        outsider = next(
            n for n in nn.topology.machines
            if n not in nn.blockmap.locations(block)
        )
        report = replay_operations(
            nn, [MoveOp(block=block, src=outsider, dst=0)]
        )
        assert report.moves_issued == 0
        assert report.moves_skipped == 1


class TestAuroraSystem:
    def simulate_access(self, nn, aurora, block_id, count, reader=0, time=0.0):
        for _ in range(count):
            nn.record_access(block_id, reader)

    def test_wires_monitor_and_policy(self):
        nn = make_namenode()
        aurora = AuroraSystem(nn, AuroraConfig())
        assert isinstance(nn.placement_policy, LoadAwarePolicy)
        meta = nn.create_file("/a", num_blocks=1)
        nn.record_access(meta.block_ids[0], reader=0)
        assert aurora.monitor.total_recorded == 1

    def test_optimize_balances_hotspot(self):
        nn = make_namenode(num_racks=2, per_rack=3)
        aurora = AuroraSystem(nn, AuroraConfig(epsilon=0.0))
        # Create several single-replica files stacked on a writer node so
        # their load lands on few machines.
        metas = [
            nn.create_file(f"/f{i}", num_blocks=1, replication=1,
                           rack_spread=1, writer=0)
            for i in range(6)
        ]
        for meta in metas:
            self.simulate_access(nn, aurora, meta.block_ids[0], count=10)
        report = aurora.optimize(now=100.0)
        assert report.cost_after < report.cost_before
        assert report.replay.moves_issued > 0
        # The blocks are now spread across machines.
        holders = {
            next(iter(nn.blockmap.locations(m.block_ids[0]))) for m in metas
        }
        assert len(holders) > 1

    def test_replication_phase_boosts_hot_block(self):
        nn = make_namenode()
        config = AuroraConfig(
            epsilon=0.0, replication_budget=10, min_replication=3,
        )
        aurora = AuroraSystem(nn, config)
        hot = nn.create_file("/hot", num_blocks=1)
        cold = nn.create_file("/cold", num_blocks=1)
        self.simulate_access(nn, aurora, hot.block_ids[0], count=40)
        self.simulate_access(nn, aurora, cold.block_ids[0], count=1)
        report = aurora.optimize(now=50.0)
        assert report.replication_increases > 0
        assert nn.blockmap.meta(hot.block_ids[0]).replication_factor > 3
        assert nn.blockmap.meta(cold.block_ids[0]).replication_factor == 3

    def test_replication_cap_respected(self):
        nn = make_namenode()
        config = AuroraConfig(
            epsilon=0.0, replication_budget=100, max_replication_ops=2,
        )
        aurora = AuroraSystem(nn, config)
        hot = nn.create_file("/hot", num_blocks=1)
        self.simulate_access(nn, aurora, hot.block_ids[0], count=50)
        report = aurora.optimize(now=50.0)
        assert report.replication_increases <= 2

    def test_factor_decrease_is_lazy(self):
        nn = make_namenode()
        # A tight budget (6 minimum + 9 headroom on a 12-machine cluster)
        # forces Algorithm 3 to steal when hotness flips.
        config = AuroraConfig(epsilon=0.0, replication_budget=15)
        aurora = AuroraSystem(nn, config)
        hot = nn.create_file("/hot", num_blocks=1)
        cold = nn.create_file("/cold", num_blocks=1)
        self.simulate_access(nn, aurora, hot.block_ids[0], count=30)
        aurora.optimize(now=10.0)
        boosted = nn.blockmap.meta(hot.block_ids[0]).replication_factor
        assert boosted > 3
        # Next period the roles flip: the budget is exhausted, so boosting
        # the newly hot block forces Algorithm 3 to steal replicas from
        # the old one — which are only marked lazy, not deleted.
        replicas_before = nn.blockmap.replica_count(hot.block_ids[0])
        late = 10 * 3600.0  # the old window has fully expired
        for _ in range(30):
            nn.record_access(cold.block_ids[0], reader=0)
            aurora.monitor.record_access(cold.block_ids[0], late)
        report = aurora.optimize(now=late)
        assert report.replication_decreases > 0
        assert nn.blockmap.meta(hot.block_ids[0]).replication_factor < boosted
        assert nn.blockmap.replica_count(hot.block_ids[0]) == replicas_before
        assert len(nn.lazy_replicas()) > 0

    def test_epsilon_policy_selection(self):
        nn = make_namenode()
        assert isinstance(
            AuroraSystem(nn, AuroraConfig(epsilon=0.0)).admissibility_policy(),
            AlwaysAdmissible,
        )
        nn2 = make_namenode()
        assert isinstance(
            AuroraSystem(nn2, AuroraConfig(epsilon=0.5)).admissibility_policy(),
            RelativeGapPolicy,
        )
        nn3 = make_namenode()
        policy = AuroraSystem(
            nn3, AuroraConfig(epsilon=0.5, use_cost_admissibility=True)
        ).admissibility_policy()
        assert isinstance(policy, RelativeCostPolicy)

    def test_node_load_uses_popularity(self):
        nn = make_namenode()
        aurora = AuroraSystem(nn, AuroraConfig())
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        holders = nn.blockmap.locations(block)
        aurora.refresh_loads({block: 9.0})
        for node in holders:
            assert aurora.node_load(node) == pytest.approx(3.0, abs=1e-3)

    def test_periodic_scheduling(self):
        sim = Simulation()
        nn = make_namenode(sim=sim)
        aurora = AuroraSystem(nn, AuroraConfig(period=3600.0))
        nn.create_file("/a", num_blocks=2)
        aurora.run_periodic(sim)
        sim.run(until=2 * 3600.0 + 1)
        assert len(aurora.reports) == 2

    def test_rack_spread_preserved_through_optimization(self):
        nn = make_namenode(num_racks=3, per_rack=3)
        aurora = AuroraSystem(nn, AuroraConfig(epsilon=0.0))
        metas = [nn.create_file(f"/f{i}", num_blocks=2) for i in range(5)]
        rng = random.Random(1)
        for meta in metas:
            for block in meta.block_ids:
                for _ in range(rng.randint(0, 20)):
                    nn.record_access(block, rng.randrange(9))
        aurora.optimize(now=100.0)
        for meta in metas:
            for block in meta.block_ids:
                assert nn.blockmap.rack_spread(block) >= 2
                assert nn.blockmap.replica_count(block) >= 3
