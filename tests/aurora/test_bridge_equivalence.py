"""Property test: the optimizer's plan equals the live system's outcome.

Algorithm 5 plans on the abstract :class:`PlacementState` and then
replays the operation log against the namenode.  In instant-transfer
mode nothing can interfere, so after replay the namenode's block map
must be *identical* to the abstract state the local search produced —
any divergence means the bridge (or the namenode's move machinery)
rewrites history.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aurora.bridge import replay_operations, snapshot_placement
from repro.cluster.topology import ClusterTopology
from repro.core.admissibility import RelativeGapPolicy
from repro.core.local_search import balance_rack_aware
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy


def build_loaded_namenode(seed, num_racks=3, per_rack=3, files=10):
    rng = random.Random(seed)
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity=100)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed + 1)),
        rng=random.Random(seed + 2),
    )
    for i in range(files):
        nn.create_file(f"/f{i}", num_blocks=rng.randint(1, 3))
    popularities = {
        block: rng.uniform(0.0, 50.0) for block in nn.blockmap.block_ids()
    }
    return nn, popularities


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 50_000), epsilon=st.sampled_from([0.0, 0.1, 0.5]))
def test_replay_reproduces_planned_state(seed, epsilon):
    nn, popularities = build_loaded_namenode(seed)
    planned = snapshot_placement(nn, popularities)
    policy = RelativeGapPolicy(epsilon)
    stats = balance_rack_aware(planned, policy=policy, log_operations=True)
    report = replay_operations(nn, stats.operations)
    # Instant transfers, no interference: nothing may be skipped...
    assert report.moves_skipped == 0
    # ...and the live block map must equal the planned placement exactly.
    for block_id in nn.blockmap.block_ids():
        assert nn.blockmap.locations(block_id) == planned.machines_of(block_id)
    nn.audit()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50_000))
def test_replay_preserves_counts_and_spreads(seed):
    nn, popularities = build_loaded_namenode(seed, files=8)
    before = {
        block: nn.blockmap.replica_count(block)
        for block in nn.blockmap.block_ids()
    }
    planned = snapshot_placement(nn, popularities)
    stats = balance_rack_aware(planned, log_operations=True)
    replay_operations(nn, stats.operations)
    for block, count in before.items():
        assert nn.blockmap.replica_count(block) == count
        meta = nn.blockmap.meta(block)
        assert nn.blockmap.rack_spread(block) >= min(
            meta.rack_spread, count
        )
