"""The incremental placement snapshot must equal a from-scratch one.

:func:`snapshot_placement` with a :class:`PlacementSnapshotCache` reuses
the previous period's specs/locations for blocks the block map did not
flag dirty.  Any cluster mutation — migrations, replication-factor
changes, node failures, deletions, popularity drift — must therefore be
reflected in the next cached snapshot exactly as a cache-less snapshot
would see it.
"""

import random

import numpy as np

from repro.aurora.bridge import (
    PlacementSnapshotCache,
    replay_operations,
    snapshot_placement,
)
from repro.cluster.topology import ClusterTopology
from repro.core.local_search import balance_rack_aware
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy


def build_namenode(seed=0, files=10):
    rng = random.Random(seed)
    topo = ClusterTopology.uniform(3, 3, capacity=100)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed + 1)),
        rng=random.Random(seed + 2),
    )
    for i in range(files):
        nn.create_file(f"/f{i}", num_blocks=rng.randint(1, 3))
    return nn, rng


def popularity_map(nn, rng):
    return {
        block: round(rng.uniform(0.0, 50.0), 3)
        for block in nn.blockmap.block_ids()
    }


def assert_snapshots_equal(cached, fresh):
    assert cached.to_assignment() == fresh.to_assignment()
    assert np.allclose(cached.loads(), fresh.loads())
    assert tuple(cached.problem.blocks) == tuple(fresh.problem.blocks)
    cached.audit()


class TestSnapshotCacheEquivalence:
    def test_first_cached_snapshot_matches_fresh(self):
        nn, rng = build_namenode()
        pops = popularity_map(nn, rng)
        cache = PlacementSnapshotCache()
        cached = snapshot_placement(nn, pops, cache=cache)
        fresh = snapshot_placement(nn, pops)
        assert_snapshots_equal(cached, fresh)

    def test_snapshot_after_migrations(self):
        nn, rng = build_namenode()
        cache = PlacementSnapshotCache()
        pops = popularity_map(nn, rng)
        planned = snapshot_placement(nn, pops, cache=cache)
        stats = balance_rack_aware(planned, log_operations=True)
        replay_operations(nn, stats.operations)
        pops = popularity_map(nn, rng)
        cached = snapshot_placement(nn, pops, cache=cache)
        fresh = snapshot_placement(nn, pops)
        assert_snapshots_equal(cached, fresh)

    def test_snapshot_after_replication_change(self):
        nn, rng = build_namenode()
        cache = PlacementSnapshotCache()
        pops = popularity_map(nn, rng)
        snapshot_placement(nn, pops, cache=cache)
        block = next(iter(nn.blockmap.block_ids()))
        nn.set_replication(block, nn.blockmap.replica_count(block) + 1)
        cached = snapshot_placement(nn, pops, cache=cache)
        fresh = snapshot_placement(nn, pops)
        assert_snapshots_equal(cached, fresh)
        assert len(cached.machines_of(block)) == len(fresh.machines_of(block))

    def test_snapshot_after_node_failure(self):
        nn, rng = build_namenode()
        cache = PlacementSnapshotCache()
        pops = popularity_map(nn, rng)
        snapshot_placement(nn, pops, cache=cache)
        nn.fail_node(0)
        cached = snapshot_placement(nn, pops, cache=cache)
        fresh = snapshot_placement(nn, pops)
        assert_snapshots_equal(cached, fresh)
        for block in nn.blockmap.block_ids():
            assert 0 not in cached.machines_of(block)

    def test_snapshot_after_file_deletion(self):
        nn, rng = build_namenode()
        cache = PlacementSnapshotCache()
        pops = popularity_map(nn, rng)
        snapshot_placement(nn, pops, cache=cache)
        nn.delete_file("/f0")
        pops = popularity_map(nn, rng)
        cached = snapshot_placement(nn, pops, cache=cache)
        fresh = snapshot_placement(nn, pops)
        assert_snapshots_equal(cached, fresh)

    def test_popularity_drift_refreshes_specs(self):
        nn, rng = build_namenode()
        cache = PlacementSnapshotCache()
        first = popularity_map(nn, rng)
        snapshot_placement(nn, first, cache=cache)
        # Same placement, different popularity: no block is dirty, yet
        # every spec must carry the new values.
        second = {block: value + 1.0 for block, value in first.items()}
        cached = snapshot_placement(nn, second, cache=cache)
        for spec in cached.problem.blocks:
            assert spec.popularity == second[spec.block_id]
        fresh = snapshot_placement(nn, second)
        assert_snapshots_equal(cached, fresh)

    def test_invalidate_forces_full_rebuild(self):
        nn, rng = build_namenode()
        cache = PlacementSnapshotCache()
        pops = popularity_map(nn, rng)
        snapshot_placement(nn, pops, cache=cache)
        cache.invalidate()
        assert cache._specs == {} and cache._locations == {}
        cached = snapshot_placement(nn, pops, cache=cache)
        assert_snapshots_equal(cached, snapshot_placement(nn, pops))


class TestMembershipEpoch:
    def test_epoch_bumps_on_liveness_flips_only(self):
        nn, _ = build_namenode(files=2)
        epoch = nn.membership_epoch
        nn.fail_node(0)
        assert nn.membership_epoch > epoch
        epoch = nn.membership_epoch
        # Crashing an already-dead node is not a flip.
        nn.datanodes[0].crash()
        assert nn.membership_epoch == epoch
        nn.datanodes[0].recover()
        assert nn.membership_epoch > epoch

    def test_live_nodes_cache_tracks_epoch(self):
        nn, _ = build_namenode(files=2)
        all_nodes = set(nn.live_nodes())
        nn.fail_node(1)
        assert set(nn.live_nodes()) == all_nodes - {1}
        nn.datanodes[1].recover()
        assert set(nn.live_nodes()) == all_nodes

    def test_silent_crash_still_bumps_epoch(self):
        # A fault injector may flip a datanode directly, bypassing
        # fail_node; the liveness callback must still notice.
        nn, _ = build_namenode(files=2)
        epoch = nn.membership_epoch
        nn.datanodes[2].crash()
        assert nn.membership_epoch > epoch
        assert 2 not in nn.live_nodes()
