"""Tests for Aurora's future-work extensions (Section VIII).

The paper closes with "we are interested in implementing techniques such
as replication on read [9] and compression [10] for dynamic block
replication" — both are implemented behind AuroraConfig flags.
"""

import random

import pytest

from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import InvalidProblemError
from repro.simulation.engine import Simulation


def make_namenode(seed=0, sim=None, transfers=None):
    topo = ClusterTopology.uniform(3, 4, capacity=100)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed), sim=sim, transfer_service=transfers,
    )


class TestReplicateOnRead:
    def test_disabled_by_default(self):
        nn = make_namenode()
        aurora = AuroraSystem(nn, AuroraConfig())
        assert aurora.replicate_on_read is None
        assert not nn.read_listeners

    def test_remote_read_creates_replica(self):
        nn = make_namenode()
        aurora = AuroraSystem(nn, AuroraConfig(
            replicate_on_read_probability=1.0,
            replicate_on_read_budget=50,
        ))
        assert aurora.replicate_on_read is not None
        meta = nn.create_file("/hot", num_blocks=1)
        block = meta.block_ids[0]
        outsider = next(
            n for n in nn.topology.machines
            if n not in nn.blockmap.locations(block)
        )
        before = nn.blockmap.replica_count(block)
        nn.record_access(block, outsider)
        assert nn.blockmap.replica_count(block) == before + 1
        assert outsider in nn.blockmap.locations(block)
        assert aurora.replicate_on_read.replicas_created == 1

    def test_local_read_is_free(self):
        nn = make_namenode()
        aurora = AuroraSystem(nn, AuroraConfig(
            replicate_on_read_probability=1.0,
        ))
        meta = nn.create_file("/f", num_blocks=1)
        block = meta.block_ids[0]
        holder = next(iter(nn.blockmap.locations(block)))
        before = nn.blockmap.replica_count(block)
        nn.record_access(block, holder)
        assert nn.blockmap.replica_count(block) == before
        assert aurora.replicate_on_read.replicas_created == 0

    def test_budget_bounds_extras(self):
        nn = make_namenode(seed=2)
        aurora = AuroraSystem(nn, AuroraConfig(
            replicate_on_read_probability=1.0,
            replicate_on_read_budget=3,
        ))
        metas = [nn.create_file(f"/f{i}", num_blocks=1) for i in range(8)]
        rng = random.Random(3)
        for meta in metas:
            block = meta.block_ids[0]
            readers = [
                n for n in nn.topology.machines
                if n not in nn.blockmap.locations(block)
            ]
            nn.record_access(block, rng.choice(readers))
        assert aurora.replicate_on_read.extra_replicas <= 3

    def test_config_validation(self):
        with pytest.raises(InvalidProblemError):
            AuroraConfig(replicate_on_read_probability=1.5)
        with pytest.raises(InvalidProblemError):
            AuroraConfig(replicate_on_read_budget=-1)


class TestMovementCompression:
    def test_compression_applies_to_movement_only(self):
        sim = Simulation()
        topo = ClusterTopology.uniform(3, 4, capacity=100)
        transfers = TransferService(topo, sim=sim, jitter=0.0)
        nn = Namenode(
            topo, placement_policy=DefaultHdfsPolicy(random.Random(0)),
            rng=random.Random(0), sim=sim, transfer_service=transfers,
        )
        AuroraSystem(nn, AuroraConfig(movement_compression=27.0))
        assert nn.movement_compression == 27.0
        meta = nn.create_file("/f", num_blocks=1)
        write_durations = transfers.durations.samples
        # Pipeline writes are uncompressed.
        assert all(d > 0.1 for d in write_durations)
        # A replication transfer is 27x faster for the same block size.
        block = meta.block_ids[0]
        count_before = len(transfers.durations.samples)
        nn.set_replication(block, 4)
        sim.run()
        movement = transfers.durations.samples[count_before:]
        assert len(movement) == 1
        assert movement[0] < max(write_durations) / 10

    def test_compression_validation(self):
        with pytest.raises(InvalidProblemError):
            AuroraConfig(movement_compression=0.5)
