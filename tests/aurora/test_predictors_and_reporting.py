"""Aurora with non-default predictors, plus period reporting."""

import random

import pytest

from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.monitor.forecast import Ar1Predictor, EwmaPredictor


def make_namenode(seed=0):
    topo = ClusterTopology.uniform(3, 4, capacity=120)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed),
    )


class TestPredictorIntegration:
    def drive(self, predictor):
        nn = make_namenode()
        # optimize() runs 1 s past the period boundary here, so the
        # window cutoff is not bucket-aligned: use the exact monitor.
        aurora = AuroraSystem(
            nn,
            AuroraConfig(
                epsilon=0.0, replication_budget=100, monitor_exact=True
            ),
            predictor=predictor,
        )
        hot = nn.create_file("/hot", num_blocks=1)
        block = hot.block_ids[0]
        # Rising popularity across three periods.
        for period, reads in enumerate((4, 8, 16)):
            now = period * 3600.0
            for _ in range(reads):
                aurora.monitor.record_access(block, now)
            aurora.optimize(now=now + 1.0)
        return nn, aurora, block

    def test_ewma_smooths_the_estimate(self):
        nn, aurora, block = self.drive(EwmaPredictor(alpha=0.5))
        prediction = aurora.predictor.predict()[block]
        # EWMA lags the latest spike (28 accesses live in the window at
        # the last period; the smoothed estimate sits below it).
        assert prediction < 28.0
        assert nn.blockmap.meta(block).replication_factor > 3

    def test_ar1_extrapolates_growth(self):
        nn, aurora, block = self.drive(Ar1Predictor())
        prediction = aurora.predictor.predict()[block]
        assert prediction > 0
        assert nn.blockmap.meta(block).replication_factor > 3

    def test_default_historical_equals_window_count(self):
        from repro.monitor.forecast import HistoricalPredictor

        nn, aurora, block = self.drive(HistoricalPredictor())
        # The 2 h window at t=2 h+ holds the last two periods' reads.
        assert aurora.predictor.predict()[block] == pytest.approx(24.0)


class TestReportsTable:
    def test_renders_all_periods(self):
        nn = make_namenode()
        aurora = AuroraSystem(nn, AuroraConfig(epsilon=0.0))
        nn.create_file("/a", num_blocks=2)
        aurora.optimize(now=3600.0)
        aurora.optimize(now=7200.0)
        table = aurora.reports_table()
        lines = table.splitlines()
        assert "period" in lines[0]
        assert len(lines) == 4  # header + rule + 2 periods

    def test_empty_reports_table(self):
        nn = make_namenode()
        aurora = AuroraSystem(nn, AuroraConfig())
        table = aurora.reports_table()
        assert "cost before" in table
