"""Property tests for the DES engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Simulation


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=1000.0),
                    min_size=1, max_size=40),
)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulation()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_cancellations_never_fire(seed):
    rng = random.Random(seed)
    sim = Simulation()
    fired = []
    tokens = []
    cancelled_ids = set()
    for index in range(30):
        token = sim.schedule(
            rng.uniform(0, 100), lambda i=index: fired.append(i)
        )
        tokens.append((index, token))
    for index, token in tokens:
        if rng.random() < 0.4:
            token.cancel()
            cancelled_ids.add(index)
    sim.run()
    assert set(fired).isdisjoint(cancelled_ids)
    assert len(fired) == 30 - len(cancelled_ids)


@settings(max_examples=20, deadline=None)
@given(
    interval=st.floats(min_value=0.5, max_value=10.0),
    horizon=st.floats(min_value=1.0, max_value=200.0),
)
def test_periodic_fire_count_matches_interval(interval, horizon):
    sim = Simulation()
    fires = []
    sim.schedule_periodic(interval, lambda: fires.append(sim.now))
    sim.run(until=horizon)
    expected = int(horizon / interval)
    # Floating-point accumulation may shift the last firing across the
    # horizon boundary by one event.
    assert abs(len(fires) - expected) <= 1
    for count, time in enumerate(fires, start=1):
        assert time == pytest.approx(count * interval, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_run_in_chunks_equals_run_at_once(seed):
    def build():
        rng = random.Random(seed)
        sim = Simulation()
        log = []
        for index in range(25):
            sim.schedule(rng.uniform(0, 50), lambda i=index: log.append(i))
        return sim, log

    sim_a, log_a = build()
    sim_a.run()
    sim_b, log_b = build()
    for checkpoint in (10.0, 20.0, 30.0, 40.0):
        sim_b.run(until=checkpoint)
    sim_b.run()
    assert log_a == log_b
