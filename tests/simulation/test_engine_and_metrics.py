"""Unit tests for the DES engine and metric collectors."""

import math

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import Simulation
from repro.simulation.metrics import (
    Counter,
    Distribution,
    HourlyRate,
    MetricsRecorder,
    TimeSeries,
)


class TestSimulation:
    def test_events_fire_in_time_order(self):
        sim = Simulation()
        log = []
        sim.schedule(5.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0
        assert sim.events_processed == 3

    def test_ties_break_by_insertion_order(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_run_until_stops_clock_exactly(self):
        sim = Simulation()
        log = []
        sim.schedule(10.0, lambda: log.append("late"))
        sim.run(until=4.0)
        assert log == []
        assert sim.now == 4.0
        sim.run()
        assert log == ["late"]

    def test_run_until_advances_clock_on_empty_queue(self):
        sim = Simulation()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_cancellation(self):
        sim = Simulation()
        log = []
        token = sim.schedule(1.0, lambda: log.append("x"))
        token.cancel()
        sim.run()
        assert log == []

    def test_periodic_fires_repeatedly_until_cancelled(self):
        sim = Simulation()
        log = []
        token = sim.schedule_periodic(2.0, lambda: log.append(sim.now))
        sim.run(until=7.0)
        assert log == [2.0, 4.0, 6.0]
        token.cancel()
        sim.run(until=20.0)
        assert log == [2.0, 4.0, 6.0]

    def test_periodic_first_at_override(self):
        sim = Simulation()
        log = []
        sim.schedule_periodic(5.0, lambda: log.append(sim.now), first_at=0.0)
        sim.run(until=11.0)
        assert log == [0.0, 5.0, 10.0]

    def test_events_scheduled_during_events(self):
        sim = Simulation()
        log = []

        def outer():
            sim.schedule(1.0, lambda: log.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == ["inner"]
        assert sim.now == 2.0

    def test_max_events_cap(self):
        sim = Simulation()
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: log.append(i))
        sim.run(max_events=2)
        assert log == [0, 1]

    def test_rejects_past_scheduling(self):
        sim = Simulation(start=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)

    def test_step_returns_false_when_empty(self):
        sim = Simulation()
        assert not sim.step()


class TestEngineDeterminismRegression:
    """Pins the tuple-heap kernel's exact dispatch behavior.

    The event queue stores plain ``(time, seq, action, token)`` tuples
    and the run loop skips cancelled heads without dispatching; neither
    micro-optimization may change execution order, cancellation
    semantics, or the processed-event count.
    """

    @staticmethod
    def _drive(seed):
        import random

        rng = random.Random(seed)
        sim = Simulation()
        log = []
        tokens = []

        def fire(tag):
            log.append((sim.now, tag))
            # Events scheduled from within events, with same-time ties.
            if rng.random() < 0.3:
                sim.schedule(
                    rng.choice([0.0, 1.0, 2.5]),
                    lambda t=f"{tag}+": log.append((sim.now, t)),
                )
            # Some events cancel a pending later event mid-run.
            if tokens and rng.random() < 0.3:
                tokens.pop(rng.randrange(len(tokens))).cancel()

        for i in range(60):
            token = sim.schedule_at(
                rng.choice([0.0, 1.0, 1.0, 3.0, 7.5, 10.0]),
                lambda i=i: fire(i),
            )
            tokens.append(token)
        # Cancel a batch up front, including (likely) some queue heads.
        for _ in range(15):
            tokens.pop(rng.randrange(len(tokens))).cancel()
        sim.run(until=20.0)
        return log, sim.events_processed, sim.now

    def test_identical_runs_replay_identically(self):
        for seed in range(5):
            assert self._drive(seed) == self._drive(seed)

    def test_order_and_counts(self):
        log, processed, now = self._drive(seed=42)
        # Time never goes backwards, every dispatch was counted, and
        # the clock ended exactly at the horizon.
        times = [t for t, _ in log]
        assert times == sorted(times)
        assert processed == len(log)
        assert now == 20.0

    def test_cancelled_events_never_fire_nor_count(self):
        sim = Simulation()
        log = []
        keep = sim.schedule_at(1.0, lambda: log.append("keep"))
        for i in range(10):
            sim.schedule_at(0.5, lambda i=i: log.append(i)).cancel()
        assert keep is not None
        sim.run()
        assert log == ["keep"]
        assert sim.events_processed == 1

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulation()
        log = []
        for i in range(50):
            sim.schedule_at(5.0, lambda i=i: log.append(i))
        sim.run()
        assert log == list(range(50))


class TestMetrics:
    def test_counter(self):
        counter = Counter()
        counter.add("x")
        counter.add("x", 2.5)
        assert counter.get("x") == pytest.approx(3.5)
        assert counter.get("missing") == 0.0
        assert counter.as_dict() == {"x": 3.5}

    def test_hourly_rate_bucketing(self):
        rate = HourlyRate()
        rate.record(10.0)           # hour 0
        rate.record(3599.0)         # hour 0
        rate.record(3600.0, 2.0)    # hour 1
        assert rate.per_hour(3) == [2.0, 2.0, 0.0]
        assert rate.total() == 4.0
        assert rate.mean_per_hour(4) == pytest.approx(1.0)
        assert rate.mean_per_hour(0) == 0.0

    def test_distribution_statistics(self):
        dist = Distribution()
        dist.extend([1.0, 2.0, 3.0, 4.0])
        assert dist.mean() == pytest.approx(2.5)
        assert dist.min() == 1.0
        assert dist.max() == 4.0
        assert dist.percentile(50) == pytest.approx(2.5)
        assert len(dist) == 4
        cv = dist.coefficient_of_variation()
        assert cv == pytest.approx(dist.std() / dist.mean())

    def test_distribution_empty_is_nan(self):
        dist = Distribution()
        assert math.isnan(dist.mean())
        assert math.isnan(dist.percentile(50))
        assert math.isnan(dist.coefficient_of_variation())
        assert dist.cdf() == []

    def test_distribution_cdf_monotone(self):
        dist = Distribution()
        dist.extend([5.0, 1.0, 3.0, 2.0, 4.0])
        points = dist.cdf(points=5)
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs == sorted(probs)
        assert probs[-1] == pytest.approx(1.0)

    def test_time_series(self):
        series = TimeSeries()
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.points == [(1.0, 10.0), (2.0, 20.0)]
        assert series.values() == [10.0, 20.0]
        assert series.last() == (2.0, 20.0)
        with pytest.raises(IndexError):
            TimeSeries().last()

    def test_recorder_registry(self):
        recorder = MetricsRecorder()
        recorder.rate("moves").record(0.0)
        recorder.distribution("load").record(5.0)
        recorder.series("cost").record(0.0, 1.0)
        recorder.counters.add("jobs")
        assert recorder.rate("moves").total() == 1.0
        assert recorder.distribution("load").mean() == 5.0
        assert recorder.series("cost").last() == (0.0, 1.0)
        assert recorder.counters.get("jobs") == 1.0
        # Same name returns the same collector.
        assert recorder.rate("moves") is recorder.rate("moves")
