"""End-to-end smoke over real sockets.

Boots one namenode + four datanode *processes* through the supervisor,
drives them with the SDK, SIGKILLs a datanode mid-run, and asserts the
cluster fails over and repairs itself — the same chaos drill the
in-process suite runs, but across process and socket boundaries.
"""

import asyncio
import random
import threading
import time

import pytest

from repro.faults import RetryPolicy
from repro.serve.client import ServeClient
from repro.serve.httpd import http_call
from repro.serve.namenode_service import NamenodeConfig, NamenodeServer
from repro.serve.supervisor import ClusterSupervisor, ServeConfig

pytestmark = pytest.mark.serve

# Fast timings so the whole module stays in the tens of seconds.
FAST = ServeConfig(
    num_racks=2,
    datanodes_per_rack=2,
    capacity_blocks=64,
    heartbeat_interval=0.25,
    heartbeat_expiry=1.5,
    default_replication=2,
    aurora_period=5.0,
)


@pytest.fixture(scope="module")
def cluster():
    supervisor = ClusterSupervisor(FAST)
    supervisor.start()
    supervisor.wait_ready()
    yield supervisor
    supervisor.stop()


@pytest.fixture(scope="module")
def sdk(cluster):
    return ServeClient(
        cluster.namenode_address,
        retry_policy=RetryPolicy(
            max_attempts=8, base_delay=0.2, max_delay=2.0, jitter=0.1
        ),
        rng=random.Random(7),
    )


def test_cluster_reports_healthy(cluster, sdk):
    health = sdk.healthz()
    assert health["ok"] is True
    assert health["safe_mode"] is False
    status = sdk.status()
    assert sorted(status["live_datanodes"]) == [0, 1, 2, 3]


def test_write_and_read_round_trip_bytes(cluster, sdk):
    rng = random.Random(11)
    payloads = [bytes(rng.randrange(256) for _ in range(2048))
                for _ in range(3)]
    info = sdk.write_file("/e2e/data", payloads)
    assert len(info.blocks) == len(payloads)
    for block in info.blocks:
        assert len(block.locations) == 2
    reads = sdk.read_file("/e2e/data")
    assert [r.data for r in reads] == payloads


def test_metrics_served_over_the_wire(cluster):
    status, body, _headers = http_call(
        cluster.namenode_address, "GET", "/metrics"
    )
    assert status == 200
    text = body.decode("utf-8") if isinstance(body, bytes) else str(body)
    assert "# TYPE repro_" in text
    assert "repro_serve_http_requests_total" in text
    dn_address = next(iter(cluster.datanode_addresses.values()))
    status, body, _headers = http_call(dn_address, "GET", "/metrics")
    assert status == 200
    text = body.decode("utf-8") if isinstance(body, bytes) else str(body)
    assert "# TYPE repro_" in text


def test_follower_redirects_to_leader_and_sdk_follows(cluster):
    """A non-leader namenode answers 307 + leader hint; the SDK chases it."""
    follower = NamenodeServer(NamenodeConfig(
        port=0, leader_address=cluster.namenode_address
    ))
    captured = {}
    ready = threading.Event()
    loop = asyncio.new_event_loop()

    def announce(address):
        captured["address"] = address
        ready.set()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(follower.run(announce=announce))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10.0)
    try:
        status, body, headers = http_call(
            captured["address"], "GET", "/v1/files"
        )
        assert status == 307
        assert headers["location"].endswith(cluster.namenode_address)
        assert body["leader"] == cluster.namenode_address

        redirected = ServeClient(captured["address"])
        assert "/e2e/data" in redirected.list_files()
    finally:
        loop.call_soon_threadsafe(follower.request_stop)
        thread.join(10.0)
        loop.close()
    assert not thread.is_alive()


def test_kill_datanode_failover_and_self_repair(cluster, sdk):
    """The crown jewel: SIGKILL a serving datanode, reads stay correct,
    and re-replication restores fsck health over the wire."""
    info = sdk.lookup("/e2e/data")
    first_read = sdk.read_block(info.blocks[0].block_id)
    victim = first_read.source
    cluster.kill_datanode(victim)

    payloads = [r.data for r in sdk.read_file("/e2e/data")]
    again = sdk.read_block(info.blocks[0].block_id)
    assert again.data == first_read.data
    assert again.source != victim
    assert [len(p) for p in payloads] == [2048, 2048, 2048]

    # Right after the SIGKILL the namenode's *belief* still lists the
    # victim, so fsck can look healthy before the failure is detected.
    # Wait for the heartbeat expiry to land first, then for repair.
    deadline = time.monotonic() + 3 * FAST.heartbeat_expiry + 30.0
    status = sdk.status()
    while time.monotonic() < deadline:
        status = sdk.status()
        if victim not in status["live_datanodes"]:
            break
        time.sleep(0.25)
    assert victim not in status["live_datanodes"], (
        f"heartbeat expiry never detected the kill: {status}"
    )

    healthy = False
    report = {}
    while time.monotonic() < deadline:
        report = sdk.fsck()
        if report.get("healthy"):
            healthy = True
            break
        time.sleep(0.5)
    assert healthy, f"cluster did not repair in time: {report}"
    status = sdk.status()
    assert status["under_replicated"] == 0
    assert status["replications_completed"] >= 1
