"""Round-trip property tests for the wire schemas and the error codec.

The SDK's failover semantics depend on every message and every
exception surviving the socket intact: a ``ChecksumError`` raised by
the namenode must come out of ``decode_error`` as a ``ChecksumError``
(not some parent class), and a schema must reject unknown fields
rather than silently truncate on drift.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    ChecksumError,
    DatanodeUnavailableError,
    DfsError,
    FencedError,
    OverloadSheddedError,
    SafeModeError,
)
from repro.serve.wire import (
    ERROR_CODES,
    WIRE_SCHEMAS,
    AccessReport,
    BlockInfo,
    BlockReportRequest,
    CorruptReport,
    CreateFileRequest,
    FileInfo,
    HeartbeatRequest,
    LocateResponse,
    PullRequest,
    ReplicaLocation,
    ScrubSummary,
    WireError,
    decode_error,
    encode_error,
    error_code_for,
    payload_checksum,
)

ids = st.integers(min_value=0, max_value=2**40)
sizes = st.integers(min_value=0, max_value=2**40)
names = st.text(min_size=0, max_size=40)
addresses = st.from_regex(r"127\.0\.0\.1:[0-9]{2,5}", fullmatch=True)

locations = st.builds(ReplicaLocation, node=ids, address=addresses)
block_infos = st.builds(
    BlockInfo,
    block_id=ids,
    size=sizes,
    generation=ids,
    locations=st.lists(locations, max_size=4),
)

# One strategy per schema; every schema in WIRE_SCHEMAS must appear
# here — the coverage test below enforces it.
SCHEMA_STRATEGIES = {
    ReplicaLocation: locations,
    BlockInfo: block_infos,
    CreateFileRequest: st.builds(
        CreateFileRequest,
        path=names,
        num_blocks=st.integers(min_value=1, max_value=64),
        block_size=sizes,
        replication=st.one_of(st.none(), st.integers(1, 9)),
        rack_spread=st.one_of(st.none(), st.integers(1, 4)),
        writer=st.one_of(st.none(), ids),
    ),
    FileInfo: st.builds(
        FileInfo,
        path=names,
        file_id=ids,
        block_size=sizes,
        blocks=st.lists(block_infos, max_size=3),
    ),
    HeartbeatRequest: st.builds(
        HeartbeatRequest,
        node=ids,
        saturation=st.floats(0.0, 1.0, allow_nan=False),
        used_blocks=sizes,
    ),
    BlockReportRequest: st.builds(
        BlockReportRequest,
        node=ids,
        address=addresses,
        capacity_blocks=sizes,
        blocks=st.lists(
            st.tuples(ids, ids, ids), max_size=8
        ).map(tuple),
    ),
    LocateResponse: st.builds(
        LocateResponse,
        block_id=ids,
        size=sizes,
        generation=ids,
        candidates=st.lists(locations, max_size=4),
    ),
    AccessReport: st.builds(
        AccessReport, block_id=ids, reader=ids, source=ids
    ),
    CorruptReport: st.builds(
        CorruptReport, block_id=ids, node=ids, detector=names
    ),
    PullRequest: st.builds(
        PullRequest,
        block_id=ids,
        source_address=addresses,
        generation=ids,
    ),
    ScrubSummary: st.builds(
        ScrubSummary,
        replicas_verified=sizes,
        corrupt_found=sizes,
        nodes_scrubbed=sizes,
        nodes_unreachable=sizes,
    ),
    WireError: st.builds(
        WireError,
        error=st.sampled_from(sorted(ERROR_CODES)),
        message=names,
        leader=st.one_of(st.none(), addresses),
    ),
}


def test_every_schema_has_a_strategy():
    assert set(SCHEMA_STRATEGIES) == set(WIRE_SCHEMAS)


@pytest.mark.parametrize(
    "schema", WIRE_SCHEMAS, ids=lambda s: s.__name__
)
def test_round_trip_through_json(schema):
    @given(SCHEMA_STRATEGIES[schema])
    def check(message):
        wire = json.loads(json.dumps(message.to_wire()))
        assert schema.from_wire(wire) == message

    check()


@pytest.mark.parametrize(
    "schema", WIRE_SCHEMAS, ids=lambda s: s.__name__
)
def test_unknown_fields_are_rejected(schema):
    @given(SCHEMA_STRATEGIES[schema])
    def check(message):
        payload = dict(message.to_wire(), bogus_field=1)
        with pytest.raises(DfsError, match="unknown wire fields"):
            schema.from_wire(payload)

    check()


class TestErrorCodec:
    @pytest.mark.parametrize(
        "code", sorted(ERROR_CODES), ids=str
    )
    def test_class_fidelity(self, code):
        cls = ERROR_CODES[code]
        exc = cls("boom")
        payload = json.loads(json.dumps(encode_error(exc)))
        revived = decode_error(payload)
        # Exact class, not just an ancestor: ``except ChecksumError``
        # must behave identically on both sides of the socket.
        assert type(revived) is cls
        assert "boom" in str(revived)

    def test_most_specific_code_wins(self):
        # ChecksumError subclasses DatanodeUnavailableError and
        # FencedError subclasses SafeModeError; encoding must keep the
        # leaf class, not collapse onto the parent.
        assert error_code_for(ChecksumError("x")) == "checksum"
        assert error_code_for(
            DatanodeUnavailableError("x")
        ) == "datanode-unavailable"
        assert error_code_for(FencedError("x")) == "fenced"
        assert error_code_for(SafeModeError("x")) == "safe-mode"

    def test_failover_semantics_preserved(self):
        # The SDK's except-clauses rely on the revived classes keeping
        # their inheritance relationships.
        revived = decode_error(encode_error(ChecksumError("rot")))
        assert isinstance(revived, ChecksumError)
        assert isinstance(revived, DatanodeUnavailableError)
        revived = decode_error(encode_error(OverloadSheddedError("shed")))
        assert isinstance(revived, OverloadSheddedError)
        revived = decode_error(encode_error(FencedError("old leader")))
        assert isinstance(revived, FencedError)
        assert isinstance(revived, SafeModeError)

    def test_unknown_code_degrades_to_dfs_error(self):
        revived = decode_error({"error": "from-the-future", "message": "?"})
        assert type(revived) is DfsError

    def test_foreign_exception_encodes_as_internal(self):
        payload = encode_error(ValueError("not ours"))
        assert payload["error"] == "internal"
        assert type(decode_error(payload)) is DfsError

    def test_leader_hint_round_trips(self):
        payload = encode_error(
            SafeModeError("not the leader"), leader="127.0.0.1:9000"
        )
        assert payload["leader"] == "127.0.0.1:9000"


@given(st.binary(max_size=4096))
def test_payload_checksum_is_stable_and_bounded(data):
    value = payload_checksum(data)
    assert 0 <= value <= 0xFFFFFFFF
    assert payload_checksum(data) == value


@given(st.binary(min_size=1, max_size=4096))
def test_payload_checksum_detects_a_flipped_byte(data):
    damaged = bytes([data[0] ^ 0xFF]) + data[1:]
    assert payload_checksum(damaged) != payload_checksum(data)
