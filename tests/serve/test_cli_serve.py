"""`repro serve --check` boots a disposable cluster on ephemeral ports."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.serve


def test_serve_check_exits_zero_and_writes_report(tmp_path, capsys):
    out = tmp_path / "reports" / "serve-check.json"
    code = main([
        "serve", "--check",
        "--racks", "2", "--datanodes-per-rack", "1",
        "--capacity", "32",
        "--heartbeat-interval", "0.25", "--heartbeat-expiry", "1.5",
        "--json", str(out),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["ok"] is True
    assert report["health"]["safe_mode"] is False
    assert sorted(report["health"]["live_datanodes"]) == [0, 1]
    assert report["metrics_families"] > 0
    capsys.readouterr()
