"""Loopback tests for the stdlib HTTP plumbing in repro.serve.httpd."""

import asyncio
import threading

import pytest

from repro.errors import (
    BlockNotFoundError,
    CapacityExceededError,
    ChecksumError,
    DatanodeUnavailableError,
    DfsError,
    FencedError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
    NoLeaderError,
    OverloadSheddedError,
    ReproError,
    SafeModeError,
)
from repro.serve.httpd import (
    HttpCallError,
    HttpServer,
    Response,
    Route,
    http_call,
    status_for_error,
)
from repro.serve.wire import decode_error


@pytest.mark.parametrize(
    "exc,status",
    [
        (ChecksumError("rot"), 502),
        (OverloadSheddedError("shed"), 503),
        (FencedError("fenced"), 503),
        (SafeModeError("booting"), 503),
        (NoLeaderError("no leader"), 503),
        (FileNotFoundInDfsError("missing"), 404),
        (BlockNotFoundError("missing"), 404),
        (DatanodeUnavailableError("down"), 404),
        (FileExistsInDfsError("dup"), 409),
        (CapacityExceededError("full"), 507),
        (DfsError("generic"), 400),
        (ReproError("generic"), 400),
        (ValueError("foreign"), 500),
    ],
    ids=lambda v: type(v).__name__ if isinstance(v, BaseException) else str(v),
)
def test_status_for_error(exc, status):
    assert status_for_error(exc) == status


class TestRoute:
    def test_static_match(self):
        route = Route("GET", "/v1/status", None)
        assert route.match("GET", "/v1/status") == {}
        assert route.match("POST", "/v1/status") is None
        assert route.match("GET", "/v1/other") is None

    def test_params_are_extracted(self):
        route = Route("GET", "/v1/blocks/{block_id}/locations", None)
        assert route.match("GET", "/v1/blocks/17/locations") == {
            "block_id": "17"
        }
        assert route.match("GET", "/v1/blocks/17") is None


@pytest.fixture
def loopback():
    """A live HttpServer on an ephemeral port, run in a side thread."""
    server = HttpServer(label="test")

    async def echo(request):
        return Response(200, {
            "path": request.path,
            "params": request.params,
            "query": request.query,
            "body": request.json(),
        })

    async def blob(request):
        return Response(200, b"\x00\xffbinary", headers={"X-Extra": "yes"})

    async def shed(request):
        raise OverloadSheddedError("queue full on node 3")

    async def crash(request):
        raise RuntimeError("handler bug")

    server.route("POST", "/echo/{name}", echo)
    server.route("GET", "/blob", blob)
    server.route("GET", "/shed", shed)
    server.route("GET", "/crash", crash)

    loop = asyncio.new_event_loop()
    started = threading.Event()

    async def boot():
        await server.start("127.0.0.1", 0)
        started.set()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(boot())
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(5.0)
    yield server
    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(5.0)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(5.0)
    loop.close()


class TestLoopback:
    def test_json_round_trip_with_params_and_query(self, loopback):
        status, body, _headers = http_call(
            loopback.address,
            "POST",
            "/echo/alpha?limit=3",
            {"value": 42},
        )
        assert status == 200
        assert body == {
            "path": "/echo/alpha",
            "params": {"name": "alpha"},
            "query": {"limit": "3"},
            "body": {"value": 42},
        }

    def test_binary_response_and_custom_header(self, loopback):
        status, body, headers = http_call(loopback.address, "GET", "/blob")
        assert status == 200
        assert body == b"\x00\xffbinary"
        assert headers["x-extra"] == "yes"

    def test_library_error_becomes_decodable_payload(self, loopback):
        status, body, _headers = http_call(loopback.address, "GET", "/shed")
        assert status == 503
        revived = decode_error(body)
        assert isinstance(revived, OverloadSheddedError)
        assert "queue full" in str(revived)

    def test_handler_crash_is_a_500_not_a_dead_server(self, loopback):
        status, body, _headers = http_call(loopback.address, "GET", "/crash")
        assert status == 500
        assert isinstance(decode_error(body), DfsError)
        # The connection loop must survive the crash.
        status, _body, _headers = http_call(loopback.address, "GET", "/blob")
        assert status == 200

    def test_unknown_path_is_404(self, loopback):
        status, body, _headers = http_call(loopback.address, "GET", "/nope")
        assert status == 404
        assert isinstance(decode_error(body), DfsError)

    def test_wrong_method_is_405(self, loopback):
        status, _body, _headers = http_call(loopback.address, "GET", "/echo/x")
        assert status == 405

    def test_refused_connection_raises_http_call_error(self):
        with pytest.raises(HttpCallError):
            http_call("127.0.0.1:1", "GET", "/healthz", timeout=1.0)
