"""Conformance tests for the DfsBackend protocol via SimBackend.

These assertions are written against the protocol surface only, so they
describe the behaviour both deployment modes must share; the socket
variant is exercised end-to-end in ``test_e2e_sockets.py``.
"""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import BlockNotFoundError, FileNotFoundInDfsError
from repro.serve.backend import DfsBackend, SimBackend
from repro.serve.client import ServeClient
from repro.serve.wire import FileInfo, payload_checksum


def build_backend(seed=0, racks=2, per_rack=2, capacity=64):
    topology = ClusterTopology.uniform(racks, per_rack, capacity)
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed + 1),
        default_replication=2,
    )
    return SimBackend(namenode)


def test_both_implementations_satisfy_the_protocol():
    assert isinstance(build_backend(), DfsBackend)
    # Structural check only — no server needed to verify the surface.
    assert issubclass(ServeClient, DfsBackend)


class TestSimBackendConformance:
    def test_write_then_read_round_trips_bytes(self):
        backend = build_backend()
        payloads = [b"alpha" * 100, b"beta" * 200, b"\x00" * 64]
        info = backend.write_file("/data/a", payloads)
        assert isinstance(info, FileInfo)
        assert len(info.blocks) == len(payloads)
        reads = backend.read_file("/data/a")
        assert [r.data for r in reads] == payloads
        for read in reads:
            assert read.checksum == payload_checksum(read.data)
            assert read.attempts >= 1
            assert read.failovers == 0

    def test_read_block_fails_over_after_crash(self):
        backend = build_backend()
        info = backend.write_file("/data/a", [b"payload" * 10])
        block = info.blocks[0]
        assert len(block.locations) == 2
        primary = backend.namenode.replica_preference(
            block.block_id, backend.reader
        )[0]
        backend.namenode.datanode(primary).crash()
        read = backend.read_block(block.block_id)
        assert read.data == b"payload" * 10
        assert read.source != primary
        assert read.failovers >= 1

    def test_unknown_block_raises(self):
        backend = build_backend()
        with pytest.raises(BlockNotFoundError):
            backend.read_block(999_999)

    def test_delete_removes_file_and_contents(self):
        backend = build_backend()
        info = backend.write_file("/data/a", [b"x" * 10])
        backend.delete_file("/data/a")
        assert "/data/a" not in backend.list_files()
        with pytest.raises(FileNotFoundInDfsError):
            backend.lookup("/data/a")
        with pytest.raises(BlockNotFoundError):
            backend.read_block(info.blocks[0].block_id)

    def test_list_files(self):
        backend = build_backend()
        backend.write_file("/a", [b"1"])
        backend.write_file("/b", [b"2"])
        assert sorted(backend.list_files()) == ["/a", "/b"]

    def test_set_replication_changes_targets(self):
        backend = build_backend()
        info = backend.write_file("/data/a", [b"x" * 10], replication=2)
        backend.set_replication("/data/a", 3)
        block_id = info.blocks[0].block_id
        meta = backend.namenode.blockmap.meta(block_id)
        assert meta.replication_factor == 3

    def test_fsck_healthy_after_writes(self):
        backend = build_backend()
        backend.write_file("/data/a", [b"x" * 10, b"y" * 10])
        report = backend.fsck()
        assert report["healthy"] is True
        report = backend.fsck(verify=True)
        assert report["healthy"] is True

    def test_status_shape_matches_wire_status(self):
        backend = build_backend()
        backend.write_file("/data/a", [b"x" * 10])
        status = backend.status()
        # Keys shared with the network namenode's /v1/status payload.
        assert status["files"] == 1
        assert status["blocks"] == 1
        assert status["safe_mode"] is False
        assert status["under_replicated"] == 0
        assert set(status["live_datanodes"]) == {0, 1, 2, 3}
        assert status["replications_completed"] == 0
