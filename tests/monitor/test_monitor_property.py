"""Property test: bucketed and exact monitors agree at bucket boundaries.

The bucketed monitor's contract is *exactness at bucket-aligned query
times* — which covers every reconfiguration-period boundary for the
stock window/period settings, since the bucket width divides the
period.  This pins the equivalence over random access patterns.

Access and query times are generated on a grid of ``width / 8`` so all
bucket arithmetic is exact in binary floating point (the sampled
windows make ``window / num_buckets`` itself exact); the equivalence is
about eviction semantics, not float rounding.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.usage import UsageMonitor

_WINDOWS = [32.0, 64.0, 7200.0]
_BUCKET_COUNTS = [1, 4, 64]


@settings(max_examples=80, deadline=None)
@given(
    window=st.sampled_from(_WINDOWS),
    num_buckets=st.sampled_from(_BUCKET_COUNTS),
    accesses=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 512)),
        max_size=60,
    ),
    query_steps=st.lists(st.integers(0, 600), min_size=1, max_size=6),
)
def test_bucketed_equals_exact_at_bucket_boundaries(
    window, num_buckets, accesses, query_steps
):
    width = window / num_buckets
    bucketed = UsageMonitor(window=window, num_buckets=num_buckets)
    exact = UsageMonitor(window=window, exact=True)
    # Monitors observe a non-decreasing clock in real use.
    for block, step in sorted(accesses, key=lambda pair: pair[1]):
        time = step * (width / 8)
        bucketed.record_access(block, time)
        exact.record_access(block, time)
    assert bucketed.total_recorded == exact.total_recorded
    for step in sorted(query_steps):
        now = step * width  # bucket-aligned by construction
        for block in range(4):
            assert (
                bucketed.popularity(block, now)
                == exact.popularity(block, now)
            ), (block, now)
        assert bucketed.window_evictions == exact.window_evictions


@settings(max_examples=40, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 512)),
        max_size=60,
    ),
    query_step=st.integers(0, 600),
)
def test_snapshots_agree_at_bucket_boundaries(accesses, query_step):
    window, num_buckets = 64.0, 64
    width = window / num_buckets
    bucketed = UsageMonitor(window=window, num_buckets=num_buckets)
    exact = UsageMonitor(window=window, exact=True)
    for block, step in sorted(accesses, key=lambda pair: pair[1]):
        time = step * (width / 8)
        bucketed.record_access(block, time)
        exact.record_access(block, time)
    now = query_step * width
    assert bucketed.snapshot(now) == exact.snapshot(now)


@settings(max_examples=40, deadline=None)
@given(
    accesses=st.lists(st.integers(0, 512), max_size=60),
    query_step=st.integers(0, 600),
)
def test_bucketed_never_undercounts(accesses, query_step):
    # At *arbitrary* (not bucket-aligned) query times the bucketed count
    # may overshoot by accesses in the cutoff's partial bucket, but it
    # must never drop an in-window access.
    window, num_buckets = 64.0, 64
    width = window / num_buckets
    bucketed = UsageMonitor(window=window, num_buckets=num_buckets)
    exact = UsageMonitor(window=window, exact=True)
    for step in sorted(accesses):
        time = step * (width / 8)
        bucketed.record_access(0, time)
        exact.record_access(0, time)
    now = query_step * (width / 8)  # may fall mid-bucket
    assert bucketed.popularity(0, now) >= exact.popularity(0, now)
