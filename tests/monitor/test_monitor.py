"""Unit tests for the usage monitor and popularity predictors."""

import pytest

from repro.errors import InvalidProblemError
from repro.monitor.forecast import Ar1Predictor, EwmaPredictor, HistoricalPredictor
from repro.monitor.usage import UsageMonitor


class TestUsageMonitor:
    def test_counts_accesses_inside_window(self):
        monitor = UsageMonitor(window=100.0)
        monitor.record_access(1, 10.0)
        monitor.record_access(1, 20.0)
        monitor.record_access(2, 30.0)
        assert monitor.popularity(1, now=50.0) == 2
        assert monitor.popularity(2, now=50.0) == 1
        assert monitor.popularity(3, now=50.0) == 0

    def test_window_expiry(self):
        monitor = UsageMonitor(window=100.0)
        monitor.record_access(1, 10.0)
        monitor.record_access(1, 150.0)
        assert monitor.popularity(1, now=200.0) == 1
        assert monitor.popularity(1, now=300.0) == 0

    def test_snapshot_drops_expired_blocks(self):
        monitor = UsageMonitor(window=50.0)
        monitor.record_access(1, 0.0)
        monitor.record_access(2, 100.0)
        snapshot = monitor.snapshot(now=120.0)
        assert snapshot == {2: 1}

    def test_record_many(self):
        monitor = UsageMonitor(window=10.0)
        monitor.record_many([1, 2, 3], time=5.0)
        assert monitor.snapshot(now=6.0) == {1: 1, 2: 1, 3: 1}
        assert monitor.total_recorded == 3

    def test_forget(self):
        monitor = UsageMonitor(window=10.0)
        monitor.record_access(1, 0.0)
        monitor.forget(1)
        assert monitor.popularity(1, now=1.0) == 0

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            UsageMonitor(window=0.0)


class TestUsageMonitorEdgeCases:
    def test_access_at_exact_window_boundary_is_retained(self):
        # The window is [now - W, now] inclusive: an access exactly W
        # seconds old still counts (eviction uses strict <).
        monitor = UsageMonitor(window=100.0)
        monitor.record_access(1, 0.0)
        assert monitor.popularity(1, now=100.0) == 1
        assert monitor.window_evictions == 0
        # One instant later it ages out.
        assert monitor.popularity(1, now=100.0 + 1e-9) == 0
        assert monitor.window_evictions == 1

    def test_total_recorded_monotonic_across_evictions(self):
        monitor = UsageMonitor(window=10.0)
        monitor.record_access(1, 0.0)
        monitor.record_access(1, 1.0)
        assert monitor.total_recorded == 2
        assert monitor.popularity(1, now=50.0) == 0  # both evicted
        assert monitor.total_recorded == 2
        monitor.record_access(1, 51.0)
        assert monitor.total_recorded == 3
        assert monitor.window_evictions == 2

    def test_empty_window_snapshot(self):
        monitor = UsageMonitor(window=10.0)
        monitor.record_access(1, 0.0)
        monitor.record_access(2, 1.0)
        assert monitor.snapshot(now=100.0) == {}
        # Expired blocks are dropped entirely, so the next snapshot does
        # not revisit them.
        assert monitor._accesses == {}
        assert monitor.snapshot(now=101.0) == {}

    def test_snapshot_on_fresh_monitor(self):
        monitor = UsageMonitor(window=10.0)
        assert monitor.snapshot(now=0.0) == {}
        assert monitor.total_recorded == 0
        assert monitor.window_evictions == 0


class TestHistoricalPredictor:
    def test_predicts_last_observation(self):
        predictor = HistoricalPredictor()
        assert predictor.predict() == {}
        predictor.observe({1: 5.0, 2: 3.0})
        predictor.observe({1: 7.0})
        assert predictor.predict() == {1: 7.0}


class TestEwmaPredictor:
    def test_blends_observations(self):
        predictor = EwmaPredictor(alpha=0.5)
        predictor.observe({1: 10.0})
        predictor.observe({1: 20.0})
        assert predictor.predict()[1] == pytest.approx(12.5)

    def test_absent_blocks_decay(self):
        predictor = EwmaPredictor(alpha=0.5)
        predictor.observe({1: 16.0})
        predictor.observe({})
        predictor.observe({})
        assert predictor.predict().get(1, 0.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(InvalidProblemError):
            EwmaPredictor(alpha=1.5)


class TestAr1Predictor:
    def test_falls_back_to_last_value_with_short_history(self):
        predictor = Ar1Predictor()
        predictor.observe({1: 5.0})
        assert predictor.predict()[1] == pytest.approx(5.0)

    def test_learns_linear_growth(self):
        predictor = Ar1Predictor(history=8)
        for value in (2.0, 4.0, 8.0, 16.0):
            predictor.observe({1: value})
        # Doubling each period: AR(1) should extrapolate beyond 16.
        assert predictor.predict()[1] > 16.0

    def test_constant_series_predicts_constant(self):
        predictor = Ar1Predictor()
        for _ in range(5):
            predictor.observe({1: 7.0})
        assert predictor.predict()[1] == pytest.approx(7.0)

    def test_never_negative(self):
        predictor = Ar1Predictor()
        for value in (100.0, 50.0, 10.0, 1.0):
            predictor.observe({1: value})
        assert predictor.predict()[1] >= 0.0

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            Ar1Predictor(history=2)
