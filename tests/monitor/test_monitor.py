"""Unit tests for the usage monitor and popularity predictors."""

import pytest

from repro.errors import InvalidProblemError
from repro.monitor.forecast import Ar1Predictor, EwmaPredictor, HistoricalPredictor
from repro.monitor.usage import UsageMonitor


class TestUsageMonitor:
    def test_counts_accesses_inside_window(self):
        monitor = UsageMonitor(window=100.0)
        monitor.record_access(1, 10.0)
        monitor.record_access(1, 20.0)
        monitor.record_access(2, 30.0)
        assert monitor.popularity(1, now=50.0) == 2
        assert monitor.popularity(2, now=50.0) == 1
        assert monitor.popularity(3, now=50.0) == 0

    def test_window_expiry(self):
        monitor = UsageMonitor(window=100.0)
        monitor.record_access(1, 10.0)
        monitor.record_access(1, 150.0)
        assert monitor.popularity(1, now=200.0) == 1
        assert monitor.popularity(1, now=300.0) == 0

    def test_snapshot_drops_expired_blocks(self):
        monitor = UsageMonitor(window=50.0)
        monitor.record_access(1, 0.0)
        monitor.record_access(2, 100.0)
        snapshot = monitor.snapshot(now=120.0)
        assert snapshot == {2: 1}

    def test_record_many(self):
        monitor = UsageMonitor(window=10.0)
        monitor.record_many([1, 2, 3], time=5.0)
        assert monitor.snapshot(now=6.0) == {1: 1, 2: 1, 3: 1}
        assert monitor.total_recorded == 3

    def test_forget(self):
        monitor = UsageMonitor(window=10.0)
        monitor.record_access(1, 0.0)
        monitor.forget(1)
        assert monitor.popularity(1, now=1.0) == 0

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            UsageMonitor(window=0.0)
        with pytest.raises(InvalidProblemError):
            UsageMonitor(window=10.0, num_buckets=0)


class TestBucketedMonitor:
    """The O(buckets) sliding-window mode (the default)."""

    def test_bucketed_is_the_default(self):
        monitor = UsageMonitor(window=100.0)
        assert monitor.exact is False
        assert monitor.num_buckets == 64

    def test_exact_at_bucket_aligned_queries(self):
        # window 64, 64 buckets -> width 1.0; queries at integer times
        # are bucket-aligned, so counts match the exact monitor.
        bucketed = UsageMonitor(window=64.0, num_buckets=64)
        exact = UsageMonitor(window=64.0, exact=True)
        for t in (0.5, 10.2, 63.9):
            bucketed.record_access(1, t)
            exact.record_access(1, t)
        for now in (64.0, 65.0, 74.0, 128.0):
            assert bucketed.popularity(1, now) == exact.popularity(1, now)
        assert bucketed.window_evictions == exact.window_evictions == 3

    def test_overcounts_by_at_most_one_bucket_between_boundaries(self):
        # An access survives until its whole bucket is outside the
        # window: a mid-bucket query may see up to one bucket width of
        # extra (expired) accesses, never fewer than the true count.
        monitor = UsageMonitor(window=64.0, num_buckets=64)
        monitor.record_access(1, 0.0)
        # Truly expired at now = 64.5 (cutoff 0.5), but bucket [0, 1)
        # is only dropped once the cutoff reaches 1.0.
        assert monitor.popularity(1, now=64.5) == 1
        assert monitor.popularity(1, now=65.0) == 0

    def test_record_many_batches_into_one_bucket(self):
        monitor = UsageMonitor(window=64.0, num_buckets=64)
        monitor.record_many([1, 2], time=3.5)
        monitor.record_many([1], time=3.9)
        assert monitor.total_recorded == 3
        assert monitor.snapshot(now=64.0) == {1: 2, 2: 1}
        # Both accesses of block 1 share bucket 3 and age out together.
        assert monitor.snapshot(now=68.0) == {}

    def test_single_bucket_degenerates_to_whole_window(self):
        monitor = UsageMonitor(window=100.0, num_buckets=1)
        monitor.record_access(1, 10.0)
        assert monitor.popularity(1, now=100.0) == 1
        # The lone bucket [0, 100) dies only once the cutoff hits 100.
        assert monitor.popularity(1, now=199.0) == 1
        assert monitor.popularity(1, now=200.0) == 0


class TestPopularityPruning:
    """popularity() must not leave empty per-block entries behind."""

    @pytest.mark.parametrize("exact", [False, True])
    def test_expired_block_is_dropped_in_place(self, exact):
        monitor = UsageMonitor(window=10.0, exact=exact)
        monitor.record_access(1, 0.0)
        monitor.record_access(2, 0.0)
        assert monitor.popularity(1, now=100.0) == 0
        # Block 1 was pruned by the popularity probe itself; block 2 is
        # still present (untouched) until its own probe or a snapshot.
        assert 1 not in monitor._accesses
        assert 2 in monitor._accesses
        assert monitor.popularity(2, now=100.0) == 0
        assert monitor._accesses == {}

    @pytest.mark.parametrize("exact", [False, True])
    def test_repeated_probes_do_not_accrete_state(self, exact):
        monitor = UsageMonitor(window=10.0, exact=exact)
        for block in range(50):
            monitor.record_access(block, 0.0)
            assert monitor.popularity(block, now=1000.0) == 0
        assert monitor._accesses == {}


class TestUsageMonitorEdgeCases:
    def test_access_at_exact_window_boundary_is_retained(self):
        # The window is [now - W, now] inclusive: an access exactly W
        # seconds old still counts (eviction uses strict <).  Sub-bucket
        # cutoffs need the exact (timestamped) monitor.
        monitor = UsageMonitor(window=100.0, exact=True)
        monitor.record_access(1, 0.0)
        assert monitor.popularity(1, now=100.0) == 1
        assert monitor.window_evictions == 0
        # One instant later it ages out.
        assert monitor.popularity(1, now=100.0 + 1e-9) == 0
        assert monitor.window_evictions == 1

    def test_total_recorded_monotonic_across_evictions(self):
        monitor = UsageMonitor(window=10.0)
        monitor.record_access(1, 0.0)
        monitor.record_access(1, 1.0)
        assert monitor.total_recorded == 2
        assert monitor.popularity(1, now=50.0) == 0  # both evicted
        assert monitor.total_recorded == 2
        monitor.record_access(1, 51.0)
        assert monitor.total_recorded == 3
        assert monitor.window_evictions == 2

    def test_empty_window_snapshot(self):
        monitor = UsageMonitor(window=10.0)
        monitor.record_access(1, 0.0)
        monitor.record_access(2, 1.0)
        assert monitor.snapshot(now=100.0) == {}
        # Expired blocks are dropped entirely, so the next snapshot does
        # not revisit them.
        assert monitor._accesses == {}
        assert monitor.snapshot(now=101.0) == {}

    def test_snapshot_on_fresh_monitor(self):
        monitor = UsageMonitor(window=10.0)
        assert monitor.snapshot(now=0.0) == {}
        assert monitor.total_recorded == 0
        assert monitor.window_evictions == 0


class TestHistoricalPredictor:
    def test_predicts_last_observation(self):
        predictor = HistoricalPredictor()
        assert predictor.predict() == {}
        predictor.observe({1: 5.0, 2: 3.0})
        predictor.observe({1: 7.0})
        assert predictor.predict() == {1: 7.0}


class TestEwmaPredictor:
    def test_blends_observations(self):
        predictor = EwmaPredictor(alpha=0.5)
        predictor.observe({1: 10.0})
        predictor.observe({1: 20.0})
        assert predictor.predict()[1] == pytest.approx(12.5)

    def test_absent_blocks_decay(self):
        predictor = EwmaPredictor(alpha=0.5)
        predictor.observe({1: 16.0})
        predictor.observe({})
        predictor.observe({})
        assert predictor.predict().get(1, 0.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(InvalidProblemError):
            EwmaPredictor(alpha=1.5)


class TestAr1Predictor:
    def test_falls_back_to_last_value_with_short_history(self):
        predictor = Ar1Predictor()
        predictor.observe({1: 5.0})
        assert predictor.predict()[1] == pytest.approx(5.0)

    def test_learns_linear_growth(self):
        predictor = Ar1Predictor(history=8)
        for value in (2.0, 4.0, 8.0, 16.0):
            predictor.observe({1: value})
        # Doubling each period: AR(1) should extrapolate beyond 16.
        assert predictor.predict()[1] > 16.0

    def test_constant_series_predicts_constant(self):
        predictor = Ar1Predictor()
        for _ in range(5):
            predictor.observe({1: 7.0})
        assert predictor.predict()[1] == pytest.approx(7.0)

    def test_never_negative(self):
        predictor = Ar1Predictor()
        for value in (100.0, 50.0, 10.0, 1.0):
            predictor.observe({1: value})
        assert predictor.predict()[1] >= 0.0

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            Ar1Predictor(history=2)
