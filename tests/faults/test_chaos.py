"""End-to-end chaos runs: the acceptance bar for the resilience stack.

A seeded storm of crashes, partitions and flaky transfers must end with
zero permanently lost blocks, reconciled metadata (``Namenode.audit``)
and the retry/failover/recovery metrics emitted through ``repro.obs``.
"""

import pytest

from repro import obs
from repro.errors import InvalidProblemError
from repro.experiments.chaos import ChaosConfig, render_chaos, run_chaos

pytestmark = pytest.mark.chaos


def small_config(**overrides):
    defaults = dict(horizon=1800.0, drain=900.0, seed=0)
    defaults.update(overrides)
    return ChaosConfig(**defaults)


class TestChaosRun:
    def test_storm_loses_no_blocks(self):
        result = run_chaos(small_config())
        assert result.total_blocks > 0
        assert result.blocks_lost == 0           # durability held
        assert result.reads_attempted > 0
        assert result.read_availability >= 0.95  # failover kept reads up
        assert sum(result.faults_injected.values()) > 0
        # run_chaos audited the namenode before returning, so every
        # surviving migration/replication reconciled with the block map.

    def test_report_renders(self):
        result = run_chaos(small_config(horizon=900.0, drain=600.0))
        report = render_chaos(result)
        assert "blocks permanently lost   0" in report
        assert "read availability" in report

    def test_same_seed_same_storm(self):
        config = small_config(horizon=900.0, drain=600.0, seed=7)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.faults_injected == second.faults_injected
        assert first.reads_served == second.reads_served
        assert first.read_failovers == second.read_failovers
        assert first.recovery_times == second.recovery_times
        assert first.transfers_failed == second.transfers_failed

    def test_config_validation(self):
        with pytest.raises(InvalidProblemError):
            ChaosConfig(horizon=0.0)
        with pytest.raises(InvalidProblemError):
            ChaosConfig(rack_spread=5, replication=3)


class TestChaosMetrics:
    def test_resilience_metrics_emitted(self):
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            result = run_chaos(small_config(seed=1))
            snapshot = registry.snapshot()
        finally:
            registry.reset()
            registry.disable()
        assert result.blocks_lost == 0
        injected = snapshot["repro_faults_injected_total"]["series"]
        assert sum(injected.values()) > 0
        for name in (
            "repro_dfs_read_failovers_total",
            "repro_dfs_transfer_failures_total",
            "repro_dfs_transfer_retries_total",
            "repro_dfs_heartbeat_detected_failures_total",
        ):
            series = snapshot[name]["series"]
            assert sum(series.values()) > 0, name
        recovery = snapshot["repro_dfs_recovery_seconds"]["series"]
        assert recovery[""]["count"] > 0, "no recovery episodes observed"
