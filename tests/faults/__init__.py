"""Tests for the fault-injection and retry subsystem."""
