"""Silent-corruption chaos: the acceptance bar for the integrity plane.

A seeded stream of bit-rot and torn-write strikes must end with zero
blocks left without a verified replica, every detected corruption
episode repaired from a verified source, the scrubber winning the
detection race against client reads, and a deep (checksum-verifying)
fsck finding nothing the detectors missed.
"""

import pytest

from repro import obs
from repro.errors import InvalidProblemError
from repro.experiments.bitrot import (
    BitRotConfig,
    default_integrity_slos,
    render_bit_rot,
    run_bit_rot,
)
from repro.faults import (
    BitRotProfile,
    FaultInjector,
    TornWriteProfile,
    profile_from_name,
)

pytestmark = [pytest.mark.chaos, pytest.mark.integrity]


def small_config(**overrides):
    defaults = dict(
        horizon=1800.0, drain=900.0,
        bitrot_mtbf=600.0, tornwrite_mtbf=1200.0,
        num_files=8, seed=0,
    )
    defaults.update(overrides)
    return BitRotConfig(**defaults)


class TestCorruptionProfiles:
    def test_profiles_by_name(self):
        assert isinstance(profile_from_name("bitrot"), BitRotProfile)
        assert isinstance(profile_from_name("tornwrite"), TornWriteProfile)
        assert profile_from_name("bitrot", mtbf=60.0).mtbf == 60.0

    def test_mtbf_validated(self):
        with pytest.raises(Exception):
            BitRotProfile(mtbf=0.0)

    def test_strikes_are_one_shot(self):
        # No recovery events: rot does not heal itself.
        import random

        from repro.cluster.topology import ClusterTopology
        from repro.dfs.namenode import Namenode
        from repro.dfs.policies import DefaultHdfsPolicy
        from repro.simulation.engine import Simulation

        sim = Simulation()
        topo = ClusterTopology.uniform(2, 2, capacity=40)
        namenode = Namenode(
            topo, placement_policy=DefaultHdfsPolicy(random.Random(0)),
            sim=sim, rng=random.Random(1),
        )
        injector = FaultInjector(
            sim, namenode,
            [BitRotProfile(mtbf=300.0), TornWriteProfile(mtbf=300.0)],
            horizon=3600.0, seed=3,
        )
        plan = injector.plan()
        assert plan, "an hour at mtbf=300s should strike"
        assert all(not event.is_recovery for event in plan)
        assert {event.kind for event in plan} <= {"bitrot", "tornwrite"}

    def test_strike_corrupts_a_stored_replica(self):
        import random

        from repro.cluster.topology import ClusterTopology
        from repro.dfs.client import DfsClient
        from repro.dfs.namenode import Namenode
        from repro.dfs.policies import DefaultHdfsPolicy
        from repro.simulation.engine import Simulation

        sim = Simulation()
        topo = ClusterTopology.uniform(2, 2, capacity=40)
        namenode = Namenode(
            topo, placement_policy=DefaultHdfsPolicy(random.Random(0)),
            sim=sim, rng=random.Random(1),
        )
        DfsClient(namenode).write_file("/a", 4, block_size=1024)
        injector = FaultInjector(
            sim, namenode, [BitRotProfile(mtbf=120.0)],
            horizon=1800.0, seed=5,
        )
        injector.install()
        sim.run(until=1800.0)
        strikes = injector.injected.get("bitrot", 0)
        assert strikes > 0
        corrupt = sum(
            1 for dn in namenode.datanodes for block in dn.blocks()
            if not dn.verify_replica(block)
        )
        assert corrupt > 0
        # Strikes against empty disks are not counted as injected.
        assert corrupt <= strikes

    def test_strike_on_empty_node_not_counted(self):
        import random

        from repro.cluster.topology import ClusterTopology
        from repro.dfs.namenode import Namenode
        from repro.dfs.policies import DefaultHdfsPolicy
        from repro.simulation.engine import Simulation

        sim = Simulation()
        topo = ClusterTopology.uniform(2, 2, capacity=40)
        namenode = Namenode(
            topo, placement_policy=DefaultHdfsPolicy(random.Random(0)),
            sim=sim, rng=random.Random(1),
        )
        injector = FaultInjector(
            sim, namenode, [BitRotProfile(mtbf=120.0)],
            horizon=1800.0, seed=5,
        )
        injector.install()
        sim.run(until=1800.0)  # no files were ever written
        assert injector.injected.get("bitrot", 0) == 0


class TestBitRotRun:
    def test_rot_is_always_repaired_and_nothing_lost(self):
        result = run_bit_rot(small_config())
        assert result.total_blocks > 0
        assert sum(result.faults_injected.values()) > 0
        assert result.detections.get("scrub", 0) > 0
        # The acceptance bar: when a verified source exists (replication
        # 3, at most one strike per replica between scrub passes), every
        # corruption episode repairs and no block loses all verified
        # replicas.
        assert result.repair_rate == 1.0
        assert result.episodes_unrepaired == 0
        assert result.quarantined_remaining == 0
        assert result.blocks_permanently_lost == 0
        assert result.fsck is not None and result.fsck.healthy

    def test_scrubber_beats_client_detection(self):
        result = run_bit_rot(small_config())
        assert result.scrub_beats_client is True

    def test_corrupt_reads_never_surface_data(self):
        result = run_bit_rot(small_config())
        # Every read either came back verified or raised; corrupt
        # replicas that a client did hit were failed over, not served.
        assert result.reads_attempted > 0
        assert (result.reads_served + result.reads_failed
                == result.reads_attempted)
        assert result.reads_failed_checksum == 0

    def test_same_seed_same_rot(self):
        config = small_config(seed=11)
        first = run_bit_rot(config)
        second = run_bit_rot(config)
        assert first.summary() == second.summary()
        assert first.detection_latencies == second.detection_latencies
        assert first.repair_times == second.repair_times

    def test_report_renders(self):
        result = run_bit_rot(small_config())
        report = render_bit_rot(result)
        assert "blocks permanently lost   0" in report
        assert "scrubber beats client     yes" in report
        assert "episodes still open       0" in report

    def test_config_validation(self):
        with pytest.raises(InvalidProblemError):
            BitRotConfig(horizon=0.0)
        with pytest.raises(InvalidProblemError):
            BitRotConfig(bitrot_mtbf=-1.0)
        with pytest.raises(InvalidProblemError):
            BitRotConfig(rack_spread=5, replication=3)

    def test_default_slos_include_durability(self):
        slos = default_integrity_slos(BitRotConfig())
        names = {objective.name for objective in slos}
        assert "data-durability" in names
        assert "corruption-time-to-detection" in names


class TestBitRotMetrics:
    def test_integrity_metrics_emitted(self):
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            result = run_bit_rot(small_config(seed=1))
            snapshot = registry.snapshot()
        finally:
            registry.reset()
            registry.disable()
        assert result.blocks_permanently_lost == 0
        for name in (
            "repro_dfs_integrity_scrubbed_replicas_total",
            "repro_dfs_integrity_scrub_bytes_total",
            "repro_dfs_integrity_scrub_rounds_total",
            "repro_dfs_integrity_corrupt_replicas_total",
            "repro_dfs_integrity_replicas_purged_total",
        ):
            series = snapshot[name]["series"]
            assert sum(series.values()) > 0, name
        detected = snapshot["repro_dfs_integrity_detection_seconds"]["series"]
        assert any(s["count"] > 0 for s in detected.values())
        repaired = snapshot["repro_dfs_integrity_repair_seconds"]["series"]
        assert repaired[""]["count"] > 0, "no repair episodes observed"
