"""Unit tests for the seeded fault injector and its profiles."""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import FaultConfigError
from repro.faults import (
    CrashProfile,
    FaultEvent,
    FaultInjector,
    FlakyTransferProfile,
    GrayNodeProfile,
    MessageLossProfile,
    PartitionProfile,
    profile_from_name,
)
from repro.simulation.engine import Simulation

BLOCK_SIZE = 8 * 1024 * 1024


def build_cluster(seed=0, racks=3, per_rack=3, capacity=60, files=3):
    sim = Simulation()
    topology = ClusterTopology.uniform(racks, per_rack, capacity)
    transfers = TransferService(topology, sim=sim, rng=random.Random(seed + 1))
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(seed + 2)),
        sim=sim,
        transfer_service=transfers,
        rng=random.Random(seed + 3),
    )
    heartbeats = HeartbeatService(sim, namenode)
    client = DfsClient(namenode)
    blocks = []
    for index in range(files):
        meta = client.write_file(
            f"/data/{index}", num_blocks=2, block_size=BLOCK_SIZE
        )
        blocks.extend(meta.block_ids)
    return sim, namenode, heartbeats, client, blocks


class TestProfileValidation:
    @pytest.mark.parametrize("bad", [
        lambda: CrashProfile(mtbf=0.0),
        lambda: CrashProfile(mtbf=-100.0),
        lambda: CrashProfile(repair_time=0.0),
        lambda: GrayNodeProfile(mtbf=0.0),
        lambda: GrayNodeProfile(duration=0.0),
        lambda: GrayNodeProfile(slowdown=1.0),
        lambda: GrayNodeProfile(slowdown=0.5),
        lambda: PartitionProfile(mtbf=0.0),
        lambda: PartitionProfile(duration=-5.0),
        lambda: FlakyTransferProfile(failure_probability=0.0),
        lambda: FlakyTransferProfile(failure_probability=1.5),
        lambda: FlakyTransferProfile(min_fraction=0.0),
        lambda: FlakyTransferProfile(min_fraction=0.9, max_fraction=0.1),
        lambda: MessageLossProfile(loss_probability=0.0),
        lambda: MessageLossProfile(loss_probability=1.0),
    ])
    def test_bad_profiles_rejected(self, bad):
        with pytest.raises(FaultConfigError):
            bad()

    def test_profile_from_name(self):
        profile = profile_from_name("crash", mtbf=123.0)
        assert isinstance(profile, CrashProfile)
        assert profile.mtbf == 123.0
        assert isinstance(profile_from_name("msgloss"), MessageLossProfile)

    def test_unknown_profile_name(self):
        with pytest.raises(FaultConfigError):
            profile_from_name("meteor-strike")

    def test_injector_horizon_must_be_positive(self):
        sim, namenode, _, _, _ = build_cluster()
        with pytest.raises(FaultConfigError):
            FaultInjector(sim, namenode, [CrashProfile()], horizon=0.0)


class TestPlan:
    HORIZON = 40_000.0

    def make(self, profiles, seed=0, heartbeats=None):
        sim, namenode, hb, _, _ = build_cluster(seed=1)
        return FaultInjector(
            sim, namenode, profiles, horizon=self.HORIZON, seed=seed,
            heartbeats=heartbeats or hb,
        )

    def test_same_seed_same_plan(self):
        profiles = [CrashProfile(mtbf=4000.0), PartitionProfile(mtbf=9000.0)]
        plan_a = self.make(profiles, seed=5).plan()
        plan_b = self.make(profiles, seed=5).plan()
        assert plan_a == plan_b
        assert len(plan_a) > 0

    def test_different_seed_different_plan(self):
        profiles = [CrashProfile(mtbf=4000.0)]
        assert self.make(profiles, seed=1).plan() != \
            self.make(profiles, seed=2).plan()

    def test_profiles_have_isolated_streams(self):
        # Adding a second profile must not perturb the first one's
        # events: each profile owns an rng derived from (seed, index).
        crash = CrashProfile(mtbf=4000.0)
        alone = self.make([crash], seed=3).plan()
        paired = self.make(
            [crash, PartitionProfile(mtbf=9000.0)], seed=3
        ).plan()
        assert tuple(e for e in paired if e.kind == "crash") == alone

    def test_events_alternate_per_target(self):
        plan = self.make(
            [CrashProfile(mtbf=3000.0, repair_time=400.0)], seed=4
        ).plan()
        assert plan
        last = {}
        for event in plan:
            key = (event.kind, event.target)
            previous = last.get(key)
            if event.is_recovery:
                # Recovery only ever follows the failure it heals.
                assert previous is not None and not previous.is_recovery
                assert event.time == pytest.approx(previous.time + 400.0)
            else:
                assert previous is None or previous.is_recovery
            last[key] = event
        assert all(e.time for e in plan if not e.is_recovery)

    def test_hook_profiles_schedule_nothing(self):
        injector = self.make(
            [FlakyTransferProfile(), MessageLossProfile()], seed=6
        )
        assert injector.plan() == ()


class TestInstall:
    def test_install_arms_failures_once(self):
        sim, namenode, hb, _, _ = build_cluster()
        injector = FaultInjector(
            sim, namenode, [CrashProfile(mtbf=2000.0)],
            horizon=20_000.0, seed=1, heartbeats=hb,
        )
        armed = injector.install()
        assert armed == sum(1 for e in injector.plan() if not e.is_recovery)
        with pytest.raises(FaultConfigError):
            injector.install()

    def test_message_loss_needs_heartbeat_service(self):
        sim, namenode, _, _, _ = build_cluster()
        injector = FaultInjector(
            sim, namenode, [MessageLossProfile()],
            horizon=1000.0, seed=0, heartbeats=None,
        )
        with pytest.raises(FaultConfigError):
            injector.install()


class TestInjectedFaults:
    """Crafted schedules (via the injector's plan cache) drive the
    liveness machinery deterministically."""

    def test_crash_is_silent_until_heartbeat_expiry(self):
        sim, namenode, heartbeats, _, blocks = build_cluster()
        victim = sorted(namenode.blockmap.locations(blocks[0]))[0]
        injector = FaultInjector(
            sim, namenode,
            [CrashProfile(mtbf=1e9, repair_time=120.0, targets=(victim,))],
            horizon=1000.0, seed=0, heartbeats=heartbeats,
        )
        injector._plan = (
            FaultEvent(40.0, "crash", victim, False),
            FaultEvent(160.0, "crash", victim, True),
        )
        heartbeats.start()
        injector.install()

        sim.run(until=45.0)
        # Ground truth: dead.  Namenode belief: still a replica holder —
        # exactly the stale window the client failover covers.
        assert not namenode.datanode(victim).alive
        assert victim in namenode.blockmap.locations(blocks[0])
        assert victim not in heartbeats.declared_dead()

        sim.run(until=40.0 + heartbeats.expiry + 2 * heartbeats.interval)
        assert victim in heartbeats.declared_dead()
        assert victim not in namenode.blockmap.locations(blocks[0])
        assert injector.injected == {"crash": 1}

        sim.run(until=400.0)
        assert namenode.datanode(victim).alive
        # The recovered disk re-reported: its replica is registered again.
        assert victim in namenode.blockmap.locations(blocks[0])
        assert victim not in heartbeats.declared_dead()
        namenode.audit()

    def test_gray_profile_degrades_then_heals(self):
        sim, namenode, heartbeats, _, _ = build_cluster()
        victim = 2
        injector = FaultInjector(
            sim, namenode,
            [GrayNodeProfile(mtbf=1e9, duration=100.0, slowdown=6.0,
                             targets=(victim,))],
            horizon=1000.0, seed=0, heartbeats=heartbeats,
        )
        injector._plan = (
            FaultEvent(10.0, "gray", victim, False),
            FaultEvent(110.0, "gray", victim, True),
        )
        heartbeats.start()
        injector.install()

        sim.run(until=20.0)
        dn = namenode.datanode(victim)
        assert dn.alive and dn.degraded
        assert dn.slowdown == 6.0
        assert victim in heartbeats.degraded_nodes()
        # Gray nodes keep beating: never declared dead.
        sim.run(until=60.0)
        assert victim not in heartbeats.declared_dead()

        sim.run(until=120.0)
        assert dn.slowdown == 1.0
        assert victim not in heartbeats.degraded_nodes()

    def test_partition_downs_the_whole_rack(self):
        sim, namenode, heartbeats, _, _ = build_cluster()
        rack = 1
        rack_nodes = list(namenode.topology.machines_in_rack(rack))
        injector = FaultInjector(
            sim, namenode,
            [PartitionProfile(mtbf=1e9, duration=120.0, racks=(rack,))],
            horizon=1000.0, seed=0, heartbeats=heartbeats,
        )
        injector._plan = (
            FaultEvent(20.0, "partition", rack, False),
            FaultEvent(140.0, "partition", rack, True),
        )
        injector.install()

        sim.run(until=25.0)
        assert all(not namenode.datanode(n).alive for n in rack_nodes)
        sim.run(until=150.0)
        assert all(namenode.datanode(n).alive for n in rack_nodes)

    def test_overlapping_outages_heal_after_the_last(self):
        # A machine crash inside a partitioned rack: the crash's own
        # recovery fires first but must not resurrect the node while the
        # partition still covers it.
        sim, namenode, heartbeats, _, _ = build_cluster()
        rack = 0
        victim = namenode.topology.machines_in_rack(rack)[0]
        injector = FaultInjector(
            sim, namenode,
            [
                CrashProfile(mtbf=1e9, repair_time=100.0, targets=(victim,)),
                PartitionProfile(mtbf=1e9, duration=200.0, racks=(rack,)),
            ],
            horizon=1000.0, seed=0, heartbeats=heartbeats,
        )
        injector._plan = (
            FaultEvent(10.0, "crash", victim, False),
            FaultEvent(50.0, "partition", rack, False),
            FaultEvent(110.0, "crash", victim, True),
            FaultEvent(250.0, "partition", rack, True),
        )
        injector.install()

        sim.run(until=120.0)  # crash recovery has fired by now
        assert not namenode.datanode(victim).alive
        sim.run(until=260.0)  # partition heal releases the node
        assert namenode.datanode(victim).alive

    def test_flaky_transfers_fail_then_repair_completes(self):
        sim, namenode, heartbeats, _, blocks = build_cluster()
        transfers = namenode.transfers
        injector = FaultInjector(
            sim, namenode,
            [FlakyTransferProfile(failure_probability=1.0)],
            horizon=1000.0, seed=0, heartbeats=heartbeats,
        )
        injector.install()

        victim = sorted(namenode.blockmap.locations(blocks[0]))[0]
        namenode.fail_node(victim)  # triggers re-replication attempts
        sim.run(until=600.0)
        assert transfers.transfers_failed >= 3
        assert transfers.bytes_wasted > 0
        assert namenode.transfer_retries >= 2
        assert namenode.replications_requeued >= 1
        assert injector.injected.get("flaky", 0) >= 3

        # Disarm the hook: the queued repair must now finish.
        transfers.fault_hook = None
        namenode.check_replication()
        sim.run(until=1200.0)
        live = namenode.live_nodes()
        factor = namenode.blockmap.meta(blocks[0]).replication_factor
        assert len(
            namenode.blockmap.live_locations(blocks[0], live)
        ) == factor
        namenode.audit()
