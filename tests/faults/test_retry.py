"""Unit tests for the retry policy and the generic retry loop."""

import random

import pytest

from repro.errors import FaultConfigError, RetryExhaustedError
from repro.faults import RetryPolicy, call_with_retries


class TestRetryPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": -2},
        {"base_delay": -0.1},
        {"multiplier": 0.5},
        {"base_delay": 10.0, "max_delay": 5.0},
        {"jitter": 1.0},
        {"jitter": -0.1},
        {"deadline": 0.0},
        {"deadline": -3.0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(FaultConfigError):
            RetryPolicy(**kwargs)

    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.deadline is None


class TestBackoffDelays:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=2.0,
            max_delay=8.0, jitter=0.0,
        )
        delays = [policy.delay(attempt) for attempt in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_attempt_numbers_start_at_one(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy().delay(0)

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay=2.0, jitter=0.5)
        assert policy.delay(1) == 2.0
        assert policy.delay(1) == 2.0

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=4.0, multiplier=1.0, jitter=0.25,
                             max_delay=4.0)
        jittered = [
            policy.delay(1, random.Random(seed)) for seed in range(50)
        ]
        assert all(3.0 <= delay <= 5.0 for delay in jittered)
        # Same seed -> identical timing; different seeds actually vary.
        assert policy.delay(1, random.Random(7)) == \
            policy.delay(1, random.Random(7))
        assert len(set(jittered)) > 1

    def test_delays_iterator_matches_delay(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
        assert list(policy.delays()) == [1.0, 2.0, 4.0]

    def test_delays_iterator_respects_deadline(self):
        policy = RetryPolicy(max_attempts=10, base_delay=2.0,
                             jitter=0.0, deadline=5.0)
        # 2 + 4 crosses the 5s deadline: nothing is yielded after that.
        assert list(policy.delays()) == [2.0, 4.0]


class TestAdmits:
    def test_attempt_cap(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.admits(1)
        assert policy.admits(2)
        assert not policy.admits(3)
        assert not policy.admits(7)

    def test_deadline_cap(self):
        policy = RetryPolicy(max_attempts=100, deadline=10.0)
        assert policy.admits(1, waited=9.9)
        assert not policy.admits(1, waited=10.0)
        assert not policy.admits(1, waited=10.1)


class TestCallWithRetries:
    def test_succeeds_after_transient_failures(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.0)
        result = call_with_retries(
            flaky, policy, retry_on=(ValueError,), sleep=slept.append
        )
        assert result == "ok"
        assert len(calls) == 3
        assert slept == [1.0, 2.0]

    def test_exhaustion_raises_and_chains(self):
        def always_fails():
            raise ValueError("permanent")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            call_with_retries(always_fails, policy, retry_on=(ValueError,))
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_unlisted_exception_propagates_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            call_with_retries(
                wrong_kind, RetryPolicy(), retry_on=(ValueError,)
            )
        assert len(calls) == 1
