"""Exit-code contract for every report-writing subcommand.

The contract: a run whose result is healthy exits 0; a run that lost
data, left corruption unrepaired, lost metadata, or ended with an
unhealthy fsck exits 1 — and the human-readable report is written either
way.  The storms themselves are monkeypatched so the matrix stays fast;
what is under test is the CLI plumbing from result object to exit code.
"""

from types import SimpleNamespace

import pytest

from repro.cli import main


def fake_fsck(healthy):
    return SimpleNamespace(
        healthy=healthy, to_dict=lambda: {"healthy": healthy}
    )


def chaos_result(*, blocks_lost=0, fsck_healthy=True):
    return SimpleNamespace(
        blocks_lost=blocks_lost, fsck=fake_fsck(fsck_healthy)
    )


def leader_kill_result(*, metadata_lost=0, fsck_healthy=True):
    return SimpleNamespace(
        metadata_lost=metadata_lost, fsck=fake_fsck(fsck_healthy)
    )


def bit_rot_result(*, lost=0, unrepaired=0, fsck_healthy=True):
    return SimpleNamespace(
        blocks_permanently_lost=lost,
        episodes_unrepaired=unrepaired,
        fsck=fake_fsck(fsck_healthy),
        summary=lambda: {"ok": fsck_healthy},
    )


def overload_result(*, fsck_healthy=True):
    return SimpleNamespace(fsck=fake_fsck(fsck_healthy))


def _patch_chaos(monkeypatch, result):
    import repro.experiments.chaos as chaos

    monkeypatch.setattr(chaos, "run_chaos", lambda *a, **k: result)
    monkeypatch.setattr(chaos, "render_chaos", lambda r: "chaos report")


def _patch_leader_kill(monkeypatch, result):
    import repro.experiments.chaos as chaos

    monkeypatch.setattr(chaos, "run_leader_kill", lambda *a, **k: result)
    monkeypatch.setattr(
        chaos, "render_leader_kill", lambda r: "leader-kill report"
    )


def _patch_bit_rot(monkeypatch, result):
    import repro.experiments.bitrot as bitrot

    monkeypatch.setattr(bitrot, "run_bit_rot", lambda *a, **k: result)
    monkeypatch.setattr(bitrot, "render_bit_rot", lambda r: "bit-rot report")


def _patch_overload_pair(monkeypatch, protected, unprotected):
    import repro.experiments.overload as overload

    monkeypatch.setattr(
        overload, "run_overload_pair",
        lambda *a, **k: (protected, unprotected),
    )
    monkeypatch.setattr(
        overload, "render_overload", lambda r: "overload report"
    )
    monkeypatch.setattr(
        overload, "render_overload_pair", lambda a, b: "overload pair"
    )


def _patch_overload_single(monkeypatch, result):
    import repro.experiments.overload as overload

    monkeypatch.setattr(overload, "run_overload", lambda *a, **k: result)
    monkeypatch.setattr(
        overload, "render_overload", lambda r: "overload report"
    )


def _patch_fsck(monkeypatch, result):
    import repro.dfs.fsck as fsck
    import repro.experiments.chaos as chaos

    monkeypatch.setattr(chaos, "run_chaos", lambda *a, **k: result)
    monkeypatch.setattr(fsck, "render_fsck", lambda r: "fsck report")


# Each case: (argv-suffix factory, patcher for the healthy run, patcher
# for the unhealthy run, report file the command must write).
CASES = {
    "chaos": dict(
        argv=lambda out: ["chaos", "--quick", "--out", str(out)],
        healthy=lambda mp: _patch_chaos(mp, chaos_result()),
        unhealthy=lambda mp: _patch_chaos(
            mp, chaos_result(blocks_lost=2)
        ),
        report="chaos.txt",
    ),
    "chaos-unhealthy-fsck": dict(
        argv=lambda out: ["chaos", "--quick", "--out", str(out)],
        healthy=lambda mp: _patch_chaos(mp, chaos_result()),
        unhealthy=lambda mp: _patch_chaos(
            mp, chaos_result(fsck_healthy=False)
        ),
        report="chaos.txt",
    ),
    "chaos-bit-rot": dict(
        argv=lambda out: [
            "chaos", "--bit-rot", "--quick", "--out", str(out)
        ],
        healthy=lambda mp: _patch_bit_rot(mp, bit_rot_result()),
        unhealthy=lambda mp: _patch_bit_rot(
            mp, bit_rot_result(unrepaired=1)
        ),
        report="chaos_bit_rot.txt",
    ),
    "chaos-kill-leader": dict(
        argv=lambda out: [
            "chaos", "--kill-leader", "--quick", "--out", str(out)
        ],
        healthy=lambda mp: _patch_leader_kill(mp, leader_kill_result()),
        unhealthy=lambda mp: _patch_leader_kill(
            mp, leader_kill_result(metadata_lost=3)
        ),
        report="chaos_kill_leader.txt",
    ),
    "scrub": dict(
        argv=lambda out: ["scrub", "--out", str(out)],
        healthy=lambda mp: _patch_bit_rot(mp, bit_rot_result()),
        unhealthy=lambda mp: _patch_bit_rot(mp, bit_rot_result(lost=1)),
        report="scrub.txt",
    ),
    "ha": dict(
        argv=lambda out: ["ha", "--out", str(out)],
        healthy=lambda mp: _patch_leader_kill(mp, leader_kill_result()),
        unhealthy=lambda mp: _patch_leader_kill(
            mp, leader_kill_result(fsck_healthy=False)
        ),
        report="ha.txt",
    ),
    "overload": dict(
        argv=lambda out: ["overload", "--out", str(out)],
        healthy=lambda mp: _patch_overload_pair(
            mp, overload_result(), overload_result()
        ),
        # The regression that motivated this file: an unhealthy
        # *unprotected* leg must fail the run too.
        unhealthy=lambda mp: _patch_overload_pair(
            mp, overload_result(), overload_result(fsck_healthy=False)
        ),
        report="overload.txt",
    ),
    "overload-protected-only": dict(
        argv=lambda out: [
            "overload", "--protected-only", "--out", str(out)
        ],
        healthy=lambda mp: _patch_overload_single(mp, overload_result()),
        unhealthy=lambda mp: _patch_overload_single(
            mp, overload_result(fsck_healthy=False)
        ),
        report="overload.txt",
    ),
    "fsck": dict(
        argv=lambda out: [
            "fsck", "--json", str(out / "fsck.json")
        ],
        healthy=lambda mp: _patch_fsck(
            mp, SimpleNamespace(fsck=fake_fsck(True))
        ),
        unhealthy=lambda mp: _patch_fsck(
            mp, SimpleNamespace(fsck=fake_fsck(False))
        ),
        report="fsck.json",
    ),
}


@pytest.mark.parametrize("name", sorted(CASES), ids=str)
def test_healthy_run_exits_zero_and_writes_report(
    name, tmp_path, monkeypatch, capsys
):
    case = CASES[name]
    case["healthy"](monkeypatch)
    out = tmp_path / "nested" / "reports"
    assert main(case["argv"](out)) == 0
    assert (out / case["report"]).exists()
    capsys.readouterr()


@pytest.mark.parametrize("name", sorted(CASES), ids=str)
def test_unhealthy_run_exits_one_but_still_writes_report(
    name, tmp_path, monkeypatch, capsys
):
    case = CASES[name]
    case["unhealthy"](monkeypatch)
    out = tmp_path / "nested" / "reports"
    assert main(case["argv"](out)) == 1
    assert (out / case["report"]).exists()
    capsys.readouterr()


def test_serve_check_exit_contract(tmp_path, monkeypatch, capsys):
    """`repro serve --check/--demo` obey the same 0/1 contract."""
    import repro.serve.supervisor as supervisor

    monkeypatch.setattr(
        supervisor, "serve_check", lambda config: {"ok": True}
    )
    assert main(["serve", "--check"]) == 0
    monkeypatch.setattr(
        supervisor, "serve_check", lambda config: {"ok": False}
    )
    out = tmp_path / "nested" / "serve.json"
    assert main(["serve", "--check", "--json", str(out)]) == 1
    assert out.exists()
    monkeypatch.setattr(
        supervisor, "serve_demo", lambda config, seed: {"ok": False}
    )
    assert main(["serve", "--demo"]) == 1
    capsys.readouterr()
