"""Tests for the LP relaxation lower bound."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.bounds import combined_lower_bound
from repro.core.exact import solve_exact
from repro.core.instance import PlacementProblem
from repro.core.relaxation import certified_lower_bound, lp_lower_bound
from repro.errors import InvalidProblemError


def problem_from_seed(seed, num_blocks=None, capacity=None):
    rng = random.Random(seed)
    num_blocks = num_blocks or rng.randint(2, 8)
    k = rng.randint(1, 2)
    per_rack = rng.randint(2, 3)
    # Capacity always fits the replicas (with optional slack).
    min_capacity = -(-num_blocks * k // (2 * per_rack))  # ceil
    topo = ClusterTopology.uniform(
        2, per_rack,
        capacity=capacity or (min_capacity + rng.randint(0, 4)),
    )
    pops = [rng.uniform(0.5, 20.0) for _ in range(num_blocks)]
    return PlacementProblem.from_popularities(
        topo, pops, replication_factor=k, rack_spread=1
    )


class TestLpLowerBound:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_valid_bound_at_least_average(self, seed):
        from repro.core.bounds import average_load_bound

        problem = problem_from_seed(seed)
        lp = lp_lower_bound(problem)
        opt = solve_exact(problem).objective
        # Total load mass is conserved, so LP >= average; and relaxing
        # integrality can only lower the optimum.
        assert lp >= average_load_bound(problem) - 1e-6
        assert lp <= opt + 1e-6

    def test_fractional_splitting_shows_integrality_gap(self):
        # One heavy block on two machines: the LP splits it in half
        # (bound 5) while the ILP must place it whole (OPT 10).  The
        # gap is exactly the p_max term of Theorem 2.
        topo = ClusterTopology.uniform(1, 2, capacity=2)
        problem = PlacementProblem.from_popularities(
            topo, [10.0], replication_factor=1
        )
        lp = lp_lower_bound(problem)
        assert lp == pytest.approx(5.0)
        opt = solve_exact(problem).objective
        assert opt == pytest.approx(10.0)
        assert opt - lp <= problem.max_per_replica_popularity() + 1e-9

    def test_rejects_replicate_variant(self):
        topo = ClusterTopology.uniform(1, 3, capacity=5)
        problem = PlacementProblem.from_popularities(
            topo, [1.0], replication_budget=3
        )
        with pytest.raises(InvalidProblemError):
            lp_lower_bound(problem)

    def test_empty_instance(self):
        topo = ClusterTopology.uniform(1, 2, capacity=2)
        problem = PlacementProblem(topology=topo, blocks=())
        assert lp_lower_bound(problem) == 0.0

    def test_certified_bound_is_max(self):
        problem = problem_from_seed(42)
        certified = certified_lower_bound(problem)
        assert certified >= combined_lower_bound(problem) - 1e-9
        assert certified >= lp_lower_bound(problem) - 1e-9

    def test_certified_bound_handles_replicate_variant(self):
        topo = ClusterTopology.uniform(1, 3, capacity=5)
        problem = PlacementProblem.from_popularities(
            topo, [6.0], replication_budget=3
        )
        assert certified_lower_bound(problem) == combined_lower_bound(problem)
