"""Differential tests: incremental engine vs the naive reference solver.

The incremental engine in ``repro.core.local_search`` (lazy heap
extremes, persistent share indices, pair-pruning memo) must be
operation-for-operation identical to the frozen naive transcription in
``repro.core.reference``.  These tests pin that equivalence on seeded
random instances — final cost, final placement, the full operation log,
and the admissibility-rejection counts must all match exactly, for both
Algorithm 1 and Algorithm 2 and under epsilon policies.
"""

import random

import pytest

from repro.core.admissibility import RelativeCostPolicy, RelativeGapPolicy
from repro.core.local_search import (
    balance_node_level,
    balance_rack_aware,
    find_operation_between,
)
from repro.core.reference import (
    reference_balance_node_level,
    reference_balance_rack_aware,
    reference_find_operation_between,
)

from .test_local_search import random_state

SEEDS = list(range(24))


def _assert_lockstep(incremental, reference, state_inc, state_ref):
    assert incremental.final_cost == reference.final_cost
    assert incremental.converged == reference.converged
    assert incremental.iterations == reference.iterations
    assert incremental.operations == reference.operations
    assert (
        incremental.admissibility_rejections
        == reference.admissibility_rejections
    )
    assert state_inc.to_assignment() == state_ref.to_assignment()
    state_inc.audit()


@pytest.mark.parametrize("seed", SEEDS)
def test_node_level_matches_reference(seed):
    state_inc = random_state(
        random.Random(seed), num_racks=3, per_rack=4, num_blocks=60, k=2, rho=2
    )
    state_ref = state_inc.copy()
    stats_inc = balance_node_level(state_inc, log_operations=True)
    stats_ref = reference_balance_node_level(state_ref, log_operations=True)
    _assert_lockstep(stats_inc, stats_ref, state_inc, state_ref)


@pytest.mark.parametrize("seed", SEEDS)
def test_rack_aware_matches_reference(seed):
    state_inc = random_state(
        random.Random(seed), num_racks=4, per_rack=3, num_blocks=70, k=3, rho=2
    )
    state_ref = state_inc.copy()
    stats_inc = balance_rack_aware(state_inc, log_operations=True)
    stats_ref = reference_balance_rack_aware(state_ref, log_operations=True)
    _assert_lockstep(stats_inc, stats_ref, state_inc, state_ref)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize(
    "make_policy",
    [
        lambda: RelativeCostPolicy(0.05),
        lambda: RelativeCostPolicy(0.5),
        lambda: RelativeGapPolicy(0.1),
        lambda: RelativeGapPolicy(0.7),
    ],
    ids=["relcost-0.05", "relcost-0.5", "relgap-0.1", "relgap-0.7"],
)
@pytest.mark.parametrize("algorithm", ["node", "rack"])
def test_epsilon_policies_match_reference(seed, make_policy, algorithm):
    """Epsilon admissibility decisions survive the cached-cost threading.

    ``RelativeCostPolicy`` reads the *global* objective, which the
    incremental engine threads through as a cached value and the pair
    memo keys on; any staleness would flip an admissibility decision and
    show up here as a diverged operation log or rejection count.
    """
    state_inc = random_state(
        random.Random(seed), num_racks=3, per_rack=4, num_blocks=50, k=2, rho=2
    )
    state_ref = state_inc.copy()
    if algorithm == "node":
        stats_inc = balance_node_level(
            state_inc, policy=make_policy(), log_operations=True
        )
        stats_ref = reference_balance_node_level(
            state_ref, policy=make_policy(), log_operations=True
        )
    else:
        stats_inc = balance_rack_aware(
            state_inc, policy=make_policy(), log_operations=True
        )
        stats_ref = reference_balance_rack_aware(
            state_ref, policy=make_policy(), log_operations=True
        )
    _assert_lockstep(stats_inc, stats_ref, state_inc, state_ref)


@pytest.mark.parametrize("seed", range(12))
def test_single_probe_matches_reference(seed):
    """One ``find_operation_between`` probe returns the identical operation.

    Exercises the skip-based index walk against the rebuilt exclusive
    lists directly, including the rejection counts both record.
    """
    from repro.core.local_search import SearchStats

    state = random_state(
        random.Random(seed), num_racks=2, per_rack=4, num_blocks=40, k=2
    )
    policy = RelativeGapPolicy(0.2)
    cost = state.cost()
    src = state.argmax_machine()
    dst = state.argmin_machine()
    stats_inc = SearchStats(initial_cost=cost, final_cost=cost)
    stats_ref = SearchStats(initial_cost=cost, final_cost=cost)
    op_inc = find_operation_between(state, src, dst, policy, cost, stats_inc)
    op_ref = reference_find_operation_between(
        state, src, dst, policy, cost, stats_ref
    )
    assert op_inc == op_ref
    assert (
        stats_inc.admissibility_rejections == stats_ref.admissibility_rejections
    )


@pytest.mark.parametrize("seed", range(6))
def test_max_operations_cap_matches_reference(seed):
    """Budgeted runs stop at the same point with the same partial result."""
    state_inc = random_state(
        random.Random(seed), num_racks=3, per_rack=3, num_blocks=50, k=2, rho=2
    )
    state_ref = state_inc.copy()
    stats_inc = balance_rack_aware(
        state_inc, max_operations=5, log_operations=True
    )
    stats_ref = reference_balance_rack_aware(
        state_ref, max_operations=5, log_operations=True
    )
    assert stats_inc.operations == stats_ref.operations
    assert state_inc.to_assignment() == state_ref.to_assignment()


def test_pruning_only_skips_proven_pairs():
    """Pruned probes never change results, only reduce probe counts."""
    state = random_state(
        random.Random(99), num_racks=4, per_rack=4, num_blocks=120, k=3, rho=2
    )
    stats = balance_rack_aware(state, log_operations=True)
    assert stats.pairs_probed > 0
    # Convergence requires at least one full unpruned sweep at the end.
    assert stats.converged
    state.audit()
