"""Property tests: placement-state bookkeeping under random mutations."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.instance import PlacementProblem
from repro.core.placement import PlacementState
from repro.errors import ReproError


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), steps=st.integers(10, 120))
def test_incremental_loads_match_recomputation(seed, steps):
    """Any mix of add/remove/move/swap keeps loads exactly consistent."""
    rng = random.Random(seed)
    num_racks = rng.randint(1, 3)
    per_rack = rng.randint(2, 4)
    num_blocks = rng.randint(2, 20)
    # Capacity always fits every block once, plus random slack.
    base = -(-num_blocks // (num_racks * per_rack))  # ceil
    topo = ClusterTopology.uniform(
        num_racks, per_rack, capacity=base + rng.randint(1, 6)
    )
    pops = [rng.uniform(0.0, 50.0) for _ in range(num_blocks)]
    problem = PlacementProblem.from_popularities(
        topo, pops, replication_factor=1, rack_spread=1
    )
    state = PlacementState(problem)
    machines = list(topo.machines)

    for _ in range(steps):
        op = rng.choice(["add", "add", "remove", "move", "swap"])
        try:
            if op == "add":
                state.add_replica(
                    rng.randrange(num_blocks), rng.choice(machines)
                )
            elif op == "remove":
                block = rng.randrange(num_blocks)
                holders = sorted(state.machines_of(block))
                if holders:
                    state.remove_replica(
                        block, rng.choice(holders), enforce_min=False
                    )
            elif op == "move":
                block = rng.randrange(num_blocks)
                holders = sorted(state.machines_of(block))
                if holders:
                    state.move(block, rng.choice(holders),
                               rng.choice(machines))
            elif op == "swap":
                block_i = rng.randrange(num_blocks)
                block_j = rng.randrange(num_blocks)
                holders_i = sorted(state.machines_of(block_i))
                holders_j = sorted(state.machines_of(block_j))
                if holders_i and holders_j:
                    state.swap(block_i, rng.choice(holders_i),
                               block_j, rng.choice(holders_j))
        except ReproError:
            continue

    incremental = state.loads()
    incremental_racks = state.rack_loads()
    state.recompute()
    assert np.allclose(incremental, state.loads(), atol=1e-6)
    assert np.allclose(incremental_racks, state.rack_loads(), atol=1e-6)
    state.audit()
    # Load conservation: total load equals the popularity of every block
    # that has at least one replica.
    expected = sum(
        problem.block(b).popularity
        for b in range(num_blocks)
        if state.replica_count(b) > 0
    )
    assert float(state.loads().sum()) == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_copy_equals_original_after_divergence_free_ops(seed):
    rng = random.Random(seed)
    topo = ClusterTopology.uniform(2, 3, capacity=6)
    problem = PlacementProblem.from_popularities(
        topo, [rng.uniform(1, 10) for _ in range(8)],
        replication_factor=2, rack_spread=1,
    )
    state = PlacementState(problem)
    for spec in problem:
        placed = 0
        for machine in rng.sample(list(topo.machines), topo.num_machines):
            if placed == 2:
                break
            if state.can_add(spec.block_id, machine):
                state.add_replica(spec.block_id, machine)
                placed += 1
    clone = state.copy()
    assert clone.to_assignment() == state.to_assignment()
    assert np.allclose(clone.loads(), state.loads())
    # Mutating the clone never leaks into the original.
    for block in range(8):
        holders = sorted(clone.machines_of(block))
        for machine in topo.machines:
            if clone.can_move(block, holders[0], machine):
                clone.move(block, holders[0], machine)
                break
        break
    state.audit()
    clone.audit()
