"""Unit tests for operations and epsilon-admissibility policies."""

import math

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.admissibility import (
    AlwaysAdmissible,
    RelativeCostPolicy,
    RelativeGapPolicy,
    theorem9_approximation_factor,
    theorem9_iteration_bound,
)
from repro.core.instance import PlacementProblem
from repro.core.operations import MoveOp, OperationOutcome, SwapOp
from repro.core.placement import PlacementState
from repro.errors import InvalidProblemError


def two_machine_state(pops=(6.0, 2.0)):
    topo = ClusterTopology.uniform(2, 1, capacity=10)
    problem = PlacementProblem.from_popularities(topo, pops, replication_factor=1)
    state = PlacementState(problem)
    state.add_replica(0, 0)
    state.add_replica(1, 1)
    return state


class TestOperations:
    def test_move_outcome_matches_application(self):
        state = two_machine_state()
        state2 = state.copy()
        # free a slot: move block 1 to machine 0 first? simpler: move
        # block 0 from machine 0 to machine 1.
        op = MoveOp(block=0, src=0, dst=1)
        outcome = op.outcome(state)
        assert outcome.src_load_before == pytest.approx(6.0)
        assert outcome.dst_load_before == pytest.approx(2.0)
        assert outcome.src_load_after == pytest.approx(0.0)
        assert outcome.dst_load_after == pytest.approx(8.0)
        op.apply(state2)
        assert state2.load(0) == pytest.approx(outcome.src_load_after)
        assert state2.load(1) == pytest.approx(outcome.dst_load_after)

    def test_swap_outcome_matches_application(self):
        state = two_machine_state()
        op = SwapOp(block_i=0, src=0, block_j=1, dst=1)
        outcome = op.outcome(state)
        assert outcome.src_load_after == pytest.approx(2.0)
        assert outcome.dst_load_after == pytest.approx(6.0)
        state2 = state.copy()
        op.apply(state2)
        assert state2.load(0) == pytest.approx(2.0)
        assert state2.load(1) == pytest.approx(6.0)

    def test_cross_rack_detection(self):
        state = two_machine_state()
        assert MoveOp(block=0, src=0, dst=1).is_cross_rack(state)
        assert SwapOp(0, 0, 1, 1).is_cross_rack(state)

    def test_blocks_touched(self):
        assert MoveOp(0, 0, 1).blocks_touched == 1
        assert SwapOp(0, 0, 1, 1).blocks_touched == 2

    def test_improves_requires_strict_reduction(self):
        flat = OperationOutcome(5.0, 5.0, 5.0, 5.0)
        assert not flat.improves
        better = OperationOutcome(5.0, 1.0, 3.0, 3.0)
        assert better.improves
        worse = OperationOutcome(5.0, 1.0, 0.0, 6.0)
        assert not worse.improves


class TestAdmissibilityPolicies:
    def outcome(self, lm, ln, lm_after, ln_after):
        return OperationOutcome(lm, ln, lm_after, ln_after)

    def test_always_admissible_accepts_any_improvement(self):
        policy = AlwaysAdmissible()
        assert policy.is_admissible(self.outcome(10, 0, 9.9, 0.1), 10)
        assert not policy.is_admissible(self.outcome(10, 0, 10, 0), 10)

    def test_gap_policy_thresholds(self):
        policy = RelativeGapPolicy(epsilon=0.5)
        # gap 10 -> must close to <= 5.
        assert policy.is_admissible(self.outcome(10, 0, 5.5, 4.5), 10)
        assert not policy.is_admissible(self.outcome(10, 0, 9, 1), 10)
        # Perfectly balancing move is always admissible.
        assert policy.is_admissible(self.outcome(10, 0, 5, 5), 10)

    def test_gap_policy_zero_equals_always(self):
        policy = RelativeGapPolicy(epsilon=0.0)
        assert policy.is_admissible(self.outcome(10, 0, 9.99, 0.01), 10)

    def test_gap_policy_rejects_non_improving(self):
        policy = RelativeGapPolicy(epsilon=0.1)
        # Overshooting so far the pair max grows is inadmissible even if
        # the gap shrinks.
        assert not policy.is_admissible(self.outcome(10, 0, 0, 10.5), 10.5)

    def test_cost_policy_requires_source_at_global_max(self):
        policy = RelativeCostPolicy(epsilon=0.1)
        # Source is below the global max: cannot reduce SOL.
        assert not policy.is_admissible(self.outcome(8, 0, 4, 4), 10)
        # Source at global max, resulting pair max below (1-eps)*SOL.
        assert policy.is_admissible(self.outcome(10, 0, 5, 5), 10)
        # Improvement too small.
        assert not policy.is_admissible(self.outcome(10, 0, 9.5, 0.5), 10)

    def test_epsilon_validation(self):
        with pytest.raises(InvalidProblemError):
            RelativeGapPolicy(epsilon=1.0)
        with pytest.raises(InvalidProblemError):
            RelativeGapPolicy(epsilon=-0.1)
        with pytest.raises(InvalidProblemError):
            RelativeCostPolicy(epsilon=2.0)


class TestTheorem9Helpers:
    def test_iteration_bound_formula(self):
        bound = theorem9_iteration_bound(sol=100.0, opt=10.0, epsilon=0.5)
        assert bound == pytest.approx(math.log(10.0) / -math.log(0.5))

    def test_iteration_bound_zero_when_already_optimal(self):
        assert theorem9_iteration_bound(5.0, 5.0, 0.3) == 0.0
        assert theorem9_iteration_bound(4.0, 5.0, 0.3) == 0.0

    def test_iteration_bound_shrinks_with_epsilon(self):
        loose = theorem9_iteration_bound(100.0, 1.0, 0.1)
        tight = theorem9_iteration_bound(100.0, 1.0, 0.9)
        assert tight < loose

    def test_iteration_bound_validation(self):
        with pytest.raises(InvalidProblemError):
            theorem9_iteration_bound(10.0, 1.0, 0.0)
        with pytest.raises(InvalidProblemError):
            theorem9_iteration_bound(0.0, 1.0, 0.5)

    def test_approximation_factors(self):
        assert theorem9_approximation_factor(False, 0.0) == 2.0
        assert theorem9_approximation_factor(True, 0.0) == 4.0
        assert theorem9_approximation_factor(False, 0.5) == pytest.approx(2.5)
        assert theorem9_approximation_factor(True, 0.5) == pytest.approx(5.5)
        with pytest.raises(InvalidProblemError):
            theorem9_approximation_factor(True, -1.0)
