"""Unit tests for the cluster topology and problem instance models."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.instance import BlockSpec, PlacementProblem, ProblemVariant
from repro.errors import (
    InvalidProblemError,
    InvalidTopologyError,
    UnknownBlockError,
    UnknownMachineError,
)


class TestClusterTopology:
    def test_uniform_builds_dense_ids(self):
        topo = ClusterTopology.uniform(3, 4, capacity=7)
        assert topo.num_machines == 12
        assert topo.num_racks == 3
        assert list(topo.machines) == list(range(12))
        assert topo.machines_in_rack(1) == (4, 5, 6, 7)
        assert topo.rack_of_machine(5) == 1
        assert topo.capacity_of(0) == 7
        assert topo.total_capacity() == 84

    def test_from_rack_sizes(self):
        topo = ClusterTopology.from_rack_sizes([2, 3], capacity=5)
        assert topo.num_machines == 5
        assert topo.machines_in_rack(0) == (0, 1)
        assert topo.machines_in_rack(1) == (2, 3, 4)

    def test_same_rack(self):
        topo = ClusterTopology.uniform(2, 2, capacity=1)
        assert topo.same_rack(0, 1)
        assert not topo.same_rack(1, 2)

    def test_other_racks(self):
        topo = ClusterTopology.uniform(3, 1, capacity=1)
        assert list(topo.other_racks(1)) == [0, 2]

    def test_rejects_empty_topology(self):
        with pytest.raises(InvalidTopologyError):
            ClusterTopology((), ())

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(InvalidTopologyError):
            ClusterTopology((0, 0), (1,))

    def test_rejects_sparse_rack_ids(self):
        with pytest.raises(InvalidTopologyError):
            ClusterTopology((0, 2), (1, 1))

    def test_rejects_negative_capacity(self):
        with pytest.raises(InvalidTopologyError):
            ClusterTopology((0,), (-1,))

    def test_rejects_nonpositive_uniform_params(self):
        with pytest.raises(InvalidTopologyError):
            ClusterTopology.uniform(0, 3, capacity=1)

    def test_unknown_machine_raises(self):
        topo = ClusterTopology.uniform(1, 2, capacity=1)
        with pytest.raises(UnknownMachineError):
            topo.capacity_of(5)
        with pytest.raises(UnknownMachineError):
            topo.rack_of_machine(-1)

    def test_describe_mentions_counts(self):
        topo = ClusterTopology.uniform(2, 3, capacity=4)
        text = topo.describe()
        assert "6 machines" in text
        assert "2 racks" in text


class TestBlockSpec:
    def test_per_replica_popularity(self):
        spec = BlockSpec(block_id=0, popularity=9.0, replication_factor=3)
        assert spec.per_replica_popularity == pytest.approx(3.0)

    def test_with_replication_factor_caps_spread(self):
        spec = BlockSpec(0, 9.0, replication_factor=3, rack_spread=2)
        narrowed = spec.with_replication_factor(1)
        assert narrowed.replication_factor == 1
        assert narrowed.rack_spread == 1

    def test_rejects_bad_values(self):
        with pytest.raises(InvalidProblemError):
            BlockSpec(-1, 1.0)
        with pytest.raises(InvalidProblemError):
            BlockSpec(0, -1.0)
        with pytest.raises(InvalidProblemError):
            BlockSpec(0, 1.0, replication_factor=0)
        with pytest.raises(InvalidProblemError):
            BlockSpec(0, 1.0, replication_factor=2, rack_spread=3)


class TestPlacementProblem:
    def topo(self):
        return ClusterTopology.uniform(2, 3, capacity=10)

    def test_variant_detection(self):
        node = PlacementProblem.from_popularities(self.topo(), [1.0, 2.0])
        assert node.variant() is ProblemVariant.BP_NODE
        rack = PlacementProblem.from_popularities(
            self.topo(), [1.0], replication_factor=3, rack_spread=2
        )
        assert rack.variant() is ProblemVariant.BP_RACK
        rep = PlacementProblem.from_popularities(
            self.topo(), [1.0], replication_budget=10
        )
        assert rep.variant() is ProblemVariant.BP_REPLICATE

    def test_lookup_and_iteration(self):
        problem = PlacementProblem.from_popularities(self.topo(), [1.0, 2.0, 3.0])
        assert problem.num_blocks == 3
        assert problem.block(1).popularity == pytest.approx(2.0)
        assert 2 in problem
        assert 9 not in problem
        assert list(problem.block_ids()) == [0, 1, 2]
        with pytest.raises(UnknownBlockError):
            problem.block(7)

    def test_aggregates(self):
        problem = PlacementProblem.from_popularities(
            self.topo(), [6.0, 3.0], replication_factor=3
        )
        assert problem.total_popularity() == pytest.approx(9.0)
        assert problem.max_per_replica_popularity() == pytest.approx(2.0)
        assert problem.minimum_total_replicas() == 6

    def test_rejects_duplicate_ids(self):
        blocks = (BlockSpec(0, 1.0, 1), BlockSpec(0, 2.0, 1))
        with pytest.raises(InvalidProblemError):
            PlacementProblem(topology=self.topo(), blocks=blocks)

    def test_rejects_factor_exceeding_machines(self):
        with pytest.raises(InvalidProblemError):
            PlacementProblem.from_popularities(
                self.topo(), [1.0], replication_factor=7
            )

    def test_rejects_spread_exceeding_racks(self):
        with pytest.raises(InvalidProblemError):
            PlacementProblem.from_popularities(
                self.topo(), [1.0], replication_factor=4, rack_spread=3
            )

    def test_rejects_budget_below_minimum(self):
        with pytest.raises(InvalidProblemError):
            PlacementProblem.from_popularities(
                self.topo(), [1.0, 1.0], replication_factor=3,
                replication_budget=5,
            )

    def test_rejects_overfull_cluster(self):
        tiny = ClusterTopology.uniform(1, 2, capacity=1)
        with pytest.raises(InvalidProblemError):
            PlacementProblem.from_popularities(
                tiny, [1.0, 1.0], replication_factor=2
            )

    def test_empty_problem_edge_cases(self):
        problem = PlacementProblem(topology=self.topo(), blocks=())
        assert problem.total_popularity() == 0.0
        assert problem.max_per_replica_popularity() == 0.0
        assert problem.variant() is ProblemVariant.BP_NODE
