"""Unit tests for :class:`repro.core.placement.PlacementState`."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.instance import BlockSpec, PlacementProblem
from repro.core.placement import PlacementState
from repro.errors import (
    CapacityExceededError,
    InfeasibleOperationError,
    ReplicaConstraintError,
    UnknownBlockError,
)


def make_problem(num_racks=2, per_rack=3, capacity=10, pops=(6.0, 3.0, 1.0),
                 k=2, rho=1, budget=None):
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    return PlacementProblem.from_popularities(
        topo, pops, replication_factor=k, rack_spread=rho,
        replication_budget=budget,
    )


class TestBasicBookkeeping:
    def test_empty_state_has_zero_loads(self):
        state = PlacementState(make_problem())
        assert state.cost() == 0.0
        assert state.min_load() == 0.0
        assert state.replica_count(0) == 0
        assert state.rack_spread(0) == 0

    def test_add_replica_updates_load_and_indexes(self):
        state = PlacementState(make_problem())
        state.add_replica(0, 0)
        assert state.has_replica(0, 0)
        assert state.load(0) == pytest.approx(6.0)
        assert state.replica_count(0) == 1
        assert 0 in state.blocks_on(0)
        assert 0 in state.machines_of(0)

    def test_share_dilutes_with_replica_count(self):
        state = PlacementState(make_problem())
        state.add_replica(0, 0)
        assert state.share(0) == pytest.approx(6.0)
        state.add_replica(0, 1)
        assert state.share(0) == pytest.approx(3.0)
        assert state.load(0) == pytest.approx(3.0)
        assert state.load(1) == pytest.approx(3.0)

    def test_remove_replica_concentrates_popularity(self):
        state = PlacementState(make_problem(k=1))
        state.add_replica(0, 0)
        state.add_replica(0, 1)
        state.remove_replica(0, 1)
        assert state.load(0) == pytest.approx(6.0)
        assert state.load(1) == pytest.approx(0.0)
        assert state.replica_count(0) == 1

    def test_rack_spread_tracks_distinct_racks(self):
        state = PlacementState(make_problem(num_racks=3, per_rack=2, k=3))
        state.add_replica(0, 0)  # rack 0
        state.add_replica(0, 1)  # rack 0
        assert state.rack_spread(0) == 1
        state.add_replica(0, 2)  # rack 1
        assert state.rack_spread(0) == 2

    def test_rack_load_aggregates_machine_loads(self):
        state = PlacementState(make_problem(num_racks=2, per_rack=2))
        state.add_replica(0, 0)
        state.add_replica(1, 1)
        assert state.rack_load(0) == pytest.approx(state.load(0) + state.load(1))
        assert state.rack_load(1) == pytest.approx(0.0)

    def test_unknown_block_raises(self):
        state = PlacementState(make_problem())
        with pytest.raises(UnknownBlockError):
            state.machines_of(999)
        with pytest.raises(UnknownBlockError):
            state.share(999)


class TestFeasibilityChecks:
    def test_cannot_add_duplicate_replica(self):
        state = PlacementState(make_problem())
        state.add_replica(0, 0)
        assert not state.can_add(0, 0)
        with pytest.raises(ReplicaConstraintError):
            state.add_replica(0, 0)

    def test_capacity_limit_enforced(self):
        problem = make_problem(num_racks=1, per_rack=2, capacity=1,
                               pops=(1.0, 1.0), k=1)
        state = PlacementState(problem)
        state.add_replica(0, 0)
        assert state.is_full(0)
        assert not state.can_add(1, 0)
        with pytest.raises(CapacityExceededError):
            state.add_replica(1, 0)

    def test_remove_respects_replication_minimum(self):
        state = PlacementState(make_problem(k=2))
        state.add_replica(0, 0)
        state.add_replica(0, 1)
        assert not state.can_remove(0, 0)
        assert state.can_remove(0, 0, enforce_min=False)
        with pytest.raises(ReplicaConstraintError):
            state.remove_replica(0, 0)

    def test_remove_respects_rack_spread(self):
        problem = make_problem(num_racks=2, per_rack=2, pops=(4.0,), k=3, rho=2)
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(0, 1)
        state.add_replica(0, 2)  # rack 1, sole holder there
        # With exactly k=3 replicas no removal is allowed at all.
        assert not state.can_remove(0, 0)
        # With 4 replicas, removing a rack-0 replica is fine, but removing
        # the sole rack-1 replica would break the spread requirement.
        state.add_replica(0, 3)
        assert state.can_remove(0, 0)
        assert state.can_remove(0, 2)  # machine 3 also holds in rack 1
        state.remove_replica(0, 3, enforce_min=False)
        assert not state.can_remove(0, 2)

    def test_can_move_rules(self):
        state = PlacementState(make_problem(num_racks=2, per_rack=2, rho=2, k=2))
        state.add_replica(0, 0)  # rack 0
        state.add_replica(0, 2)  # rack 1
        # Moving the rack-1 replica into rack 0 would break spread 2.
        assert not state.can_move(0, 2, 1)
        # Moving within rack 1 preserves spread.
        assert state.can_move(0, 2, 3)
        # Cannot move onto a machine already holding the block.
        assert not state.can_move(0, 2, 0)
        # Source must hold the block.
        assert not state.can_move(0, 1, 3)
        assert not state.can_move(0, 0, 0)

    def test_can_swap_rules(self):
        problem = make_problem(num_racks=2, per_rack=2, pops=(4.0, 2.0),
                               k=2, rho=2)
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(0, 2)
        state.add_replica(1, 1)
        state.add_replica(1, 3)
        # Intra-rack swap keeps both spreads intact.
        assert state.can_swap(0, 0, 1, 1)
        # Cross-rack swap of block 0 to machine 3 would collapse block 0
        # onto rack 1 only, violating rho=2.
        assert not state.can_swap(0, 0, 1, 3)
        # Swapping a block with itself or the same machine is rejected.
        assert not state.can_swap(0, 0, 0, 2)
        assert not state.can_swap(0, 0, 1, 0)


class TestMutations:
    def test_move_shifts_load(self):
        state = PlacementState(make_problem())
        state.add_replica(0, 0)
        state.add_replica(0, 1)
        state.move(0, 1, 2)
        assert not state.has_replica(0, 1)
        assert state.has_replica(0, 2)
        assert state.load(1) == pytest.approx(0.0)
        assert state.load(2) == pytest.approx(3.0)
        state.audit()

    def test_infeasible_move_raises(self):
        state = PlacementState(make_problem())
        state.add_replica(0, 0)
        with pytest.raises(InfeasibleOperationError):
            state.move(0, 1, 2)

    def test_swap_exchanges_loads(self):
        state = PlacementState(make_problem(pops=(6.0, 2.0), k=1))
        state.add_replica(0, 0)
        state.add_replica(1, 1)
        state.swap(0, 0, 1, 1)
        assert state.has_replica(0, 1)
        assert state.has_replica(1, 0)
        assert state.load(0) == pytest.approx(2.0)
        assert state.load(1) == pytest.approx(6.0)
        state.audit()

    def test_copy_is_independent(self):
        state = PlacementState(make_problem())
        state.add_replica(0, 0)
        clone = state.copy()
        clone.add_replica(0, 1)
        assert state.replica_count(0) == 1
        assert clone.replica_count(0) == 2
        clone.audit()
        state.audit()

    def test_assignment_round_trip(self):
        problem = make_problem()
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(0, 3)
        state.add_replica(1, 1)
        snapshot = state.to_assignment()
        rebuilt = PlacementState.from_assignment(problem, snapshot)
        assert rebuilt.to_assignment() == snapshot
        assert np.allclose(rebuilt.loads(), state.loads())

    def test_bulk_from_assignment_matches_incremental_build(self):
        # The bulk builder skips the per-add re-dilution; the result
        # must still be indistinguishable from replaying add_replica.
        problem = make_problem(num_racks=3, per_rack=3, capacity=5,
                               pops=(6.0, 3.0, 1.0, 9.0), k=2)
        assignment = {0: (0, 4), 1: (1, 8), 2: (2,), 3: (3, 5, 7)}
        incremental = PlacementState(problem)
        for block_id, machines in assignment.items():
            for machine in machines:
                incremental.add_replica(block_id, machine)
        bulk = PlacementState.from_assignment(problem, assignment)
        bulk.audit()
        assert bulk.to_assignment() == incremental.to_assignment()
        assert np.allclose(bulk.loads(), incremental.loads())
        assert np.allclose(bulk.rack_loads(), incremental.rack_loads())
        for machine in problem.topology.machines:
            bulk_idx = list(bulk.share_index(machine))
            inc_idx = list(incremental.share_index(machine))
            assert [b for _, b in bulk_idx] == [b for _, b in inc_idx]
            assert [s for s, _ in bulk_idx] == pytest.approx(
                [s for s, _ in inc_idx]
            )
        for block_id in assignment:
            assert bulk.rack_spread(block_id) == \
                incremental.rack_spread(block_id)
        assert bulk.cost() == pytest.approx(incremental.cost())
        assert bulk.argmax_machine() == incremental.argmax_machine()

    def test_from_assignment_validation_matches_add_replica(self):
        problem = make_problem()
        with pytest.raises(UnknownBlockError):
            PlacementState.from_assignment(problem, {99: (0,)})
        with pytest.raises(ReplicaConstraintError):
            PlacementState.from_assignment(problem, {0: (1, 1)})
        tight = make_problem(num_racks=1, per_rack=2, capacity=1,
                             pops=(1.0, 1.0), k=1)
        with pytest.raises(CapacityExceededError):
            PlacementState.from_assignment(tight, {0: (0,), 1: (0,)})

    def test_under_replicated_blocks_listed(self):
        state = PlacementState(make_problem(k=2))
        state.add_replica(0, 0)
        assert 0 in state.under_replicated_blocks()
        state.add_replica(0, 1)
        assert 0 not in state.under_replicated_blocks()
        assert not state.is_fully_replicated()  # blocks 1, 2 still missing

    def test_recompute_matches_incremental(self):
        state = PlacementState(make_problem(num_racks=3, per_rack=3, k=2))
        state.add_replica(0, 0)
        state.add_replica(0, 4)
        state.add_replica(1, 2)
        state.add_replica(1, 8)
        state.move(0, 4, 5)
        incremental = state.loads()
        state.recompute()
        assert np.allclose(incremental, state.loads())
