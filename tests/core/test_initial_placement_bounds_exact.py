"""Tests for Algorithm 4, the lower bounds and the exact solvers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.bounds import (
    average_load_bound,
    combined_lower_bound,
    empirical_ratio,
    max_share_bound,
)
from repro.core.exact import (
    ExactSolverError,
    brute_force_bp_node,
    solve_bp_replicate_exact,
    solve_exact,
)
from repro.core.initial_placement import place_all_blocks, place_block
from repro.core.instance import BlockSpec, PlacementProblem
from repro.core.local_search import balance_node_level, balance_rack_aware
from repro.core.placement import PlacementState
from repro.errors import CapacityExceededError, InvalidProblemError


class TestInitialPlacement:
    def test_respects_rack_spread(self):
        topo = ClusterTopology.uniform(3, 2, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [6.0], replication_factor=3, rack_spread=2
        )
        state = PlacementState(problem)
        machines = place_block(state, problem.block(0))
        assert len(machines) == 3
        assert state.rack_spread(0) >= 2
        state.audit()

    def test_writer_local_rule(self):
        topo = ClusterTopology.uniform(2, 3, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [6.0], replication_factor=3, rack_spread=2
        )
        state = PlacementState(problem)
        machines = place_block(state, problem.block(0), writer_machine=4)
        assert machines[0] == 4

    def test_writer_skipped_when_full(self):
        topo = ClusterTopology((0, 0, 1, 1), (0, 5, 5, 5))
        problem = PlacementProblem.from_popularities(
            topo, [6.0], replication_factor=2, rack_spread=2
        )
        state = PlacementState(problem)
        machines = place_block(state, problem.block(0), writer_machine=0)
        assert machines[0] != 0

    def test_prefers_low_load_machines(self):
        topo = ClusterTopology.uniform(2, 2, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [8.0, 1.0], replication_factor=1
        )
        state = PlacementState(problem)
        place_block(state, problem.block(0))
        machines = place_block(state, problem.block(1))
        # The second block avoids the machine already loaded with block 0.
        assert not state.has_replica(0, machines[0])

    def test_spillover_when_chosen_racks_full(self):
        # Rack 0 has a single slot; the 3 replicas must spill to rack 1.
        topo = ClusterTopology((0, 1, 1, 1), (1, 1, 1, 1))
        problem = PlacementProblem.from_popularities(
            topo, [6.0], replication_factor=3, rack_spread=2
        )
        state = PlacementState(problem)
        machines = place_block(state, problem.block(0))
        assert len(machines) == 3
        assert state.rack_spread(0) == 2

    def test_raises_when_cluster_cannot_host(self):
        topo = ClusterTopology.uniform(1, 3, capacity=1)
        problem = PlacementProblem.from_popularities(
            topo, [1.0, 1.0, 1.0], replication_factor=1
        )
        state = PlacementState(problem)
        for spec in problem:
            place_block(state, spec)
        extra = BlockSpec(99, 1.0, replication_factor=1)
        state._machines_of[99] = set()  # inject an unplaced block
        state._rack_holders[99] = {}
        with pytest.raises(CapacityExceededError):
            place_block(state, extra)

    def test_place_all_blocks_full_coverage(self):
        topo = ClusterTopology.uniform(3, 4, capacity=20)
        rng = random.Random(5)
        pops = [rng.uniform(0, 10) for _ in range(30)]
        problem = PlacementProblem.from_popularities(
            topo, pops, replication_factor=3, rack_spread=2
        )
        state = PlacementState(problem)
        place_all_blocks(state)
        assert state.is_fully_replicated()
        state.audit()

    def test_place_all_skips_already_placed(self):
        topo = ClusterTopology.uniform(2, 2, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [4.0, 2.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 3)
        place_all_blocks(state)
        assert state.machines_of(0) == frozenset({3})


class TestBounds:
    def problem(self):
        topo = ClusterTopology.uniform(2, 2, capacity=10)
        return PlacementProblem.from_popularities(
            topo, [8.0, 4.0], replication_factor=2
        )

    def test_average_bound(self):
        assert average_load_bound(self.problem()) == pytest.approx(3.0)

    def test_max_share_bound_fixed_factors(self):
        assert max_share_bound(self.problem()) == pytest.approx(4.0)

    def test_combined_bound(self):
        assert combined_lower_bound(self.problem()) == pytest.approx(4.0)

    def test_max_share_bound_with_budget(self):
        topo = ClusterTopology.uniform(2, 2, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [8.0, 4.0], replication_factor=1, replication_budget=4
        )
        # Headroom 2: the hot block could reach factor 3 -> share 8/3.
        assert max_share_bound(problem) == pytest.approx(8.0 / 3.0)

    def test_empirical_ratio(self):
        problem = self.problem()
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(0, 1)
        state.add_replica(1, 0)
        state.add_replica(1, 1)
        # Both machines carry 4+2 = 6; LB is 4.
        assert empirical_ratio(state) == pytest.approx(1.5)
        assert empirical_ratio(state, optimum=6.0) == pytest.approx(1.0)

    def test_empirical_ratio_degenerate(self):
        topo = ClusterTopology.uniform(1, 2, capacity=5)
        problem = PlacementProblem.from_popularities(
            topo, [0.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        assert empirical_ratio(state) != empirical_ratio(state)  # NaN


class TestExactSolvers:
    def test_milp_matches_brute_force(self):
        rng = random.Random(3)
        topo = ClusterTopology.uniform(2, 2, capacity=3)
        pops = [rng.uniform(1, 10) for _ in range(5)]
        problem = PlacementProblem.from_popularities(
            topo, pops, replication_factor=2
        )
        milp_solution = solve_exact(problem)
        brute = brute_force_bp_node(problem)
        assert milp_solution.objective == pytest.approx(brute.objective, rel=1e-6)

    def test_milp_solution_is_feasible(self):
        topo = ClusterTopology.uniform(3, 2, capacity=4)
        problem = PlacementProblem.from_popularities(
            [3.0, 5.0, 1.0] and topo, [3.0, 5.0, 1.0],
            replication_factor=3, rack_spread=2,
        )
        solution = solve_exact(problem)
        state = PlacementState.from_assignment(problem, solution.assignment)
        assert state.is_fully_replicated()
        assert state.cost() == pytest.approx(solution.objective, abs=1e-6)

    def test_milp_rejects_replicate_variant(self):
        topo = ClusterTopology.uniform(2, 2, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [1.0], replication_budget=4
        )
        with pytest.raises(InvalidProblemError):
            solve_exact(problem)

    def test_replicate_exact_uses_budget(self):
        topo = ClusterTopology.uniform(2, 2, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [12.0, 1.0], replication_factor=1, replication_budget=4
        )
        solution = solve_bp_replicate_exact(problem)
        assert solution.factors is not None
        assert solution.factors[0] == 3
        assert solution.objective == pytest.approx(4.0)

    def test_brute_force_size_guard(self):
        topo = ClusterTopology.uniform(3, 4, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [1.0] * 20, replication_factor=1
        )
        with pytest.raises(ExactSolverError):
            brute_force_bp_node(problem)


class TestApproximationGuarantees:
    """Empirical validation of Theorems 2 and 4 against exact optima."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_algorithm1_within_additive_pmax(self, seed):
        rng = random.Random(seed)
        topo = ClusterTopology.uniform(1, rng.randint(2, 4), capacity=6)
        num_blocks = rng.randint(2, 6)
        pops = [rng.uniform(0.5, 20.0) for _ in range(num_blocks)]
        problem = PlacementProblem.from_popularities(
            topo, pops, replication_factor=1
        )
        state = PlacementState(problem)
        place_all_blocks(state)
        balance_node_level(state)
        optimum = solve_exact(problem).objective
        p_max = problem.max_per_replica_popularity()
        assert state.cost() <= optimum + p_max + 1e-6
        assert state.cost() <= 2 * optimum + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_algorithm2_within_additive_3pmax(self, seed):
        rng = random.Random(seed)
        topo = ClusterTopology.uniform(2, 2, capacity=8)
        num_blocks = rng.randint(2, 5)
        pops = [rng.uniform(0.5, 20.0) for _ in range(num_blocks)]
        problem = PlacementProblem.from_popularities(
            topo, pops, replication_factor=2, rack_spread=2
        )
        state = PlacementState(problem)
        place_all_blocks(state)
        balance_rack_aware(state)
        optimum = solve_exact(problem).objective
        p_max = problem.max_per_replica_popularity()
        assert state.cost() <= optimum + 3 * p_max + 1e-6
        assert state.cost() <= 4 * optimum + 1e-6
