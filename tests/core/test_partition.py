"""Tests for the rack-partitioned parallel solver (repro.core.partition).

The partitioned solver must be *deterministic* (``jobs=1`` and
``jobs=N`` produce byte-identical placements), *safe* (every
replication-factor and rack-spread constraint preserved, conflicting
cross-partition moves rejected at merge), and *good* (final cost within
a small epsilon of the plain global solver's — the sub-solves see
projected sub-problems, so exact equality is not promised).
"""

import random

import pytest

from repro.core.admissibility import RelativeCostPolicy
from repro.core.columnar import columnar_from_state
from repro.core.local_search import balance_rack_aware
from repro.core.partition import (
    balance_rack_aware_partitioned,
    extract_subproblem,
    plan_partitions,
)

from .test_local_search import random_state


def _state(seed, num_racks=8, per_rack=4, num_blocks=160, k=3, rho=2):
    return random_state(
        random.Random(seed), num_racks=num_racks, per_rack=per_rack,
        num_blocks=num_blocks, k=k, rho=rho,
    )


class TestPlanPartitions:
    def test_groups_are_disjoint_and_cover_all_racks(self):
        state = _state(0)
        plan = plan_partitions(state.topology, 3)
        seen = [rack for group in plan.groups for rack in group]
        assert sorted(seen) == list(state.topology.racks)
        assert len(seen) == len(set(seen))

    def test_deterministic(self):
        state = _state(0)
        first = plan_partitions(state.topology, 3)
        second = plan_partitions(state.topology, 3)
        assert first.groups == second.groups

    def test_partition_count_clamped(self):
        state = _state(0, num_racks=4)
        # 4 racks can support at most 2 partitions (>= 2 racks each,
        # so every sub-solve still has cross-rack moves available).
        plan = plan_partitions(state.topology, 16)
        assert 1 <= len(plan.groups) <= 2


class TestExtractSubproblem:
    def test_subproblem_constraints_are_projections(self):
        state = _state(1)
        plan = plan_partitions(state.topology, 2)
        for group in plan.groups:
            sub = extract_subproblem(state, group)
            in_racks = set(group)
            for local_id, block_id in enumerate(sub.blocks):
                spec = sub.problem.block(local_id)
                holders = state.machines_of(block_id)
                in_count = sum(
                    1 for m in holders
                    if state.topology.rack_of[m] in in_racks
                )
                assert spec.replication_factor == in_count
                assert 1 <= spec.rack_spread <= in_count
                # popularity scaled so the projected per-replica share
                # matches the global share.
                assert spec.popularity == pytest.approx(
                    state.share(block_id) * in_count
                )

    def test_subproblem_assignment_is_feasible(self):
        state = _state(2)
        plan = plan_partitions(state.topology, 2)
        for group in plan.groups:
            sub = extract_subproblem(state, group)
            from repro.core.placement import PlacementState

            local = PlacementState.from_assignment(
                sub.problem,
                {b: set(ms) for b, ms in sub.assignment.items()},
            )
            local.audit()


class TestPartitionedSolver:
    def test_preserves_constraints_and_improves(self):
        state = columnar_from_state(_state(3))
        initial_cost = state.cost()
        counts = {
            spec.block_id: state.replica_count(spec.block_id)
            for spec in state.problem
        }
        stats = balance_rack_aware_partitioned(state, num_partitions=2, jobs=1)
        assert stats.search.final_cost <= initial_cost
        assert stats.search.final_cost == state.cost()
        # audit() last: its recompute() rebuilds loads from scratch,
        # which may shift the incremental floats by ulps.
        state.audit()
        for spec in state.problem:
            assert state.replica_count(spec.block_id) == counts[spec.block_id]
            assert state.rack_spread(spec.block_id) >= spec.rack_spread

    def test_jobs_do_not_change_result(self):
        base = _state(4)
        state_seq = columnar_from_state(base)
        state_par = columnar_from_state(base)
        stats_seq = balance_rack_aware_partitioned(
            state_seq, num_partitions=2, jobs=1
        )
        stats_par = balance_rack_aware_partitioned(
            state_par, num_partitions=2, jobs=2
        )
        assert state_seq.to_assignment() == state_par.to_assignment()
        assert stats_seq.search.final_cost == stats_par.search.final_cost
        assert stats_seq.merged_operations == stats_par.merged_operations
        assert stats_seq.merge_conflicts == stats_par.merge_conflicts

    def test_quality_close_to_global_solver(self):
        base = _state(5)
        state_global = columnar_from_state(base)
        state_part = columnar_from_state(base)
        global_stats = balance_rack_aware(state_global)
        part_stats = balance_rack_aware_partitioned(
            state_part, num_partitions=2, jobs=1
        )
        assert (
            part_stats.search.final_cost
            <= global_stats.final_cost * 1.05 + 1e-9
        )

    def test_polish_reaches_local_optimum(self):
        """After the partitioned run, the global solver finds nothing."""
        state = columnar_from_state(_state(6))
        stats = balance_rack_aware_partitioned(state, num_partitions=2, jobs=1)
        assert stats.search.converged
        followup = balance_rack_aware(state.copy())
        assert followup.total_operations == 0

    def test_max_operations_budget_respected(self):
        state = columnar_from_state(_state(7))
        stats = balance_rack_aware_partitioned(
            state, num_partitions=2, jobs=1, max_operations=5
        )
        assert stats.search.total_operations <= 2 * 5 + 5
        assert stats.polish_operations <= 5

    def test_single_partition_matches_global_solver(self):
        """One partition degenerates to the plain global search."""
        base = _state(8, num_racks=4)
        state_part = columnar_from_state(base)
        state_global = columnar_from_state(base)
        part = balance_rack_aware_partitioned(
            state_part, num_partitions=1, jobs=1
        )
        plain = balance_rack_aware(state_global)
        assert part.search.final_cost == plain.final_cost
        assert state_part.to_assignment() == state_global.to_assignment()

    def test_policy_passed_through(self):
        state = columnar_from_state(_state(9))
        stats = balance_rack_aware_partitioned(
            state, policy=RelativeCostPolicy(0.5), num_partitions=2, jobs=1
        )
        state.audit()
        assert stats.search.final_cost <= stats.search.initial_cost

    def test_works_on_dict_backed_state(self):
        """The partitioned entry point accepts the parent class too."""
        state = _state(10)
        stats = balance_rack_aware_partitioned(state, num_partitions=2, jobs=1)
        state.audit()
        assert stats.search.final_cost <= stats.search.initial_cost
