"""Unit and property tests for Algorithm 3 (Rep-Factor)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.instance import PlacementProblem
from repro.core.rep_factor import (
    compute_replication_factors,
    factors_for_problem,
    max_share,
    verify_optimal_factors,
)
from repro.errors import InvalidProblemError


class TestComputeReplicationFactors:
    def test_spreads_budget_onto_hot_block(self):
        result = compute_replication_factors(
            popularities={0: 90.0, 1: 10.0},
            min_factors={0: 1, 1: 1},
            budget=10,
            num_machines=20,
        )
        assert result.factors[0] == 9
        assert result.factors[1] == 1
        assert result.max_share == pytest.approx(10.0)
        assert result.budget_used == 10

    def test_respects_machine_cap(self):
        result = compute_replication_factors(
            popularities={0: 100.0, 1: 1.0},
            min_factors={0: 1, 1: 1},
            budget=50,
            num_machines=4,
        )
        assert result.factors[0] == 4
        # After block 0 is capped, the leftover budget flows to block 1
        # only while it is the max-share block.
        assert result.factors[1] >= 1

    def test_equal_popularities_get_equal_factors(self):
        result = compute_replication_factors(
            popularities={i: 10.0 for i in range(4)},
            min_factors={i: 1 for i in range(4)},
            budget=8,
            num_machines=10,
        )
        assert sorted(result.factors.values()) == [2, 2, 2, 2]

    def test_steal_rebalances_initial_factors(self):
        # Block 1 starts with an oversized factor; the budget is tight so
        # Algorithm 3 must steal replicas to serve hot block 0.
        result = compute_replication_factors(
            popularities={0: 100.0, 1: 1.0},
            min_factors={0: 1, 1: 1},
            budget=6,
            num_machines=10,
            initial_factors={0: 1, 1: 5},
        )
        assert result.factors[0] == 5
        assert result.factors[1] == 1
        assert result.max_share == pytest.approx(20.0)

    def test_min_factors_never_violated(self):
        result = compute_replication_factors(
            popularities={0: 100.0, 1: 0.0},
            min_factors={0: 1, 1: 3},
            budget=5,
            num_machines=10,
        )
        assert result.factors[1] >= 3
        assert result.factors[0] + result.factors[1] <= 5

    def test_max_iterations_caps_work(self):
        result = compute_replication_factors(
            popularities={0: 100.0, 1: 1.0},
            min_factors={0: 1, 1: 1},
            budget=50,
            num_machines=40,
            max_iterations=3,
        )
        assert result.iterations <= 3
        assert result.factors[0] <= 4

    def test_overfull_initial_factors_are_trimmed(self):
        result = compute_replication_factors(
            popularities={0: 10.0, 1: 10.0},
            min_factors={0: 1, 1: 1},
            budget=4,
            num_machines=10,
            initial_factors={0: 5, 1: 5},
        )
        assert sum(result.factors.values()) <= 4

    def test_validation_errors(self):
        with pytest.raises(InvalidProblemError):
            compute_replication_factors({0: 1.0}, {0: 2}, budget=1, num_machines=5)
        with pytest.raises(InvalidProblemError):
            compute_replication_factors({0: 1.0}, {1: 1}, budget=5, num_machines=5)
        with pytest.raises(InvalidProblemError):
            compute_replication_factors({0: 1.0}, {0: 0}, budget=5, num_machines=5)
        with pytest.raises(InvalidProblemError):
            compute_replication_factors({0: -1.0}, {0: 1}, budget=5, num_machines=5)
        with pytest.raises(InvalidProblemError):
            compute_replication_factors({0: 1.0}, {0: 9}, budget=9, num_machines=5)

    def test_zero_popularity_instance(self):
        result = compute_replication_factors(
            popularities={0: 0.0, 1: 0.0},
            min_factors={0: 1, 1: 1},
            budget=10,
            num_machines=5,
        )
        assert result.max_share == 0.0
        assert result.factors == {0: 1, 1: 1}

    def test_factors_for_problem_requires_budget(self):
        topo = ClusterTopology.uniform(2, 3, capacity=10)
        problem = PlacementProblem.from_popularities(topo, [5.0, 1.0])
        with pytest.raises(InvalidProblemError):
            factors_for_problem(problem)

    def test_factors_for_problem(self):
        topo = ClusterTopology.uniform(2, 3, capacity=20)
        problem = PlacementProblem.from_popularities(
            topo, [30.0, 3.0], replication_factor=1, replication_budget=7
        )
        result = factors_for_problem(problem)
        assert result.factors[0] == 6
        assert result.factors[1] == 1


class TestOptimalityCertificate:
    def brute_force_best(self, pops, mins, budget, machines):
        """Exhaustive min-max share over all feasible factor vectors."""
        import itertools

        ids = list(pops)
        best = float("inf")
        ranges = [range(mins[i], machines + 1) for i in ids]
        for vector in itertools.product(*ranges):
            if sum(vector) > budget:
                continue
            share = max(pops[i] / k for i, k in zip(ids, vector))
            best = min(best, share)
        return best

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_blocks=st.integers(1, 5),
        machines=st.integers(2, 6),
    )
    def test_matches_brute_force(self, seed, num_blocks, machines):
        rng = random.Random(seed)
        pops = {i: rng.uniform(0.0, 50.0) for i in range(num_blocks)}
        mins = {i: rng.randint(1, 2) for i in range(num_blocks)}
        min_total = sum(mins.values())
        budget = rng.randint(min_total, min_total + 2 * num_blocks)
        result = compute_replication_factors(pops, mins, budget, machines)
        expected = self.brute_force_best(pops, mins, budget, machines)
        assert result.max_share == pytest.approx(expected)
        assert verify_optimal_factors(pops, mins, result.factors, budget, machines)

    def test_verify_rejects_suboptimal(self):
        pops = {0: 100.0, 1: 1.0}
        mins = {0: 1, 1: 1}
        bad = {0: 1, 1: 3}  # hot block starved
        assert not verify_optimal_factors(pops, mins, bad, budget=4, num_machines=10)

    def test_max_share_helper(self):
        assert max_share({}, {}) == 0.0
        assert max_share({0: 8.0, 1: 9.0}, {0: 2, 1: 3}) == pytest.approx(4.0)
