"""Unit and property tests for Algorithms 1 and 2 (local search)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.admissibility import (
    AlwaysAdmissible,
    RelativeCostPolicy,
    RelativeGapPolicy,
)
from repro.core.bounds import combined_lower_bound
from repro.core.instance import PlacementProblem
from repro.core.local_search import (
    _rack_pairs_by_gap,
    balance_node_level,
    balance_rack_aware,
    find_operation_between,
)
from repro.core.placement import PlacementState
from repro.core.reference import reference_balance_node_level


def random_state(rng, num_racks, per_rack, num_blocks, k=1, rho=1, capacity=None):
    """A feasible random placement for property tests."""
    capacity = capacity or max(4, (num_blocks * k * 2) // (num_racks * per_rack) + k)
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    pops = [rng.uniform(0.0, 100.0) for _ in range(num_blocks)]
    problem = PlacementProblem.from_popularities(
        topo, pops, replication_factor=k, rack_spread=rho
    )
    state = PlacementState(problem)
    machines = list(topo.machines)
    racks = list(topo.racks)
    for spec in problem:
        # Establish rack spread first, then fill arbitrarily.
        chosen_racks = rng.sample(racks, rho)
        chosen = []
        for rack in chosen_racks:
            options = [
                m for m in topo.machines_in_rack(rack)
                if state.can_add(spec.block_id, m)
            ]
            machine = rng.choice(options)
            state.add_replica(spec.block_id, machine)
            chosen.append(machine)
        while state.replica_count(spec.block_id) < k:
            options = [m for m in machines if state.can_add(spec.block_id, m)]
            state.add_replica(spec.block_id, rng.choice(options))
    return state


class TestAlgorithm1:
    def test_balances_trivial_two_machine_instance(self):
        topo = ClusterTopology.uniform(2, 1, capacity=10)
        problem = PlacementProblem.from_popularities(
            topo, [4.0, 4.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(1, 0)
        stats = balance_node_level(state)
        assert stats.converged
        assert state.load(0) == pytest.approx(4.0)
        assert state.load(1) == pytest.approx(4.0)
        assert stats.moves == 1

    def test_never_increases_cost(self):
        rng = random.Random(7)
        state = random_state(rng, num_racks=2, per_rack=4, num_blocks=30, k=2)
        before = state.cost()
        stats = balance_node_level(state)
        assert state.cost() <= before + 1e-9
        assert stats.final_cost == pytest.approx(state.cost())
        state.audit()

    def test_respects_max_operations(self):
        rng = random.Random(3)
        state = random_state(rng, num_racks=2, per_rack=5, num_blocks=40, k=1)
        stats = balance_node_level(state, max_operations=2)
        assert stats.total_operations <= 2

    def test_preserves_replica_counts(self):
        rng = random.Random(11)
        state = random_state(rng, num_racks=3, per_rack=3, num_blocks=25, k=2)
        counts = {b: state.replica_count(b) for b in range(25)}
        balance_node_level(state)
        assert counts == {b: state.replica_count(b) for b in range(25)}

    def test_theorem2_additive_bound(self):
        # SOL <= OPT + p_max <= (avg + p_max) is implied; check against
        # the certified lower bound: SOL <= LB + p_max >= OPT + p_max.
        rng = random.Random(23)
        for seed in range(5):
            rng = random.Random(seed)
            state = random_state(rng, num_racks=1, per_rack=6, num_blocks=40, k=1)
            balance_node_level(state)
            problem = state.problem
            p_max = problem.max_per_replica_popularity()
            lower = combined_lower_bound(problem)
            assert state.cost() <= 2 * lower + 1e-6
            assert state.cost() <= lower + p_max + 1e-6

    def test_swap_used_when_destination_full(self):
        topo = ClusterTopology.uniform(1, 2, capacity=2)
        problem = PlacementProblem.from_popularities(
            topo, [10.0, 1.0, 1.0, 2.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)  # load 10
        state.add_replica(3, 0)  # load 12 on machine 0 (full)
        state.add_replica(1, 1)
        state.add_replica(2, 1)  # load 2 on machine 1 (full)
        stats = balance_node_level(state)
        assert stats.swaps >= 1
        assert stats.moves == 0
        assert state.cost() < 12.0

    def test_stats_record_operation_log(self):
        rng = random.Random(5)
        state = random_state(rng, num_racks=2, per_rack=3, num_blocks=20, k=1)
        stats = balance_node_level(state, log_operations=True)
        assert len(stats.operations) == stats.total_operations

    def test_converges_on_empty_problem(self):
        topo = ClusterTopology.uniform(1, 2, capacity=2)
        problem = PlacementProblem(topology=topo, blocks=())
        state = PlacementState(problem)
        stats = balance_node_level(state)
        assert stats.converged
        assert stats.total_operations == 0


class TestAlgorithm2:
    def test_preserves_rack_spread(self):
        rng = random.Random(17)
        state = random_state(
            rng, num_racks=3, per_rack=3, num_blocks=30, k=3, rho=2
        )
        balance_rack_aware(state)
        for spec in state.problem:
            assert state.rack_spread(spec.block_id) >= spec.rack_spread
        state.audit()

    def test_never_increases_cost(self):
        rng = random.Random(29)
        state = random_state(
            rng, num_racks=4, per_rack=2, num_blocks=30, k=2, rho=2
        )
        before = state.cost()
        stats = balance_rack_aware(state)
        assert state.cost() <= before + 1e-9
        assert stats.converged

    def test_theorem4_additive_bound(self):
        for seed in range(5):
            rng = random.Random(seed + 100)
            state = random_state(
                rng, num_racks=3, per_rack=3, num_blocks=40, k=3, rho=2
            )
            balance_rack_aware(state)
            problem = state.problem
            lower = combined_lower_bound(problem)
            p_max = problem.max_per_replica_popularity()
            assert state.cost() <= lower + 3 * p_max + 1e-6
            assert state.cost() <= 4 * lower + 1e-6

    def test_beats_or_matches_node_level_respecting_racks(self):
        # Algorithm 2 includes Algorithm 1's moves, so from the same start
        # it should reach at least as balanced a configuration.
        rng = random.Random(41)
        state_a = random_state(
            rng, num_racks=3, per_rack=3, num_blocks=30, k=3, rho=2
        )
        state_b = state_a.copy()
        balance_rack_aware(state_a)
        # Intra-rack-only comparison: run Algorithm 1 but verify rack
        # constraints still hold afterwards (it uses feasibility checks).
        balance_node_level(state_b)
        for spec in state_b.problem:
            assert state_b.rack_spread(spec.block_id) >= spec.rack_spread
        assert state_a.cost() <= state_b.cost() + 1e-6


class TestEpsilonTradeOff:
    def test_larger_epsilon_moves_fewer_blocks(self):
        results = {}
        for epsilon in (0.1, 0.6, 0.9):
            rng = random.Random(55)
            state = random_state(rng, num_racks=2, per_rack=5,
                                 num_blocks=60, k=1)
            stats = balance_node_level(state, RelativeGapPolicy(epsilon))
            results[epsilon] = stats
        assert (
            results[0.1].blocks_transferred
            >= results[0.6].blocks_transferred
            >= results[0.9].blocks_transferred
        )
        assert results[0.1].final_cost <= results[0.9].final_cost + 1e-9

    def test_epsilon_zero_policy_equals_default(self):
        rng = random.Random(71)
        state_a = random_state(rng, num_racks=2, per_rack=4, num_blocks=30, k=1)
        state_b = state_a.copy()
        stats_a = balance_node_level(state_a, AlwaysAdmissible())
        stats_b = balance_node_level(state_b, RelativeGapPolicy(0.0))
        assert stats_a.final_cost == pytest.approx(stats_b.final_cost)


class TestFindOperationBetween:
    def test_returns_none_when_balanced(self):
        topo = ClusterTopology.uniform(1, 2, capacity=5)
        problem = PlacementProblem.from_popularities(
            topo, [3.0, 3.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(1, 1)
        assert find_operation_between(
            state, 0, 1, AlwaysAdmissible(), state.cost()
        ) is None

    def test_skips_shared_blocks(self):
        # A block on both machines contributes equally; only exclusive
        # blocks are candidates.
        topo = ClusterTopology.uniform(1, 2, capacity=5)
        problem = PlacementProblem.from_popularities(
            topo, [8.0, 3.0, 1.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(0, 1)  # temporarily over-replicated, shared
        state.add_replica(1, 0)
        state.add_replica(2, 0)
        op = find_operation_between(state, 0, 1, AlwaysAdmissible(), state.cost())
        assert op is not None
        # The shared block 0 must not be selected; the highest-share
        # exclusive block (1) is preferred.
        assert getattr(op, "block", getattr(op, "block_i", None)) == 1


class TestSwapWindowBoundaries:
    """The swap window ``(share_i - gap, share_i)`` is open on both ends.

    A partner exactly at ``share_i`` trades equal shares (no change); a
    partner exactly at ``share_i - gap`` swaps the machines' loads
    outright (no strict improvement).  Both must be rejected without an
    operation.
    """

    @staticmethod
    def _full_two_machine_state(popularities, placement):
        topo = ClusterTopology.uniform(1, 2, capacity=2)
        problem = PlacementProblem.from_popularities(
            topo, popularities, replication_factor=1
        )
        state = PlacementState(problem)
        for block, machine in placement.items():
            state.add_replica(block, machine)
        return state

    def test_candidates_exactly_on_both_boundaries_are_rejected(self):
        # Machine 0: shares {6, 4} (load 10); machine 1: shares {6, 2}
        # (load 8); gap 2.  Both machines are full, so moves are out.
        # For block share 6 the window is (4, 6): partner 6 sits exactly
        # at share_i, partner 2 is below.  For block share 4 the window
        # is (2, 4): partner 6 is above, partner 2 sits exactly at
        # share_i - gap.  No admissible operation may be returned.
        state = self._full_two_machine_state(
            [6.0, 4.0, 6.0, 2.0], {0: 0, 1: 0, 2: 1, 3: 1}
        )
        assert state.cost() == pytest.approx(10.0)
        op = find_operation_between(
            state, 0, 1, AlwaysAdmissible(), state.cost()
        )
        assert op is None
        stats = balance_node_level(state)
        assert stats.converged
        assert stats.total_operations == 0

    def test_candidate_strictly_inside_window_is_taken(self):
        # Machine 0: shares {6, 4} (load 10); machine 1: shares {5, 3.5}
        # (load 8.5); gap 1.5.  For block share 6 the window is
        # (4.5, 6) and partner 5 lies strictly inside: the swap must be
        # found and shave the pair maximum from 10 to 9.5.
        state = self._full_two_machine_state(
            [6.0, 4.0, 5.0, 3.5], {0: 0, 1: 0, 2: 1, 3: 1}
        )
        op = find_operation_between(
            state, 0, 1, AlwaysAdmissible(), state.cost()
        )
        assert op is not None
        assert op.block_i == 0 and op.block_j == 2
        op.apply(state)
        assert state.cost() == pytest.approx(9.5)


class TestRackPairOrdering:
    """Regression: rack pairs must rank by extreme-machine gap.

    The old ordering ranked racks by *total* load and only generated
    heavier-to-lighter pairs, so a large rack of lightly-loaded machines
    outranked — and shadowed — a small rack containing the true hottest
    machine.
    """

    @staticmethod
    def _heterogeneous_state():
        # Rack 0: three machines at load 5 (total 15).  Rack 1: one
        # machine at load 12 (total 12).  Total-load ranking sees rack 0
        # as the heavy rack; the true hottest machine is in rack 1.
        topo = ClusterTopology.from_rack_sizes([3, 1], capacity=16)
        pops = [5.0, 5.0, 5.0, 3.0, 3.0, 3.0, 3.0]
        problem = PlacementProblem.from_popularities(
            topo, pops, replication_factor=1
        )
        state = PlacementState(problem)
        for block in (0, 1, 2):
            state.add_replica(block, block)
        for block in (3, 4, 5, 6):
            state.add_replica(block, 3)
        return state

    def test_pairs_ranked_by_extreme_machine_gap(self):
        state = self._heterogeneous_state()
        pairs = _rack_pairs_by_gap(state)
        # Hot-machine rack first: gap 12 - 5 = 7 beats any pair out of
        # rack 0 (5 - 12 < 0 is dropped entirely).
        assert pairs[0] == (1, 0)
        assert (0, 1) not in pairs

    def test_hot_machine_in_small_rack_gets_drained(self):
        state = self._heterogeneous_state()
        assert state.cost() == pytest.approx(12.0)
        stats = balance_rack_aware(state)
        assert stats.converged
        # The old total-load ordering never probed rack 1 as a source,
        # converging at cost 12; the fix must spread its load.
        assert state.cost() < 12.0 - 1e-9
        assert state.cost() <= 8.0 + 1e-9
        state.audit()

    def test_single_rack_has_no_pairs(self):
        rng = random.Random(2)
        state = random_state(rng, num_racks=1, per_rack=3, num_blocks=10)
        assert _rack_pairs_by_gap(state) == []


class _RecordingPolicy:
    """Wraps a policy, logging every admissibility decision it makes."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = []

    def is_admissible(self, outcome, global_cost):
        verdict = self.inner.is_admissible(outcome, global_cost)
        self.calls.append((outcome, global_cost, verdict))
        return verdict


class TestCachedObjectiveThreading:
    def test_admissibility_decisions_identical_to_per_iteration_recompute(self):
        # The incremental engine computes the objective once per applied
        # operation and threads it through; the reference recomputes it
        # every iteration.  Every (outcome, global_cost, verdict) triple
        # the policy sees must be identical, or the cached value leaked
        # staleness into an admissibility decision.
        rng = random.Random(13)
        state_inc = random_state(
            rng, num_racks=2, per_rack=4, num_blocks=50, k=2
        )
        state_ref = state_inc.copy()
        recorder_inc = _RecordingPolicy(RelativeCostPolicy(0.1))
        recorder_ref = _RecordingPolicy(RelativeCostPolicy(0.1))
        stats_inc = balance_node_level(state_inc, policy=recorder_inc)
        stats_ref = reference_balance_node_level(state_ref, policy=recorder_ref)
        assert recorder_inc.calls == recorder_ref.calls
        assert stats_inc.final_cost == stats_ref.final_cost
        assert (
            stats_inc.admissibility_rejections
            == stats_ref.admissibility_rejections
        )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_blocks=st.integers(2, 40),
    per_rack=st.integers(2, 5),
    num_racks=st.integers(1, 4),
)
def test_property_node_level_invariants(seed, num_blocks, per_rack, num_racks):
    """Algorithm 1 never worsens, terminates and preserves constraints."""
    rng = random.Random(seed)
    k = rng.randint(1, min(3, num_racks * per_rack))
    rho = rng.randint(1, min(k, num_racks))
    state = random_state(rng, num_racks, per_rack, num_blocks, k=k, rho=rho)
    total_before = sum(state.replica_count(b) for b in range(num_blocks))
    cost_before = state.cost()
    stats = balance_node_level(state)
    assert stats.converged
    assert state.cost() <= cost_before + 1e-9
    assert sum(state.replica_count(b) for b in range(num_blocks)) == total_before
    for spec in state.problem:
        assert state.rack_spread(spec.block_id) >= spec.rack_spread
        assert state.replica_count(spec.block_id) == spec.replication_factor
    for machine in state.topology.machines:
        assert state.used_capacity(machine) <= state.topology.capacity_of(machine)
    state.audit()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_blocks=st.integers(2, 40),
    per_rack=st.integers(2, 5),
    num_racks=st.integers(1, 4),
)
def test_property_local_search_invariants(seed, num_blocks, per_rack, num_racks):
    """Local search preserves all replicas/constraints and never worsens."""
    rng = random.Random(seed)
    k = rng.randint(1, min(3, num_racks * per_rack))
    rho = rng.randint(1, min(k, num_racks))
    state = random_state(rng, num_racks, per_rack, num_blocks, k=k, rho=rho)
    total_before = sum(state.replica_count(b) for b in range(num_blocks))
    cost_before = state.cost()
    stats = balance_rack_aware(state)
    assert stats.converged
    assert state.cost() <= cost_before + 1e-9
    assert sum(state.replica_count(b) for b in range(num_blocks)) == total_before
    for spec in state.problem:
        assert state.rack_spread(spec.block_id) >= spec.rack_spread
        assert state.replica_count(spec.block_id) == spec.replication_factor
    for machine in state.topology.machines:
        assert state.used_capacity(machine) <= state.topology.capacity_of(machine)
    state.audit()


class TestPairPrunerBounded:
    """The exhausted-pair memo must stay bounded and eviction must be free.

    Losing a memo entry only forfeits a prune — the re-probe recomputes
    the identical result and rejection count — so a tiny cap must leave
    the operation sequence and every ``SearchStats`` total except the
    probed/pruned split unchanged.
    """

    def _pruner_workout(self, max_entries):
        from repro.core.local_search import SearchStats, _PairPruner

        state = random_state(
            random.Random(11), num_racks=3, per_rack=4, num_blocks=60,
            k=2, rho=2,
        )
        pruner = _PairPruner(state, max_entries=max_entries)
        stats = SearchStats(initial_cost=state.cost(), final_cost=0.0)
        machines = list(state.topology.machines)
        cost = state.cost()
        for src in machines:
            for dst in machines:
                if src != dst:
                    pruner.find(src, dst, AlwaysAdmissible(), cost, stats)
        return pruner, stats

    def test_memo_never_exceeds_cap(self):
        pruner, _ = self._pruner_workout(max_entries=7)
        assert len(pruner) <= 7

    def test_unbounded_default_is_capped_too(self):
        from repro.core.local_search import _PairPruner

        pruner, _ = self._pruner_workout(max_entries=None)
        assert len(pruner) <= _PairPruner.DEFAULT_MAX_ENTRIES

    def test_tiny_cap_changes_no_search_outcome(self):
        """Full searches with cap=1 vs uncapped: identical everything."""
        from repro.core import local_search as ls

        state_capped = random_state(
            random.Random(12), num_racks=4, per_rack=3, num_blocks=70,
            k=2, rho=2,
        )
        state_free = state_capped.copy()
        original = ls._PairPruner.DEFAULT_MAX_ENTRIES
        ls._PairPruner.DEFAULT_MAX_ENTRIES = 1
        try:
            capped = balance_rack_aware(state_capped, log_operations=True)
        finally:
            ls._PairPruner.DEFAULT_MAX_ENTRIES = original
        free = balance_rack_aware(state_free, log_operations=True)
        assert capped.operations == free.operations
        assert capped.final_cost == free.final_cost
        assert capped.iterations == free.iterations
        assert (
            capped.admissibility_rejections == free.admissibility_rejections
        )
        assert state_capped.to_assignment() == state_free.to_assignment()
        # The split may shift (fewer prunes, more probes) but the total
        # pair visits are conserved.
        assert (
            capped.pairs_probed + capped.pairs_pruned
            == free.pairs_probed + free.pairs_pruned
        )
        assert capped.pairs_pruned <= free.pairs_pruned
