"""Differential tests: columnar engine vs the dict/heap incremental engine.

The array-backed :class:`~repro.core.columnar.ColumnarPlacementState`
must be operation-for-operation identical to the parent
:class:`~repro.core.placement.PlacementState` under both search
algorithms — same operation log, same final cost, same rejection
counts, same final placement.  The hypothesis suite drives random
mutation sequences (move / swap / add / remove) through both engines in
lock step and compares every observable (loads, shares, costs,
extremes) after every step.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.admissibility import RelativeCostPolicy, RelativeGapPolicy
from repro.core.columnar import (
    ColumnarPlacementState,
    columnar_from_state,
    make_columnar,
)
from repro.core.instance import PlacementProblem
from repro.core.local_search import balance_node_level, balance_rack_aware
from repro.core.placement import PlacementState

from .test_local_search import random_state

SEEDS = list(range(16))


def _columnar_twin(state):
    """Columnar clone with byte-identical loads and indices."""
    twin = columnar_from_state(state)
    assert isinstance(twin, ColumnarPlacementState)
    np.testing.assert_array_equal(twin.loads(), state.loads())
    return twin


def _assert_lockstep(columnar, incremental, state_col, state_inc):
    assert columnar.final_cost == incremental.final_cost
    assert columnar.converged == incremental.converged
    assert columnar.iterations == incremental.iterations
    assert columnar.operations == incremental.operations
    assert (
        columnar.admissibility_rejections
        == incremental.admissibility_rejections
    )
    assert state_col.to_assignment() == state_inc.to_assignment()
    state_col.audit()


@pytest.mark.parametrize("seed", SEEDS)
def test_node_level_matches_incremental(seed):
    state_inc = random_state(
        random.Random(seed), num_racks=3, per_rack=4, num_blocks=60, k=2, rho=2
    )
    state_col = _columnar_twin(state_inc)
    inc = balance_node_level(state_inc, log_operations=True)
    col = balance_node_level(state_col, log_operations=True)
    _assert_lockstep(col, inc, state_col, state_inc)


@pytest.mark.parametrize("seed", SEEDS)
def test_rack_aware_matches_incremental(seed):
    state_inc = random_state(
        random.Random(seed), num_racks=4, per_rack=3, num_blocks=80, k=3, rho=2
    )
    state_col = _columnar_twin(state_inc)
    inc = balance_rack_aware(state_inc, log_operations=True)
    col = balance_rack_aware(state_col, log_operations=True)
    _assert_lockstep(col, inc, state_col, state_inc)


@pytest.mark.parametrize("seed", SEEDS[:8])
@pytest.mark.parametrize(
    "policy_factory",
    [lambda: RelativeCostPolicy(0.1), lambda: RelativeGapPolicy(0.3)],
    ids=["relative-cost", "relative-gap"],
)
def test_rack_aware_matches_under_policies(seed, policy_factory):
    state_inc = random_state(
        random.Random(seed), num_racks=4, per_rack=3, num_blocks=70, k=2, rho=2
    )
    state_col = _columnar_twin(state_inc)
    inc = balance_rack_aware(
        state_inc, policy=policy_factory(), log_operations=True
    )
    col = balance_rack_aware(
        state_col, policy=policy_factory(), log_operations=True
    )
    _assert_lockstep(col, inc, state_col, state_inc)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_budgeted_run_is_prefix_of_full_run(seed):
    """A capped columnar run applies the first N ops of the full search."""
    state_full = random_state(
        random.Random(seed), num_racks=4, per_rack=3, num_blocks=80, k=2, rho=2
    )
    state_capped = _columnar_twin(state_full)
    state_full_col = _columnar_twin(state_full)
    full = balance_rack_aware(state_full_col, log_operations=True)
    cap = max(1, full.total_operations // 2)
    capped = balance_rack_aware(
        state_capped, max_operations=cap, log_operations=True
    )
    assert capped.operations == full.operations[:cap]


class TestColumnarQueries:
    def _mutated_state(self, seed):
        state = random_state(
            random.Random(seed), num_racks=4, per_rack=4, num_blocks=50,
            k=2, rho=2,
        )
        return _columnar_twin(state)

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_rack_extremes_match_per_rack_queries(self, seed):
        state = self._mutated_state(seed)
        high, low, hot, cold = state.rack_extremes()
        for rack in state.topology.racks:
            assert high[rack] == state.argmax_machine_in_rack(rack)
            assert low[rack] == state.argmin_machine_in_rack(rack)
            assert hot[rack] == state.load(int(high[rack]))
            assert cold[rack] == state.load(int(low[rack]))

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_extremes_refresh_after_mutation(self, seed):
        state = self._mutated_state(seed)
        state.rack_extremes()  # prime the cache
        src = state.argmax_machine()
        block = next(iter(state.blocks_on(src)))
        dst = next(
            m for m in state.topology.machines
            if state.can_move(block, src, m)
        )
        state.move(block, src, dst)
        high, low, hot, cold = state.rack_extremes()
        for rack in state.topology.racks:
            assert high[rack] == state.argmax_machine_in_rack(rack)
            assert low[rack] == state.argmin_machine_in_rack(rack)

    def test_copy_preserves_columnar_class(self):
        state = self._mutated_state(0)
        clone = state.copy()
        assert isinstance(clone, ColumnarPlacementState)
        assert clone.to_assignment() == state.to_assignment()
        assert clone.cost() == state.cost()

    def test_state_bytes_counts_columns(self):
        state = self._mutated_state(0)
        assert state.state_bytes() > 0
        assert state._index_state_bytes() > 0

    def test_recompute_rebuilds_extremes(self):
        state = self._mutated_state(1)
        state.rack_extremes()  # prime, then invalidate via recompute
        state.recompute()
        high, low, _, _ = state.rack_extremes()
        for rack in state.topology.racks:
            assert high[rack] == state.argmax_machine_in_rack(rack)
            assert low[rack] == state.argmin_machine_in_rack(rack)

    def test_make_columnar_empty_state(self):
        topo = ClusterTopology.uniform(2, 2, capacity=4)
        problem = PlacementProblem.from_popularities(
            topo, [1.0, 2.0], replication_factor=1
        )
        state = make_columnar(problem)
        assert state.cost() == 0.0
        state.add_replica(0, 0)
        assert state.cost() == 1.0


# -- hypothesis: random mutation sequences, engines in lock step -------------

_ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["move", "swap", "add", "remove"]),
        st.integers(min_value=0, max_value=2 ** 31 - 1),
    ),
    min_size=1,
    max_size=40,
)


def _apply_random_action(rng, dict_state, col_state, action):
    """Apply one feasible random mutation to both engines identically."""
    problem = dict_state.problem
    machines = list(dict_state.topology.machines)
    blocks = [spec.block_id for spec in problem]
    if action == "move":
        for _ in range(20):
            block = rng.choice(blocks)
            holders = sorted(dict_state.machines_of(block))
            if not holders:
                continue
            src = rng.choice(holders)
            dst = rng.choice(machines)
            if dict_state.can_move(block, src, dst):
                dict_state.move(block, src, dst)
                col_state.move(block, src, dst)
                return True
    elif action == "swap":
        for _ in range(20):
            block_i, block_j = rng.sample(blocks, 2)
            holders_i = sorted(dict_state.machines_of(block_i))
            holders_j = sorted(dict_state.machines_of(block_j))
            if not holders_i or not holders_j:
                continue
            m = rng.choice(holders_i)
            n = rng.choice(holders_j)
            if dict_state.can_swap(block_i, m, block_j, n):
                dict_state.swap(block_i, m, block_j, n)
                col_state.swap(block_i, m, block_j, n)
                return True
    elif action == "add":
        for _ in range(20):
            block = rng.choice(blocks)
            machine = rng.choice(machines)
            if dict_state.can_add(block, machine):
                dict_state.add_replica(block, machine)
                col_state.add_replica(block, machine)
                return True
    else:  # remove
        for _ in range(20):
            block = rng.choice(blocks)
            holders = sorted(dict_state.machines_of(block))
            if not holders:
                continue
            machine = rng.choice(holders)
            if dict_state.can_remove(block, machine, enforce_min=False):
                dict_state.remove_replica(
                    block, machine, enforce_min=False
                )
                col_state.remove_replica(
                    block, machine, enforce_min=False
                )
                return True
    return False


@given(seed=st.integers(min_value=0, max_value=2 ** 20), actions=_ACTIONS)
@settings(max_examples=40, deadline=None)
def test_mutation_sequences_keep_engines_identical(seed, actions):
    """Random move/swap/add/remove streams leave both engines equal.

    After every mutation the columnar engine must agree with the
    dict-backed engine on loads (bit-identical floats), shares, cost,
    and per-rack extremes.
    """
    dict_state = random_state(
        random.Random(seed), num_racks=3, per_rack=3, num_blocks=24,
        k=2, rho=2,
    )
    col_state = _columnar_twin(dict_state)
    rng = random.Random(seed ^ 0x5EED)
    for action, action_seed in actions:
        step_rng = random.Random(action_seed)
        applied = _apply_random_action(rng, dict_state, col_state, action)
        del step_rng
        if not applied:
            continue
        np.testing.assert_array_equal(col_state.loads(), dict_state.loads())
        assert col_state.cost() == dict_state.cost()
        assert col_state.min_load() == dict_state.min_load()
        for spec in dict_state.problem:
            assert col_state.share(spec.block_id) == dict_state.share(
                spec.block_id
            )
        for rack in dict_state.topology.racks:
            assert col_state.argmax_machine_in_rack(
                rack
            ) == dict_state.argmax_machine_in_rack(rack)
            assert col_state.argmin_machine_in_rack(
                rack
            ) == dict_state.argmin_machine_in_rack(rack)
    assert col_state.to_assignment() == dict_state.to_assignment()
    col_state.audit()
