"""Tests for PlacementState's incremental search indices.

Covers the three index families the local-search engine relies on: lazy
extreme heaps (global and per-rack), persistent per-machine sorted
``(share, block_id)`` indices, and machine change epochs.  See the
``PlacementState`` module docstring for the invariants.
"""

import random

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.instance import PlacementProblem
from repro.core.placement import PlacementState

from .test_local_search import random_state


def _mutate_randomly(state, rng, steps):
    """Apply a random mix of all four mutation kinds."""
    blocks = [spec.block_id for spec in state.problem]
    machines = list(state.topology.machines)
    for _ in range(steps):
        kind = rng.randrange(4)
        block = rng.choice(blocks)
        if kind == 0:
            options = [m for m in machines if state.can_add(block, m)]
            if options:
                state.add_replica(block, rng.choice(options))
        elif kind == 1:
            options = [m for m in machines if state.can_remove(block, m)]
            if options:
                state.remove_replica(block, rng.choice(options))
        elif kind == 2:
            holders = list(state.machines_of(block))
            src = rng.choice(holders)
            options = [m for m in machines if state.can_move(block, src, m)]
            if options:
                state.move(block, src, rng.choice(options))
        else:
            other = rng.choice(blocks)
            holders_i = list(state.machines_of(block))
            holders_j = list(state.machines_of(other))
            if holders_i and holders_j:
                src = rng.choice(holders_i)
                dst = rng.choice(holders_j)
                if state.can_swap(block, src, other, dst):
                    state.swap(block, src, other, dst)


class TestExtremeHeaps:
    @pytest.mark.parametrize("seed", range(6))
    def test_extremes_match_scans_after_random_mutations(self, seed):
        rng = random.Random(seed)
        state = random_state(
            rng, num_racks=3, per_rack=4, num_blocks=40, k=2, rho=2
        )
        for _ in range(10):
            _mutate_randomly(state, rng, 25)
            loads = state.loads()
            assert state.argmax_machine() == int(loads.argmax())
            assert state.argmin_machine() == int(loads.argmin())
            assert state.cost() == loads[loads.argmax()]
            assert state.min_load() == loads[loads.argmin()]
            for rack in state.topology.racks:
                members = state.topology.machines_in_rack(rack)
                assert state.argmax_machine_in_rack(rack) == max(
                    members, key=lambda m: loads[m]
                )
                assert state.argmin_machine_in_rack(rack) == min(
                    members, key=lambda m: loads[m]
                )
        state.audit()

    def test_tie_break_is_lowest_machine_id(self):
        topo = ClusterTopology.uniform(2, 2, capacity=4)
        problem = PlacementProblem.from_popularities(
            topo, [6.0, 6.0, 6.0, 6.0], replication_factor=1
        )
        state = PlacementState(problem)
        for block, machine in enumerate([0, 1, 2, 3]):
            state.add_replica(block, machine)
        # All four machines tie; numpy argmax/argmin take the first index.
        assert state.argmax_machine() == 0
        assert state.argmin_machine() == 0
        assert state.argmax_machine_in_rack(1) == 2
        assert state.argmin_machine_in_rack(1) == 2

    def test_heap_compaction_preserves_correctness(self):
        # Enough mutations on a tiny cluster to trip the compaction
        # threshold (8*M + 64) several times over.
        topo = ClusterTopology.uniform(1, 2, capacity=200)
        problem = PlacementProblem.from_popularities(
            topo, [5.0, 3.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(1, 1)
        for _ in range(300):
            state.move(0, 0, 1)
            state.move(0, 1, 0)
        assert len(state._max_heap) <= state._heap_compact_at
        assert state.argmax_machine() == 0
        assert state.cost() == pytest.approx(5.0)

    def test_invalid_rack_still_raises(self):
        rng = random.Random(0)
        state = random_state(rng, num_racks=2, per_rack=2, num_blocks=5)
        with pytest.raises(Exception):
            state.argmax_machine_in_rack(99)


class TestShareIndex:
    @pytest.mark.parametrize("seed", range(6))
    def test_index_is_exact_after_random_mutations(self, seed):
        rng = random.Random(seed + 50)
        state = random_state(
            rng, num_racks=2, per_rack=3, num_blocks=30, k=2, rho=1
        )
        _mutate_randomly(state, rng, 120)
        for machine in state.topology.machines:
            expected = sorted(
                (state.share(b), b) for b in state.blocks_on_view(machine)
            )
            assert list(state.share_index(machine)) == expected

    def test_replication_change_reshapes_all_holders(self):
        # add_replica dilutes the share on every existing holder; each
        # holder's index entry must carry the new exact share.
        topo = ClusterTopology.uniform(1, 3, capacity=4)
        problem = PlacementProblem.from_popularities(
            topo, [9.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        assert list(state.share_index(0)) == [(9.0, 0)]
        state.add_replica(0, 1)
        assert list(state.share_index(0)) == [(4.5, 0)]
        assert list(state.share_index(1)) == [(4.5, 0)]
        state.add_replica(0, 2)
        assert list(state.share_index(0)) == [(3.0, 0)]
        state.remove_replica(0, 2, enforce_min=False)
        assert list(state.share_index(0)) == [(4.5, 0)]
        assert list(state.share_index(2)) == []

    def test_copy_is_independent(self):
        rng = random.Random(3)
        state = random_state(rng, num_racks=2, per_rack=2, num_blocks=10, k=2)
        clone = state.copy()
        _mutate_randomly(clone, rng, 40)
        clone.audit()
        state.audit()
        for machine in state.topology.machines:
            expected = sorted(
                (state.share(b), b) for b in state.blocks_on_view(machine)
            )
            assert list(state.share_index(machine)) == expected


class TestBlocksOnView:
    def test_view_is_zero_copy_and_copy_is_immutable(self):
        rng = random.Random(1)
        state = random_state(rng, num_racks=1, per_rack=2, num_blocks=8)
        view = state.blocks_on_view(0)
        assert view is state.blocks_on_view(0)
        assert state.blocks_on(0) == frozenset(view)
        assert isinstance(state.blocks_on(0), frozenset)

    def test_view_tracks_mutations(self):
        topo = ClusterTopology.uniform(1, 2, capacity=4)
        problem = PlacementProblem.from_popularities(
            topo, [2.0, 1.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(1, 0)
        view = state.blocks_on_view(0)
        state.move(1, 0, 1)
        assert view == {0}


class TestMachineEpochs:
    def test_move_bumps_both_endpoints(self):
        topo = ClusterTopology.uniform(1, 3, capacity=4)
        problem = PlacementProblem.from_popularities(
            topo, [2.0, 1.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        state.add_replica(1, 1)
        before = [state.machine_epoch(m) for m in range(3)]
        state.move(0, 0, 2)
        assert state.machine_epoch(0) > before[0]
        assert state.machine_epoch(2) > before[2]
        assert state.machine_epoch(1) == before[1]

    def test_remote_operation_bumps_all_holders(self):
        # Moving one replica of a block across racks changes the block's
        # rack spread, which can change swap feasibility in probes whose
        # endpoint is a *different* holder of that block.  The memo in
        # the search engine is only sound if those holders' epochs move.
        topo = ClusterTopology.uniform(3, 2, capacity=4)
        problem = PlacementProblem.from_popularities(
            topo, [6.0, 1.0], replication_factor=2, rack_spread=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)  # rack 0
        state.add_replica(0, 2)  # rack 1
        state.add_replica(1, 4)
        state.add_replica(1, 5)
        bystander_epoch = state.machine_epoch(0)
        state.move(0, 2, 4)  # rack 1 -> rack 2; machine 0 untouched directly
        assert state.machine_epoch(0) > bystander_epoch

    def test_share_change_bumps_holders(self):
        topo = ClusterTopology.uniform(1, 3, capacity=4)
        problem = PlacementProblem.from_popularities(
            topo, [8.0], replication_factor=1
        )
        state = PlacementState(problem)
        state.add_replica(0, 0)
        epoch = state.machine_epoch(0)
        state.add_replica(0, 1)  # dilutes the share held on machine 0
        assert state.machine_epoch(0) > epoch

    def test_recompute_bumps_every_epoch(self):
        rng = random.Random(7)
        state = random_state(rng, num_racks=2, per_rack=2, num_blocks=10)
        before = [state.machine_epoch(m) for m in state.topology.machines]
        state.recompute()
        after = [state.machine_epoch(m) for m in state.topology.machines]
        assert all(b > a for a, b in zip(before, after))
