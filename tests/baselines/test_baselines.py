"""Tests for the Scarlett and DARE baseline systems."""

import random

import pytest

from repro.baselines.dare import DareConfig, DareSystem
from repro.baselines.scarlett import (
    ScarlettConfig,
    ScarlettScheme,
    ScarlettSystem,
    scarlett_factors,
)
from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.errors import InvalidProblemError


def make_namenode(num_racks=2, per_rack=4, capacity=100, seed=0):
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity)
    return Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        rng=random.Random(seed),
    )


class TestScarlettFactors:
    def test_priority_serves_hottest_first(self):
        factors = scarlett_factors(
            popularities={0: 10.0, 1: 5.0, 2: 1.0},
            base_factors={0: 3, 1: 3, 2: 3},
            budget_blocks=7,
            scheme=ScarlettScheme.PRIORITY,
        )
        # File 0 wants 10, gets all 7 extra replicas.
        assert factors[0] == 10
        assert factors[1] == 3
        assert factors[2] == 3

    def test_round_robin_spreads_budget(self):
        factors = scarlett_factors(
            popularities={0: 10.0, 1: 5.0, 2: 1.0},
            base_factors={0: 3, 1: 3, 2: 3},
            budget_blocks=4,
            scheme=ScarlettScheme.ROUND_ROBIN,
        )
        # Rounds: 0->4, 1->4, 0->5, 1->5 (file 2 already at desired 3).
        assert factors[0] == 5
        assert factors[1] == 5
        assert factors[2] == 3

    def test_budget_never_exceeded(self):
        for scheme in ScarlettScheme:
            factors = scarlett_factors(
                popularities={i: float(10 - i) for i in range(5)},
                base_factors={i: 2 for i in range(5)},
                budget_blocks=6,
                scheme=scheme,
            )
            extra = sum(factors[i] - 2 for i in range(5))
            assert extra <= 6

    def test_max_factor_cap(self):
        factors = scarlett_factors(
            popularities={0: 100.0},
            base_factors={0: 1},
            budget_blocks=50,
            scheme=ScarlettScheme.PRIORITY,
            max_factor=4,
        )
        assert factors[0] == 4

    def test_desired_never_below_base(self):
        factors = scarlett_factors(
            popularities={0: 0.0},
            base_factors={0: 3},
            budget_blocks=10,
            scheme=ScarlettScheme.PRIORITY,
        )
        assert factors[0] == 3

    def test_key_mismatch_rejected(self):
        with pytest.raises(InvalidProblemError):
            scarlett_factors({0: 1.0}, {1: 3}, 5, ScarlettScheme.PRIORITY)


class TestScarlettSystem:
    def test_periodic_optimization_raises_hot_file_factor(self):
        nn = make_namenode()
        config = ScarlettConfig(budget_blocks=10, window=3600.0)
        system = ScarlettSystem(nn, config)
        hot = nn.create_file("/hot", num_blocks=2)
        nn.create_file("/cold", num_blocks=2)
        for _ in range(12):
            for block_id in hot.block_ids:
                nn.record_access(block_id, reader=0)
        factors = system.optimize(now=100.0)
        assert factors[hot.file_id] > 3
        for block_id in hot.block_ids:
            assert nn.blockmap.meta(block_id).replication_factor > 3
        assert system.periods_run == 1
        assert system.replicas_granted > 0

    def test_noop_without_accesses(self):
        nn = make_namenode()
        system = ScarlettSystem(nn, ScarlettConfig(budget_blocks=10))
        nn.create_file("/a", num_blocks=1)
        assert system.optimize(now=10.0) == {}

    def test_config_validation(self):
        with pytest.raises(InvalidProblemError):
            ScarlettConfig(budget_blocks=-1)
        with pytest.raises(InvalidProblemError):
            ScarlettConfig(budget_blocks=1, base_replication=0)
        with pytest.raises(InvalidProblemError):
            ScarlettConfig(budget_blocks=1, desired_per_access=0.0)
        with pytest.raises(InvalidProblemError):
            ScarlettConfig(budget_blocks=1, window=0.0)


class TestDareSystem:
    def test_remote_read_replicates_with_probability_one(self):
        nn = make_namenode()
        dare = DareSystem(nn, DareConfig(probability=1.0, budget_blocks=10),
                          rng=random.Random(0))
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        outsider = next(
            n for n in nn.topology.machines
            if n not in nn.blockmap.locations(block)
        )
        source = nn.record_access(block, outsider)
        created = dare.on_read(block, reader=outsider, source=source)
        assert created
        assert outsider in nn.blockmap.locations(block)
        assert dare.replicas_created == 1
        assert dare.extra_replicas == 1

    def test_local_read_never_replicates(self):
        nn = make_namenode()
        dare = DareSystem(nn, DareConfig(probability=1.0))
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        holder = next(iter(nn.blockmap.locations(block)))
        assert not dare.on_read(block, reader=holder, source=holder)

    def test_budget_evicts_lru(self):
        nn = make_namenode(per_rack=8)
        dare = DareSystem(nn, DareConfig(probability=1.0, budget_blocks=2),
                          rng=random.Random(0))
        metas = [nn.create_file(f"/f{i}", num_blocks=1) for i in range(4)]
        for meta in metas:
            block = meta.block_ids[0]
            outsider = next(
                n for n in nn.topology.machines
                if n not in nn.blockmap.locations(block)
            )
            source = nn.record_access(block, outsider)
            dare.on_read(block, reader=outsider, source=source)
        assert dare.extra_replicas <= 2
        assert dare.replicas_evicted >= 1
        # Eviction never breaks the base factor.
        for meta in metas:
            assert nn.blockmap.replica_count(meta.block_ids[0]) >= 3

    def test_probability_zero_rejected(self):
        with pytest.raises(InvalidProblemError):
            DareConfig(probability=0.0)
        with pytest.raises(InvalidProblemError):
            DareConfig(budget_blocks=-1)

    def test_deterministic_coin_flips(self):
        nn = make_namenode()
        dare = DareSystem(nn, DareConfig(probability=0.5, budget_blocks=100),
                          rng=random.Random(42))
        meta = nn.create_file("/a", num_blocks=1)
        block = meta.block_ids[0]
        outcomes = []
        for reader in nn.topology.machines:
            if reader in nn.blockmap.locations(block):
                continue
            outcomes.append(dare.on_read(block, reader=reader, source=0))
        # Some flips succeed, some fail, deterministically.
        assert any(outcomes) and not all(outcomes)
