"""Full-system integration tests: DES + DFS + scheduler + Aurora + failures.

These exercise every subsystem together: jobs stream through the
scheduler while Aurora periodically re-optimizes, datanodes crash and
recover on a random schedule detected via heartbeats, and the run must
end with every job complete and every invariant intact.
"""

import random

import pytest

from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.failures import generate_failure_plan
from repro.cluster.topology import ClusterTopology
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.scheduler.capacity import MapReduceScheduler
from repro.scheduler.delay import DelaySchedulingPolicy
from repro.scheduler.job import Job
from repro.scheduler.runtime import TaskRuntimeModel
from repro.simulation.engine import Simulation
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


def build_stack(seed=0, with_aurora=True, num_racks=3, per_rack=4):
    sim = Simulation()
    topo = ClusterTopology.uniform(num_racks, per_rack, capacity=120)
    transfers = TransferService(topo, sim=sim, rng=random.Random(seed + 1))
    nn = Namenode(
        topo,
        placement_policy=DefaultHdfsPolicy(random.Random(seed + 2)),
        sim=sim, transfer_service=transfers, rng=random.Random(seed + 3),
    )
    aurora = None
    if with_aurora:
        aurora = AuroraSystem(nn, AuroraConfig(
            epsilon=0.3, period=1800.0,
            replication_budget=2000,
        ))
        aurora.run_periodic(sim)
    scheduler = MapReduceScheduler(
        sim, nn, slots_per_machine=3,
        runtime=TaskRuntimeModel(jitter=0.05, rng=random.Random(seed + 4)),
        delay_policy=DelaySchedulingPolicy(max_skips=3),
    )
    return sim, nn, scheduler, aurora


def load_trace_and_jobs(nn, scheduler, sim, seed=0, duration_hours=2.0):
    trace = generate_yahoo_trace(YahooTraceConfig(
        num_files=30, jobs_per_hour=120.0, duration_hours=duration_hours,
        mean_task_duration=45.0, seed=seed,
    ))
    file_blocks = {}
    for f in trace.files:
        meta = nn.create_file(f"/data/{f.file_id}", num_blocks=f.num_blocks)
        file_blocks[f.file_id] = list(meta.block_ids)
    jobs = []
    for tj in trace.jobs:
        job = Job(job_id=tj.job_id, submit_time=tj.submit_time,
                  block_ids=file_blocks[tj.file_id],
                  task_duration=tj.task_duration)
        jobs.append(job)
        sim.schedule_at(tj.submit_time, lambda j=job: scheduler.submit_job(j))
    return trace, jobs


class TestFailureStorm:
    def test_jobs_survive_rolling_failures(self):
        sim, nn, scheduler, aurora = build_stack(seed=7)
        heartbeats = HeartbeatService(sim, nn, interval=3.0, expiry=30.0)
        heartbeats.start()
        trace, jobs = load_trace_and_jobs(nn, scheduler, sim, seed=7)

        plan = generate_failure_plan(
            nn.topology, horizon=trace.horizon, rng=random.Random(13),
            machine_mtbf=3 * 3600.0, repair_time=240.0,
        )
        for event in plan:
            if event.is_recovery:
                sim.schedule_at(event.time, lambda e=event: (
                    nn.recover_node(e.target),
                    scheduler.recover_machine(e.target),
                ))
            else:
                sim.schedule_at(event.time, lambda e=event: (
                    nn.datanode(e.target).crash(),
                    scheduler.fail_machine(e.target),
                ))
        assert plan.machine_outages() > 0

        sim.run(until=trace.horizon)
        heartbeats.stop()
        # Recover everything and drain.
        for dn in nn.datanodes:
            if not dn.alive:
                nn.recover_node(dn.node_id)
                scheduler.recover_machine(dn.node_id)
        nn.check_replication()
        sim.run(until=trace.horizon + 4 * 3600.0)

        assert scheduler.jobs_completed == len(jobs)
        nn.audit()
        live = nn.live_nodes()
        for path in nn.list_files():
            for block in nn.file(path).block_ids:
                assert nn.blockmap.is_available(block, live)

    def test_rack_outage_mid_run(self):
        sim, nn, scheduler, aurora = build_stack(seed=3)
        trace, jobs = load_trace_and_jobs(nn, scheduler, sim, seed=3,
                                          duration_hours=1.0)
        def kill_rack():
            nn.fail_rack(0)
            for node in nn.topology.machines_in_rack(0):
                scheduler.fail_machine(node)

        def revive_rack():
            nn.recover_rack(0)
            for node in nn.topology.machines_in_rack(0):
                scheduler.recover_machine(node)

        sim.schedule_at(600.0, kill_rack)
        sim.schedule_at(1500.0, revive_rack)
        sim.run(until=trace.horizon)
        sim.run(until=trace.horizon + 4 * 3600.0)
        assert scheduler.jobs_completed == len(jobs)
        nn.audit()


class TestAuroraConvergence:
    def test_stable_workload_converges_to_balanced_placement(self):
        """Section V: with stable popularity Aurora converges to
        near-optimal balance over periods (Theorem 9)."""
        sim, nn, scheduler, aurora = build_stack(seed=5, with_aurora=True)
        rng = random.Random(5)
        metas = [nn.create_file(f"/f{i}", num_blocks=2) for i in range(15)]
        weights = [1.0 / (rank + 1) for rank in range(15)]

        def read_wave():
            for meta, weight in zip(metas, weights):
                reads = max(1, int(20 * weight))
                for _ in range(reads):
                    block = rng.choice(meta.block_ids)
                    nn.record_access(block, rng.randrange(
                        nn.topology.num_machines))

        sim.schedule_periodic(600.0, read_wave)
        sim.run(until=6 * 3600.0)
        assert aurora is not None
        reports = aurora.reports
        assert len(reports) >= 10
        # Once converged, periods stop finding work: the last periods
        # perform (almost) no operations and the cost gap is small.
        tail = reports[-3:]
        for report in tail:
            assert report.search is not None
            assert report.search.total_operations <= 2
        final = tail[-1]
        assert final.cost_after <= final.cost_before + 1e-9

    def test_reports_accumulate_improvements(self):
        sim, nn, scheduler, aurora = build_stack(seed=9)
        metas = [
            nn.create_file(f"/f{i}", num_blocks=1, writer=0)
            for i in range(8)
        ]
        for meta in metas:
            for _ in range(10):
                nn.record_access(meta.block_ids[0], reader=1)
        report = aurora.optimize(now=0.0)
        assert report.improvement >= 0.0
        assert aurora.reports[-1] is report
