"""Legacy setuptools shim (environment lacks the `wheel` package)."""
from setuptools import setup

setup()
